"""repro — a reproduction of *Bristle: A Mobile Structured Peer-to-Peer
Architecture* (Hsiao & King, IPDPS 2003).

The package implements the paper's two-layer mobile HS-P2P architecture
and every substrate it depends on:

* :mod:`repro.sim` — deterministic discrete-event simulation engine;
* :mod:`repro.net` — transit-stub underlay, shortest paths, placement;
* :mod:`repro.overlay` — Chord / Pastry / Tornado HS-P2P substrates;
* :mod:`repro.core` — Bristle itself: naming, routing with address
  resolution, location management, LDTs, leases;
* :mod:`repro.baselines` — the Type A and Type B architectures of Table 1;
* :mod:`repro.workloads` — capacities, route samples, churn, scenarios;
* :mod:`repro.experiments` — one harness per table/figure of §4.

Quickstart::

    from repro import BristleConfig, BristleNetwork, route_with_resolution

    net = BristleNetwork(BristleConfig(seed=1), num_stationary=200, num_mobile=300)
    net.setup_random_registrations()
    report = net.move(net.mobile_keys[0])          # update + LDT advertisement
    trace = route_with_resolution(net, net.stationary_keys[0], net.mobile_keys[0])
    print(trace.app_hops, trace.path_cost, trace.resolutions)
"""

from .core import (
    BristleConfig,
    BristleNetwork,
    DiscoveryResult,
    MoveReport,
    RouteTrace,
    build_ldt,
    route_with_resolution,
)
from .overlay import ChordOverlay, KeySpace, PastryOverlay, TornadoOverlay, make_overlay
from .sim import Engine, RngStreams

__version__ = "1.0.0"

__all__ = [
    "BristleConfig",
    "BristleNetwork",
    "DiscoveryResult",
    "MoveReport",
    "RouteTrace",
    "build_ldt",
    "route_with_resolution",
    "ChordOverlay",
    "KeySpace",
    "PastryOverlay",
    "TornadoOverlay",
    "make_overlay",
    "Engine",
    "RngStreams",
    "__version__",
]

"""Bench-trajectory comparator: current ``BENCH_*.json`` vs committed baseline.

The benchmark harnesses write machine-readable trajectories
(``benchmarks/results/BENCH_<family>.json``); the repo root commits
baseline copies of the families whose metrics are deterministic enough to
gate on.  This module diffs the two and emits a regression verdict::

    python -m repro.bench_report --results benchmarks/results --baseline . \
        --out bench_verdict.md --json bench_verdict.json --fail-on-regression

Every numeric leaf shared by both files is reported; only leaves matched
by a family's :data:`GATES` decide the verdict.  Gates are deliberately
restricted to *deterministic* metrics (sketch relative errors, bucket
counts, Gini coefficients, message reductions) — wall-clock timings are
shown as context, never gated, so the check is stable on shared CI
runners.  A family present on one side only is informational, not a
failure: new trajectories start ungated and graduate when a baseline is
committed.
"""

from __future__ import annotations

import argparse
import dataclasses
import fnmatch
import json
import math
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "GATES",
    "Gate",
    "MetricRow",
    "compare_family",
    "discover_benchmarks",
    "flatten_numeric",
    "render_markdown",
    "build_verdict",
    "main",
]

#: Ignore absolute drifts below this when judging ``lower`` gates, so a
#: metric whose baseline is ~0 cannot fail on float dust.
ABS_EPS = 1e-9


@dataclasses.dataclass(frozen=True)
class Gate:
    """One gated metric family pattern.

    ``pattern`` is an :mod:`fnmatch` glob over dotted metric paths.
    ``direction`` is ``"lower"`` (bigger is a regression), ``"higher"``
    (smaller is a regression) or ``"equal"`` (any drift beyond tolerance
    is a regression — for metrics that are deterministic by construction).
    ``tolerance`` is relative to the baseline value.
    """

    pattern: str
    direction: str
    tolerance: float


#: Gated metrics per benchmark family.  Only deterministic quantities:
#: accuracy/structure of the quantile sketch and hotspot statistics
#: (``obs``), message-count reductions (``batch``), the columnar
#: engine's fixed-size serial-vs-sharded scenarios (``scale`` — exact
#: event counts and the integer-folded snapshot checksums, for both the
#: churn scenario and the Zipf traffic mix) and the LDT forest's
#: fixed-size structure section (``ldt`` — oracle-parity counts and the
#: canonical edge-order checksum).  Timing families (``churn``,
#: ``sweep``), the ``scale`` throughput sections and the ``ldt``
#: speedup section stay informational.
GATES: Dict[str, Tuple[Gate, ...]] = {
    "obs": (
        Gate("accuracy.*.rel_err_*", "lower", 0.10),
        Gate("accuracy.*.bucket_count", "lower", 0.10),
        Gate("hotspot.*.gini", "equal", 1e-6),
        Gate("hotspot.*.max_mean", "equal", 1e-6),
    ),
    "batch": (
        Gate("per_k.*.reduction", "higher", 0.25),
        Gate("per_k.*.batched_msgs", "lower", 0.25),
    ),
    "scale": (
        Gate("determinism.*", "equal", 1e-9),
        Gate("determinism_traffic.*", "equal", 1e-9),
    ),
    "ldt": (
        Gate("structure.*", "equal", 1e-9),
    ),
}


@dataclasses.dataclass
class MetricRow:
    """One compared metric: values on both sides plus the gate outcome."""

    path: str
    baseline: float
    current: float
    status: str  # "ok" | "regressed" | "info"

    @property
    def delta_pct(self) -> float:
        """Relative change in percent (NaN when the baseline is ~0)."""
        if abs(self.baseline) < ABS_EPS:
            return math.nan
        return 100.0 * (self.current - self.baseline) / abs(self.baseline)


def flatten_numeric(payload: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten nested JSON into ``{dotted.path: value}`` for numeric leaves.

    Booleans and strings are skipped; lists are indexed numerically.
    """
    out: Dict[str, float] = {}
    if isinstance(payload, Mapping):
        items: Iterable[Tuple[str, Any]] = (
            (str(k), v) for k, v in payload.items()
        )
    elif isinstance(payload, list):
        items = ((str(i), v) for i, v in enumerate(payload))
    else:
        items = ()
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            if isinstance(value, float) and not math.isfinite(value):
                continue
            out[path] = float(value)
        elif isinstance(value, (Mapping, list)):
            out.update(flatten_numeric(value, path))
    return out


def _gate_for(family: str, path: str) -> Optional[Gate]:
    for gate in GATES.get(family, ()):
        if fnmatch.fnmatchcase(path, gate.pattern):
            return gate
    return None


def _judge(gate: Gate, baseline: float, current: float) -> str:
    if gate.direction == "lower":
        limit = baseline * (1.0 + gate.tolerance) + ABS_EPS
        return "regressed" if current > limit else "ok"
    if gate.direction == "higher":
        limit = baseline * (1.0 - gate.tolerance) - ABS_EPS
        return "regressed" if current < limit else "ok"
    if gate.direction == "equal":
        drift = abs(current - baseline)
        return (
            "regressed"
            if drift > gate.tolerance * max(1.0, abs(baseline))
            else "ok"
        )
    raise ValueError(f"unknown gate direction {gate.direction!r}")


def compare_family(
    family: str, baseline: Mapping[str, Any], current: Mapping[str, Any]
) -> List[MetricRow]:
    """Compare one family's trajectories; returns every shared metric.

    Gated paths get an ok/regressed status; everything else is ``info``.
    Rows are sorted gated-first, then by path, so the verdict table leads
    with what matters.
    """
    base_flat = flatten_numeric(baseline)
    cur_flat = flatten_numeric(current)
    rows: List[MetricRow] = []
    for path in sorted(set(base_flat) & set(cur_flat)):
        gate = _gate_for(family, path)
        if gate is None:
            status = "info"
        else:
            status = _judge(gate, base_flat[path], cur_flat[path])
        rows.append(MetricRow(path, base_flat[path], cur_flat[path], status))
    rows.sort(key=lambda r: (r.status == "info", r.path))
    return rows


def discover_benchmarks(directory: str) -> Dict[str, Dict[str, Any]]:
    """Load every ``BENCH_<family>.json`` under ``directory``."""
    found: Dict[str, Dict[str, Any]] = {}
    if not os.path.isdir(directory):
        return found
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        family = name[len("BENCH_"):-len(".json")]
        with open(os.path.join(directory, name)) as fh:
            try:
                found[family] = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{name}: not valid JSON ({exc})")
    return found


def build_verdict(
    results_dir: str, baseline_dir: str
) -> Tuple[Dict[str, Any], Dict[str, List[MetricRow]]]:
    """Compare every family; returns (JSON verdict, per-family rows)."""
    current = discover_benchmarks(results_dir)
    baseline = discover_benchmarks(baseline_dir)
    families: Dict[str, Any] = {}
    per_family_rows: Dict[str, List[MetricRow]] = {}
    regressions: List[str] = []
    for family in sorted(set(current) | set(baseline)):
        if family not in current:
            families[family] = {"status": "baseline-only", "metrics": 0}
            continue
        if family not in baseline:
            families[family] = {"status": "no-baseline", "metrics": 0}
            continue
        rows = compare_family(family, baseline[family], current[family])
        per_family_rows[family] = rows
        bad = [r.path for r in rows if r.status == "regressed"]
        regressions.extend(f"{family}:{p}" for p in bad)
        families[family] = {
            "status": "regressed" if bad else "ok",
            "metrics": len(rows),
            "gated": sum(1 for r in rows if r.status != "info"),
            "regressed_paths": bad,
        }
    verdict = {
        "kind": "repro-bench-verdict",
        "ok": not regressions,
        "families": families,
        "regressions": regressions,
    }
    return verdict, per_family_rows


def render_markdown(
    verdict: Mapping[str, Any], per_family_rows: Mapping[str, List[MetricRow]]
) -> str:
    """Render the verdict as a markdown report (the CI artifact)."""
    lines = ["# Bench trajectory report", ""]
    lines.append(
        "**Verdict: PASS**" if verdict["ok"] else "**Verdict: REGRESSED**"
    )
    lines.append("")
    for family, info in verdict["families"].items():
        lines.append(f"## {family} — {info['status']}")
        lines.append("")
        rows = per_family_rows.get(family, [])
        if not rows:
            lines.append(
                "_no comparison (missing on one side); informational only_"
            )
            lines.append("")
            continue
        lines.append("| metric | baseline | current | delta | status |")
        lines.append("|---|---:|---:|---:|---|")
        for r in rows:
            delta = (
                "n/a" if math.isnan(r.delta_pct) else f"{r.delta_pct:+.1f}%"
            )
            lines.append(
                f"| `{r.path}` | {r.baseline:.6g} | {r.current:.6g} "
                f"| {delta} | {r.status} |"
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench_report",
        description="Compare BENCH_*.json trajectories against a baseline.",
    )
    parser.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory with freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline",
        default=".",
        help="directory with committed baseline BENCH_*.json files",
    )
    parser.add_argument("--out", default=None, help="write markdown report here")
    parser.add_argument("--json", default=None, help="write JSON verdict here")
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any gated metric regressed",
    )
    args = parser.parse_args(argv)
    verdict, rows = build_verdict(args.results, args.baseline)
    markdown = render_markdown(verdict, rows)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(markdown + "\n")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(verdict, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(markdown)
    if args.fail_on_regression and not verdict["ok"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""End-to-end scenario builders shared by experiments and examples.

A *scenario* bundles a topology, a population and a configured
:class:`~repro.core.bristle.BristleNetwork` (and, for the comparison
experiments, matched Type-A/Type-B deployments over the same topology and
key assignment so the three architectures face identical workloads).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Set

from ..baselines.type_a import TypeAHSP2P
from ..baselines.type_b import TypeBMobileIPHSP2P
from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..net.transit_stub import generate_transit_stub, params_for_router_count
from ..net.underlay import UnderlayBundle
from ..sim.rng import RngStreams

__all__ = ["ComparisonScenario", "build_comparison_scenario", "build_bristle"]


def build_bristle(
    num_stationary: int,
    num_mobile: int,
    *,
    config: Optional[BristleConfig] = None,
    router_count: Optional[int] = None,
    max_capacity: int = 15,
) -> BristleNetwork:
    """One-call Bristle network with sensible defaults."""
    cfg = config if config is not None else BristleConfig()
    return BristleNetwork(
        cfg,
        num_stationary,
        num_mobile,
        router_count=router_count,
        max_capacity=max_capacity,
    )


@dataclasses.dataclass
class ComparisonScenario:
    """The three architectures over one shared world (Table 1)."""

    bristle: BristleNetwork
    type_a: TypeAHSP2P
    type_b: TypeBMobileIPHSP2P
    mobile_hosts: Set[int]

    @property
    def num_nodes(self) -> int:
        return self.bristle.num_nodes


def build_comparison_scenario(
    num_stationary: int,
    num_mobile: int,
    *,
    seed: int = 1,
    router_count: Optional[int] = None,
    config: Optional[BristleConfig] = None,
    underlay: Optional[UnderlayBundle] = None,
) -> ComparisonScenario:
    """Build Bristle, Type A and Type B over the same topology and the
    same initial key assignment.

    The baselines use host ids equal to the Bristle node keys, so lookup
    workloads expressed in keys apply verbatim to all three.

    ``underlay`` short-circuits topology generation with a prebuilt
    bundle; it must have been built from the same ``(seed, router count)``
    (as :func:`repro.net.underlay.build_underlay` does) for results to
    match the inline path — the Bristle network then also shares the
    bundle's path oracle.
    """
    cfg = config if config is not None else BristleConfig(seed=seed)
    rng = RngStreams(seed)
    total = num_stationary + num_mobile
    routers = router_count if router_count is not None else max(100, total // 2)
    if underlay is not None:
        topology = underlay.topology
        bristle = BristleNetwork(cfg, num_stationary, num_mobile, underlay=underlay)
    else:
        topology = generate_transit_stub(params_for_router_count(routers), rng)
        bristle = BristleNetwork(cfg, num_stationary, num_mobile, topology=topology)
    host_keys = {k: k for k in bristle.stationary_keys + bristle.mobile_keys}
    mobile_hosts = set(bristle.mobile_keys)
    space = bristle.space
    type_a = TypeAHSP2P(
        space, topology, rng.spawn("type_a"), host_keys, mobile_hosts
    )
    type_b = TypeBMobileIPHSP2P(
        space, topology, rng.spawn("type_b"), host_keys, mobile_hosts
    )
    return ComparisonScenario(
        bristle=bristle, type_a=type_a, type_b=type_b, mobile_hosts=mobile_hosts
    )

"""Capacity assignment workloads (§4.2).

"Each node simulated is randomly assigned the number of available network
connections from 1 to MAX, where MAX is 1,2,3,...,15."
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..sim.rng import RngStreams

__all__ = ["uniform_capacities", "constant_capacities", "pareto_capacities"]


def uniform_capacities(
    keys: Sequence[int], max_capacity: int, rng: RngStreams, stream: str = "capacities"
) -> Dict[int, float]:
    """Integer capacities uniform in ``[1, max_capacity]`` — the Fig-8
    workload."""
    if max_capacity < 1:
        raise ValueError("max_capacity must be >= 1")
    gen = rng.stream(stream)
    draws = gen.integers(1, max_capacity + 1, size=len(keys))
    return {int(k): float(c) for k, c in zip(keys, draws)}


def constant_capacities(keys: Sequence[int], capacity: float = 1.0) -> Dict[int, float]:
    """Homogeneous capacities (the degenerate chain-LDT case)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    return {int(k): float(capacity) for k in keys}


def pareto_capacities(
    keys: Sequence[int],
    shape: float = 1.5,
    scale: float = 1.0,
    cap: float = 100.0,
    rng: RngStreams = None,
    stream: str = "capacities",
) -> Dict[int, float]:
    """Heavy-tailed capacities — a P2P-realistic extension beyond the
    paper's uniform draw (few super-nodes, many weak nodes), used by the
    ablation benchmarks."""
    if rng is None:
        raise ValueError("rng is required")
    if shape <= 0 or scale <= 0 or cap <= scale:
        raise ValueError("invalid pareto parameters")
    gen = rng.stream(stream)
    draws = scale * (1.0 + gen.pareto(shape, size=len(keys)))
    draws = np.minimum(draws, cap)
    return {int(k): float(max(1.0, c)) for k, c in zip(keys, draws)}

"""Workload generation: capacities, route samples, churn and scenarios."""

from .capacities import constant_capacities, pareto_capacities, uniform_capacities
from .churn import ChurnEvent, ChurnEventType, ChurnSchedule, poisson_churn
from .driver import ChurnDriver
from .routes import sample_key_lookups, sample_stationary_pairs
from .scenarios import ComparisonScenario, build_bristle, build_comparison_scenario

__all__ = [
    "constant_capacities",
    "pareto_capacities",
    "uniform_capacities",
    "ChurnDriver",
    "ChurnEvent",
    "ChurnEventType",
    "ChurnSchedule",
    "poisson_churn",
    "sample_key_lookups",
    "sample_stationary_pairs",
    "ComparisonScenario",
    "build_bristle",
    "build_comparison_scenario",
]

"""Engine-driven churn: replay a :class:`ChurnSchedule` against a live
Bristle network.

The driver turns the declarative schedule (joins / leaves / moves with
timestamps) into engine events that exercise the full protocol stack:
joins run the Figure-5 protocol, leaves and joins trigger data-store
handoff, moves publish and (optionally) advertise.  The integration
tests use it to assert the system's invariants hold under arbitrary
interleavings.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from ..core.bristle import BristleNetwork
from ..core.join import figure5_join
from ..core.storage import DataStore
from ..sim.engine import Engine
from ..sim.events import EventKind
from .churn import ChurnEvent, ChurnEventType, ChurnSchedule

__all__ = ["ChurnDriver"]


@dataclasses.dataclass
class ChurnDriver:
    """Applies a churn schedule to a network on the event engine.

    Parameters
    ----------
    net / engine:
        The live system.
    schedule:
        The churn to replay (times are absolute virtual times).
    store:
        Optional data store; joins/leaves then trigger handoff so stored
        items follow ownership.
    use_figure5_join:
        Run the message-accounted Fig-5 protocol for joins (default) or
        the bare structural join.
    advertise_moves:
        Whether moves advertise through LDTs.
    on_event:
        Optional observer called with each applied :class:`ChurnEvent`.
    """

    net: BristleNetwork
    engine: Engine
    schedule: ChurnSchedule
    store: Optional[DataStore] = None
    use_figure5_join: bool = True
    advertise_moves: bool = False
    on_event: Optional[Callable[[ChurnEvent], None]] = None

    applied: Dict[ChurnEventType, int] = dataclasses.field(
        default_factory=lambda: {k: 0 for k in ChurnEventType}
    )
    skipped: int = dataclasses.field(default=0)
    join_messages: int = dataclasses.field(default=0)
    handoff_items: int = dataclasses.field(default=0)

    def start(self) -> None:
        """Schedule every churn event (call once, then run the engine)."""
        for event in self.schedule:
            self.engine.schedule(
                event.time,
                lambda e=event: self._apply(e),
                kind=EventKind.CONTROL,
                label=f"churn:{event.kind.value}:{event.host}",
            )

    # ------------------------------------------------------------------
    def _apply(self, event: ChurnEvent) -> None:
        self.net.now = self.engine.now
        if event.kind is ChurnEventType.MOVE:
            if not self._is_live_mobile(event.host):
                self.skipped += 1
                return
            self.net.move(event.host, advertise=self.advertise_moves)
        elif event.kind is ChurnEventType.LEAVE:
            if not self._is_live_mobile(event.host):
                self.skipped += 1
                return
            self.net.leave_mobile_node(event.host)
            if self.store is not None:
                self.handoff_items += self.store.handoff_before_leave(event.host)
        elif event.kind is ChurnEventType.JOIN:
            if event.host in self.net.nodes:
                self.skipped += 1
                return
            if self.use_figure5_join:
                report = figure5_join(self.net, event.host)
                self.join_messages += report.messages
            else:
                self.net.join_mobile_node(event.host)
            if self.store is not None:
                self.handoff_items += self.store.handoff_after_join(event.host)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown churn kind {event.kind}")
        self.applied[event.kind] += 1
        if self.on_event is not None:
            self.on_event(event)

    def _is_live_mobile(self, host: int) -> bool:
        node = self.net.nodes.get(host)
        return node is not None and node.mobile

    @property
    def total_applied(self) -> int:
        return sum(self.applied.values())

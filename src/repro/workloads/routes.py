"""Route-sample generation (§4.1).

"There are 10,000 sample routes between two randomly picked stationary
nodes generated, and the average application-level hops and the path
costs for these routes are averaged."
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..sim.rng import RngStreams

__all__ = ["sample_stationary_pairs", "sample_key_lookups"]


def sample_stationary_pairs(
    stationary_keys: Sequence[int],
    count: int,
    rng: RngStreams,
    stream: str = "routes",
) -> List[Tuple[int, int]]:
    """``count`` ordered (source, destination) pairs of distinct
    stationary keys, uniform with replacement across pairs."""
    n = len(stationary_keys)
    if n < 2:
        raise ValueError("need at least two stationary nodes to sample routes")
    if count < 0:
        raise ValueError("count must be non-negative")
    gen = rng.stream(stream)
    src = gen.integers(0, n, size=count)
    dst = gen.integers(0, n, size=count)
    # Redraw destination collisions (distinct endpoints per pair).
    clash = src == dst
    while np.any(clash):
        dst[clash] = gen.integers(0, n, size=int(clash.sum()))
        clash = src == dst
    return [(int(stationary_keys[a]), int(stationary_keys[b])) for a, b in zip(src, dst)]


def sample_key_lookups(
    member_keys: Sequence[int],
    key_space_size: int,
    count: int,
    rng: RngStreams,
    stream: str = "lookups",
) -> List[Tuple[int, int]]:
    """``count`` (source member, random data key) lookup pairs — the
    data-access workload used by the Table-1 scenario."""
    n = len(member_keys)
    if n < 1:
        raise ValueError("need at least one member")
    gen = rng.stream(stream)
    src = gen.integers(0, n, size=count)
    keys = gen.integers(0, key_space_size, size=count, dtype=np.uint64)
    return [(int(member_keys[a]), int(k)) for a, k in zip(src, keys)]

"""Churn schedules: joins, leaves and moves over virtual time.

Used by the dynamic experiments (Figure 9 adds Bristle nodes dynamically;
the Table-1 scenario interleaves moves with lookups) and by the
join/leave robustness tests of §2.3.3.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Optional, Sequence

from ..sim.rng import RngStreams

__all__ = ["ChurnEventType", "ChurnEvent", "ChurnSchedule", "poisson_churn"]


class ChurnEventType(enum.Enum):
    """Kinds of churn action: join, leave, or move."""
    JOIN = "join"
    LEAVE = "leave"
    MOVE = "move"


@dataclasses.dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership/mobility action."""

    time: float
    kind: ChurnEventType
    host: int


@dataclasses.dataclass
class ChurnSchedule:
    """A time-ordered list of churn events."""

    events: List[ChurnEvent]

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: (e.time, e.host, e.kind.value))

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def until(self, time: float) -> List[ChurnEvent]:
        """Events at or before ``time``."""
        return [e for e in self.events if e.time <= time]

    def counts(self) -> dict:
        """Event count per :class:`ChurnEventType`."""
        out = {k: 0 for k in ChurnEventType}
        for e in self.events:
            out[e.kind] += 1
        return out


def poisson_churn(
    hosts: Sequence[int],
    duration: float,
    rng: RngStreams,
    *,
    move_rate: float = 0.0,
    leave_rate: float = 0.0,
    join_hosts: Optional[Sequence[int]] = None,
    join_rate: float = 0.0,
    stream: str = "churn",
) -> ChurnSchedule:
    """Exponential-interarrival churn for each host over ``[0, duration]``.

    ``move_rate``/``leave_rate`` apply per existing host; ``join_rate``
    spreads the ``join_hosts`` pool over the duration (each joins once).
    A host that leaves generates no further events.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    gen = rng.stream(stream)
    events: List[ChurnEvent] = []
    for host in hosts:
        left_at = float("inf")
        if leave_rate > 0:
            t = float(gen.exponential(1.0 / leave_rate))
            if t <= duration:
                left_at = t
                events.append(ChurnEvent(time=t, kind=ChurnEventType.LEAVE, host=host))
        if move_rate > 0:
            t = float(gen.exponential(1.0 / move_rate))
            while t <= min(duration, left_at):
                events.append(ChurnEvent(time=t, kind=ChurnEventType.MOVE, host=host))
                t += float(gen.exponential(1.0 / move_rate))
    if join_hosts:
        if join_rate > 0:
            t = 0.0
            for host in join_hosts:
                t += float(gen.exponential(1.0 / join_rate))
                if t > duration:
                    break
                events.append(ChurnEvent(time=t, kind=ChurnEventType.JOIN, host=host))
        else:
            # Spread joins uniformly when no rate given.
            for i, host in enumerate(join_hosts):
                t = duration * (i + 1) / (len(join_hosts) + 1)
                events.append(ChurnEvent(time=t, kind=ChurnEventType.JOIN, host=host))
    return ChurnSchedule(events=events)

"""Runtime sanitizer: cheap invariant assertions at operation boundaries.

Enabled via ``REPRO_SANITIZE=1`` in the environment or ``--sanitize`` on
the CLI (``repro run``/``all``), the sanitizer verifies the protocol
invariants the paper's results rest on, right where they can break:

* **ring/prefix-table consistency** after every mobile-layer join/leave
  (:func:`check_overlay_consistency` — sorted unique membership, the
  changed key's ownership and neighbour closure);
* **LDT well-formedness** after every build (:func:`check_ldt` —
  single-parent acyclicity plus the Fig-4 capacity bound
  ``children ≤ max(1, ⌊Avail/v⌋)``);
* **TTL-lease monotonicity** on every state-pair refresh
  (:func:`check_lease_refresh` — leases never refresh into the past);
* **manifest round-trips** before a run manifest is written
  (:func:`check_manifest_roundtrip` — strict-JSON stability);
* **columnar-store column coherence** after every batch mutation
  (:func:`check_columnar_store` — strictly sorted keys, ``expiry ==
  published + ttl``, holder counts within the replica width and a
  correctly sorted expiry ordering).

Checks are read-only — they never draw from an RNG stream or mutate
protocol state — so a sanitized run is bit-identical to an unsanitized
one.  Every check increments the ``sanitize.checks`` counter in the
ambient telemetry session (sweep workers' counts merge back to the
parent), and a failed invariant raises :class:`SanitizerViolation`
immediately.  When the sanitizer is off, each hook costs a single module
attribute read (``ACTIVE``).
"""

from __future__ import annotations

import json
import math
import os
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .core.ldt import LDTree
    from .core.ldt_forest import LDTForest
    from .overlay.base import Overlay
    from .overlay.state import StatePair

__all__ = [
    "ACTIVE",
    "SanitizerViolation",
    "enabled",
    "set_enabled",
    "counts",
    "reset_counts",
    "summary_line",
    "check_overlay_consistency",
    "check_ldt",
    "check_ldt_forest",
    "check_lease_refresh",
    "check_manifest_roundtrip",
    "check_columnar_store",
]


class SanitizerViolation(AssertionError):
    """A protocol invariant failed under ``REPRO_SANITIZE``."""


#: Hot-path gate: hook sites read this module attribute and skip the call
#: entirely when the sanitizer is off.
ACTIVE: bool = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")

#: Per-check counts for this process (workers' counts additionally merge
#: into the parent via the telemetry ``sanitize.*`` counters).
_COUNTS: Dict[str, int] = {}


def enabled() -> bool:
    """True when invariant checks run (env ``REPRO_SANITIZE`` or CLI)."""
    return ACTIVE


def set_enabled(flag: bool) -> None:
    """Turn the sanitizer on/off for this process (the CLI's ``--sanitize``)."""
    global ACTIVE
    ACTIVE = bool(flag)


def counts() -> Dict[str, int]:
    """Per-check invocation counts for this process."""
    return dict(_COUNTS)


def reset_counts() -> None:
    """Zero the per-process counters (test isolation)."""
    _COUNTS.clear()


def _record(check: str) -> None:
    _COUNTS[check] = _COUNTS.get(check, 0) + 1
    from .sim.telemetry import active_telemetry

    tel = active_telemetry()
    if tel is not None:
        tel.metrics.counter("sanitize.checks").inc()
        tel.metrics.counter(f"sanitize.checks.{check}").inc()


def _violation(message: str) -> "SanitizerViolation":
    _COUNTS["violations"] = _COUNTS.get("violations", 0) + 1
    from .sim.telemetry import active_telemetry

    tel = active_telemetry()
    if tel is not None:
        tel.metrics.counter("sanitize.violations").inc()
    return SanitizerViolation(message)


def summary_line(
    total_checks: Optional[int] = None, violations: Optional[int] = None
) -> str:
    """The ``[sanitize] N invariant checks, V violations`` report line.

    Callers with a telemetry session pass the merged ``sanitize.checks`` /
    ``sanitize.violations`` counter values (covering fork workers too);
    with no arguments the line reports this process's own counts.
    """
    if total_checks is None:
        total_checks = sum(
            n for k, n in _COUNTS.items() if k != "violations"
        )
    if violations is None:
        violations = _COUNTS.get("violations", 0)
    return f"[sanitize] {total_checks} invariant checks, {violations} violations"


# ----------------------------------------------------------------------
# Overlay ring/prefix-table consistency (after join/leave)
# ----------------------------------------------------------------------
def check_overlay_consistency(
    overlay: "Overlay", key: Optional[int] = None
) -> None:
    """Membership/routing-state invariants after a membership change.

    Bounded work: O(N) sortedness over the member array plus the changed
    key's own routing state — churn loops stay usable under the sanitizer.
    """
    _record("overlay")
    keys = overlay.keys
    if keys.size != len(overlay._member_set):
        raise _violation(
            f"overlay member array ({keys.size}) and member set "
            f"({len(overlay._member_set)}) disagree"
        )
    if keys.size > 1 and not bool((keys[1:] > keys[:-1]).all()):
        raise _violation("overlay member array is not strictly sorted")
    if key is None:
        return
    if overlay.is_member(key):
        owner = overlay.owner_of(key)
        if owner != key:
            raise _violation(
                f"member {key} is not the owner of its own key "
                f"(owner_of returned {owner})"
            )
        for nb in overlay.neighbors_of(key):
            if not overlay.is_member(nb):
                raise _violation(
                    f"member {key} routes to non-member neighbour {nb}"
                )
    else:
        # After a leave the key must be fully forgotten.
        if key in set(int(k) for k in keys):
            raise _violation(
                f"departed key {key} still present in the member array"
            )


# ----------------------------------------------------------------------
# LDT acyclicity + capacity bounds (after builds)
# ----------------------------------------------------------------------
def check_ldt(tree: "LDTree", unit_cost: float = 1.0) -> None:
    """Structural invariants of one advertisement tree (Fig 4).

    Single-parent acyclicity via a parent-pointer walk from every member,
    plus the capacity bound: a sender with ``Avail − v ≤ 0`` delegates to
    exactly one head, otherwise fans out to at most ``⌊Avail/v⌋`` heads.
    """
    _record("ldt")
    try:
        tree.validate()
    except AssertionError as exc:
        raise _violation(f"LDT structure invalid: {exc}") from None
    limit = len(tree.nodes)
    for node in tree.nodes.values():
        steps = 0
        cursor = node
        while cursor.parent is not None:
            cursor = tree.nodes[cursor.parent]
            steps += 1
            if steps > limit:
                raise _violation(
                    f"LDT parent chain from {node.key} exceeds tree size: "
                    "cycle in parent pointers"
                )
        if cursor.key != tree.root_key:
            raise _violation(
                f"LDT parent chain from {node.key} terminates at "
                f"{cursor.key}, not the root"
            )
        if node.children:
            avail = node.member.available
            allowed = (
                1
                if avail - unit_cost <= 0
                else max(1, int(math.floor(avail / unit_cost)))
            )
            if len(node.children) > allowed:
                raise _violation(
                    f"LDT node {node.key} fans out to {len(node.children)} "
                    f"children but Avail={avail} permits {allowed} "
                    f"(unit cost {unit_cost})"
                )


def check_ldt_forest(forest: "LDTForest") -> None:
    """Structural invariants of a whole columnar tree batch.

    The forest-column variant of :func:`check_ldt`: one vectorised
    :meth:`LDTForest.validate` pass covers level linkage, single-parent
    acyclicity (levels strictly decrease along parent rows), the Fig-4
    ``Avail/v`` fan-out bound and partition-size conservation for every
    tree in the batch — O(M log M) in total members, so million-member
    scale rounds stay usable under the sanitizer.
    """
    _record("ldt_forest")
    try:
        forest.validate()
    except AssertionError as exc:
        raise _violation(f"LDT forest invalid: {exc}") from None


# ----------------------------------------------------------------------
# TTL-lease monotonicity (state binding)
# ----------------------------------------------------------------------
def check_lease_refresh(
    pair: "StatePair", now: float, ttl: Optional[float] = None
) -> None:
    """A lease refresh must not move ``refreshed_at`` backwards and must
    grant a non-negative, non-NaN TTL (``ttl`` is the incoming grant;
    ``None`` keeps the pair's current one).  Called *before* the pair is
    mutated so the pre-refresh timestamp is still observable."""
    _record("lease")
    if now < pair.refreshed_at:
        raise _violation(
            f"lease for key {pair.key} refreshed backwards in time: "
            f"{pair.refreshed_at} -> {now}"
        )
    granted = pair.ttl if ttl is None else ttl
    if granted < 0 or (granted != granted):  # negative or NaN
        raise _violation(f"lease for key {pair.key} granted invalid TTL {granted}")


# ----------------------------------------------------------------------
# Manifest round-trip (experiment provenance)
# ----------------------------------------------------------------------
def check_manifest_roundtrip(payload: Mapping[str, Any]) -> None:
    """A run manifest must survive a strict-JSON round-trip unchanged and
    still validate against the schema afterwards."""
    _record("manifest")
    from .experiments.manifest import ManifestError, validate_manifest

    try:
        text = json.dumps(dict(payload), allow_nan=False, default=_jsonify)
    except (TypeError, ValueError) as exc:
        raise _violation(f"manifest is not strict JSON: {exc}") from None
    restored = json.loads(text)
    original = json.loads(
        json.dumps(dict(payload), allow_nan=False, default=_jsonify)
    )
    if restored != original:
        raise _violation("manifest does not round-trip through JSON")
    try:
        validate_manifest(restored)
    except ManifestError as exc:
        raise _violation(
            f"manifest fails schema validation after round-trip: {exc}"
        ) from None


# ----------------------------------------------------------------------
# Columnar-store column coherence (after batch mutations)
# ----------------------------------------------------------------------
def check_columnar_store(store: Any) -> None:
    """Cross-column invariants of a ``repro.sim.columnar.ColumnarStore``.

    Runs after every batch rebuild (``_set``): the key column must be
    strictly sorted and unique, every row's ``expiry`` must equal
    ``published + ttl``, holder counts must fit the replica width, and the
    precomputed expiry ordering must actually sort the expiry column —
    the invariant the one-pass TTL sweep's prefix slice rests on.
    """
    _record("columnar")
    import numpy as np

    keys = store.keys
    n = int(keys.size)
    for name in ("router", "port", "epoch", "published", "ttl", "expiry",
                 "holder_count"):
        col = getattr(store, name)
        if int(col.shape[0]) != n:
            raise _violation(
                f"columnar column {name!r} has {int(col.shape[0])} rows, "
                f"key column has {n}"
            )
    if store.holders.shape != (n, store.replication):
        raise _violation(
            f"columnar holder matrix shape {store.holders.shape} != "
            f"({n}, {store.replication})"
        )
    if n == 0:
        return
    if n > 1 and not bool((keys[1:] > keys[:-1]).all()):
        raise _violation("columnar key column is not strictly sorted/unique")
    if not bool(np.all(store.expiry == store.published + store.ttl)):
        raise _violation("columnar expiry column diverged from published + ttl")
    if not bool(
        np.all((store.holder_count >= 1) & (store.holder_count <= store.replication))
    ):
        raise _violation(
            f"columnar holder counts outside [1, {store.replication}]"
        )
    ordered = store.expiry[store._exp_order]
    if n > 1 and not bool((ordered[1:] >= ordered[:-1]).all()):
        raise _violation("columnar expiry ordering does not sort the expiry column")


def _jsonify(value: Any) -> Any:
    try:
        return value.item()  # NumPy scalars
    except AttributeError:
        raise TypeError(f"cannot serialise {type(value).__name__}") from None

"""Phase-level wall-clock profiling for experiment drivers.

PR 1 showed the value of printing run observability (cache counters) under
each result table; :class:`PhaseProfiler` generalises that to *time*: the
drivers wrap their build / warmup / route stages in :meth:`PhaseProfiler.phase`
and report where the wall-clock went, both as table footers and in the
machine-readable run manifest.

The profiler is purely wall-clock (``time.perf_counter``); virtual time
lives in the tracer's spans.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Dict, Iterable, Iterator, Optional

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase.

    Phases re-entered multiple times accumulate (ten ``route`` phases sum
    into one ``route`` total with an entry count).  A disabled profiler's
    :meth:`phase` is a no-op context manager, so drivers can use it
    unconditionally.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (re-entrant, additive)."""
        if not self.enabled:
            yield
            return
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - t0)

    def add(self, name: str, seconds: float) -> None:
        """Manually account ``seconds`` of wall time to phase ``name``."""
        if not self.enabled:
            return
        self._totals[name] = self._totals.get(name, 0.0) + float(seconds)
        self._counts[name] = self._counts.get(name, 0) + 1

    def wall_times(self) -> Dict[str, float]:
        """Accumulated seconds per phase, in first-entered order."""
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        """Number of times each phase was entered."""
        return dict(self._counts)

    def total(self) -> float:
        """Sum of all phase totals."""
        return sum(self._totals.values())

    def footer_line(
        self,
        names: Optional[Iterable[str]] = None,
        label: str = "phases",
        precision: int = 3,
    ) -> str:
        """One table-footer line, e.g. ``phases: build 0.41s, route 1.2s``.

        ``names`` restricts (and orders) the reported phases; unknown
        names are skipped so drivers can name phases optimistically.
        """
        if names is None:
            selected = list(self._totals)
        else:
            selected = [n for n in names if n in self._totals]
        if not selected:
            return f"{label}: (none recorded)"
        parts = [f"{n} {self._totals[n]:.{precision}f}s" for n in selected]
        return f"{label}: " + ", ".join(parts)

    def reset(self) -> None:
        """Drop all accumulated phase data."""
        self._totals.clear()
        self._counts.clear()

    # ------------------------------------------------------------------
    # Cross-process merge (sweep workers → parent session)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Dict]:
        """Picklable snapshot of phase totals and entry counts."""
        return {"totals": dict(self._totals), "counts": dict(self._counts)}

    def merge_state(self, state: Dict[str, Dict]) -> None:
        """Fold a worker's :meth:`export_state` into this profiler.

        Phase seconds and entry counts are attributed additively, exactly
        as if the worker's ``phase`` blocks had run in this process (note
        that summed worker wall-time can exceed elapsed wall-time when
        phases ran concurrently).
        """
        if not self.enabled:
            return
        for name, seconds in state.get("totals", {}).items():
            self._totals[name] = self._totals.get(name, 0.0) + float(seconds)
        for name, count in state.get("counts", {}).items():
            self._counts[name] = self._counts.get(name, 0) + int(count)

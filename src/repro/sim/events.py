"""Event primitives for the discrete-event simulation engine.

An :class:`Event` pairs a virtual firing time with a callback.  Events are
totally ordered by ``(time, priority, sequence)`` — the sequence number is a
monotonically increasing tie-breaker assigned by the engine, which makes the
simulation deterministic even when many events share a timestamp (common in
our experiments, where message sends within one protocol step are issued at
the same virtual instant).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Tuple

__all__ = ["Event", "EventKind", "Priority"]


class EventKind(enum.Enum):
    """Coarse classification of events, used by metrics and trace output."""

    MESSAGE = "message"  #: delivery of a protocol message between nodes
    TIMER = "timer"  #: node-local timer (lease expiry, periodic refresh)
    CONTROL = "control"  #: experiment-driven action (move a node, churn)
    GENERIC = "generic"  #: anything else


class Priority(enum.IntEnum):
    """Within-timestamp ordering classes.

    Lower values fire first.  Control events (e.g. "node X moves now") fire
    before message deliveries at the same instant so that a message sent *to*
    a node that moves at time t observes the post-move state — mirroring the
    paper's model in which movement invalidates addresses immediately.
    """

    CONTROL = 0
    TIMER = 1
    MESSAGE = 2
    LOW = 3


@dataclasses.dataclass
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    callback:
        Zero-argument callable invoked when the event fires.
    kind:
        Coarse event class (for metrics/tracing).
    priority:
        Within-timestamp ordering class.
    label:
        Optional human-readable tag for traces.
    seq:
        Engine-assigned tie-breaker; ``-1`` until scheduled.
    cancelled:
        Lazily-cancelled events stay in the heap but are skipped on pop.
    """

    time: float
    callback: Callable[[], Any]
    kind: EventKind = EventKind.GENERIC
    priority: Priority = Priority.LOW
    label: str = ""
    seq: int = -1
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it on pop."""
        self.cancelled = True

    def sort_key(self) -> Tuple[float, int, int]:
        """Total-order key: (time, priority, schedule sequence)."""
        return (self.time, int(self.priority), self.seq)

    # Events participate in a heap keyed by sort_key via a wrapper tuple in
    # the engine; defining __lt__ too keeps direct heap use possible.
    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()


def kind_default_priority(kind: EventKind) -> Priority:
    """Map an :class:`EventKind` to its default :class:`Priority`."""
    if kind is EventKind.CONTROL:
        return Priority.CONTROL
    if kind is EventKind.TIMER:
        return Priority.TIMER
    if kind is EventKind.MESSAGE:
        return Priority.MESSAGE
    return Priority.LOW


__all__.append("kind_default_priority")

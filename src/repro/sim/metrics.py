"""Metric collection: counters, gauges, histograms, and time series.

Experiments record everything through a :class:`MetricsRegistry`; the
benchmark harness then formats the registry into the tables/series that the
paper's figures report.  All accumulators are NumPy-friendly (histogram
samples are held in grow-only Python lists and converted to arrays only
when statistics are requested — cheap appends in the hot path, vectorised
math at summary time, per the hpc-parallel guidance).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Collection, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "RATIO_SUFFIXES",
    "record_cache_stats",
    "summarize",
]


class Counter:
    """Monotonic (or signed) event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (may be negative for gauges-as-counters)."""
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the counter (mirroring an externally-kept tally)."""
        self.value = value

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Sample accumulator with summary statistics.

    Samples are appended in O(1); statistics are computed lazily with NumPy.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self._samples.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples."""
        self._samples.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> np.ndarray:
        """All samples as a NumPy array (copy)."""
        return np.asarray(self._samples, dtype=np.float64)

    def mean(self) -> float:
        """Arithmetic mean; NaN when empty."""
        return float(np.mean(self._samples)) if self._samples else math.nan

    def std(self) -> float:
        """Population standard deviation; NaN when empty."""
        return float(np.std(self._samples)) if self._samples else math.nan

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100); NaN when empty."""
        return float(np.percentile(self._samples, q)) if self._samples else math.nan

    def min(self) -> float:
        """Smallest sample; NaN when empty."""
        return float(np.min(self._samples)) if self._samples else math.nan

    def max(self) -> float:
        """Largest sample; NaN when empty."""
        return float(np.max(self._samples)) if self._samples else math.nan

    def total(self) -> float:
        """Sum of all samples (0 when empty)."""
        return float(np.sum(self._samples)) if self._samples else 0.0

    def reset(self) -> None:
        """Drop all samples."""
        self._samples.clear()


class TimeSeries:
    """(time, value) pairs, e.g. load over virtual time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one point; times need not be distinct but must not regress."""
        if self._times and time < self._times[-1]:
            raise ValueError(f"time regression in series {self.name!r}: {time} < {self._times[-1]}")
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (times, values) as NumPy arrays."""
        return (
            np.asarray(self._times, dtype=np.float64),
            np.asarray(self._values, dtype=np.float64),
        )

    def last(self) -> Tuple[float, float]:
        """Most recent (time, value); raises when empty."""
        if not self._times:
            raise IndexError(f"series {self.name!r} is empty")
        return self._times[-1], self._values[-1]


class MetricsRegistry:
    """Named collection of counters, histograms and time series."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = Counter(name)
            self._counters[name] = c
        return c

    def histogram(self, name: str) -> Histogram:
        """Get (or create) the histogram ``name``."""
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(name)
            self._histograms[name] = h
        return h

    def series(self, name: str) -> TimeSeries:
        """Get (or create) the time series ``name``."""
        s = self._series.get(name)
        if s is None:
            s = TimeSeries(name)
            self._series[name] = s
        return s

    @property
    def counters(self) -> Mapping[str, Counter]:
        return self._counters

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return self._histograms

    @property
    def series_map(self) -> Mapping[str, TimeSeries]:
        return self._series

    def snapshot(self) -> Dict[str, float]:
        """Flat {name: value} view of every accumulator.

        Counters contribute their value, histograms ``<name>.mean`` and
        ``<name>.count``, and time series ``<name>.last`` (NaN when empty)
        and ``<name>.count`` — no accumulator kind is silently omitted.
        """
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = float(c.value)
        for name, h in self._histograms.items():
            out[name + ".mean"] = h.mean()
            out[name + ".count"] = float(len(h))
        for name, s in self._series.items():
            out[name + ".last"] = s.last()[1] if len(s) else math.nan
            out[name + ".count"] = float(len(s))
        return out

    def reset(self) -> None:
        """Reset all accumulators (names are kept)."""
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()
        self._series.clear()

    # ------------------------------------------------------------------
    # Cross-process merge (sweep workers → parent session)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Picklable snapshot of every accumulator, for worker→parent merge.

        Unlike :meth:`snapshot` (a flat numeric view), this keeps full
        fidelity: raw histogram samples and series points travel across
        the process boundary so the merged registry is indistinguishable
        from one that recorded everything in-process.
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "histograms": {n: list(h._samples) for n, h in self._histograms.items()},
            "series": {
                n: (list(s._times), list(s._values)) for n, s in self._series.items()
            },
        }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold a worker's :meth:`export_state` into this registry.

        Counters are summed, histogram samples extended, and series points
        appended with times clamped to this registry's last recorded time
        (worker clocks are process-local and may sit behind the parent's;
        clamping preserves every point without violating monotonicity).
        """
        for name, value in state.get("counters", {}).items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        for name, samples in state.get("histograms", {}).items():  # type: ignore[union-attr]
            self.histogram(name).observe_many(samples)
        for name, (times, values) in state.get("series", {}).items():  # type: ignore[union-attr]
            s = self.series(name)
            floor = s._times[-1] if s._times else float("-inf")
            for t, v in zip(times, values):
                floor = max(floor, float(t))
                s.record(floor, v)


#: Name suffixes treated as ratio-valued by default: these stats stay
#: histograms even when their value happens to be a whole number (a
#: ``hit_rate`` of exactly 0.0 or 1.0 must not turn into a counter).
RATIO_SUFFIXES: Tuple[str, ...] = ("rate", "ratio", "fraction")


def record_cache_stats(
    registry: MetricsRegistry,
    stats: Mapping[str, float],
    prefix: str = "oracle",
    ratios: Optional[Collection[str]] = None,
) -> None:
    """Mirror a :meth:`PathOracle.cache_stats` snapshot into ``registry``.

    Integer tallies (hits, misses, evictions, dijkstra_runs, …) become
    counters named ``<prefix>.<stat>``; derived ratios such as
    ``hit_rate`` are recorded as histogram observations so repeated
    snapshots aggregate sensibly (``<prefix>.hit_rate.mean`` in
    :meth:`MetricsRegistry.snapshot`).  NaN ratios (no lookups yet) are
    skipped.

    The counter/histogram split is explicit: a stat is ratio-valued when
    its *name* says so — it is listed in ``ratios``, or (when ``ratios``
    is ``None``) it ends with one of :data:`RATIO_SUFFIXES` — so a
    ``hit_rate`` of exactly 0.0 or 1.0 still lands in the histogram.
    Any stat with a fractional value is also kept as a histogram, since
    counters are integer-valued.
    """
    for name, value in stats.items():
        v = float(value)
        if math.isnan(v):
            continue
        if ratios is not None:
            is_ratio = name in ratios
        else:
            is_ratio = name.endswith(RATIO_SUFFIXES)
        if is_ratio or v != int(v):
            registry.histogram(f"{prefix}.{name}").observe(v)
        else:
            registry.counter(f"{prefix}.{name}").set(int(v))


@dataclasses.dataclass
class Summary:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    std: float
    p50: float
    p95: float
    min: float
    max: float


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a sequence of samples (NaN fields when empty)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return Summary(0, math.nan, math.nan, math.nan, math.nan, math.nan, math.nan)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        min=float(arr.min()),
        max=float(arr.max()),
    )


__all__.append("Summary")

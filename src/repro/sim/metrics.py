"""Metric collection: counters, gauges, histograms, and time series.

Experiments record everything through a :class:`MetricsRegistry`; the
benchmark harness then formats the registry into the tables/series that the
paper's figures report.  All accumulators are NumPy-friendly (histogram
samples are held in grow-only Python lists and converted to arrays only
when statistics are requested — cheap appends in the hot path, vectorised
math at summary time, per the hpc-parallel guidance).

Every histogram additionally feeds a :class:`QuantileSketch` — a
deterministic log-bucketed (DDSketch-style) estimator with bounded
relative error — so tail quantiles (p50/p95/p99/p999) are available in
O(1) memory even when the exact sample list is disabled
(``Histogram(..., exact=False)``, the million-node mode).  The exact list
stays on by default and acts as the parity oracle for the sketch.
"""

from __future__ import annotations

import dataclasses
import math
from typing import (
    Collection,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

__all__ = [
    "Counter",
    "Histogram",
    "QuantileSketch",
    "TAIL_QUANTILES",
    "TimeSeries",
    "MetricsRegistry",
    "METRIC_NAMES",
    "RATIO_SUFFIXES",
    "record_cache_stats",
    "summarize",
]

#: The tail quantiles every histogram reports in snapshots/manifests,
#: as (suffix, percentile) pairs.
TAIL_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p95", 95.0),
    ("p99", 99.0),
    ("p999", 99.9),
)

#: Values below this magnitude land in the sketch's zero bucket (the log
#: bucketing cannot distinguish them anyway).
_MIN_TRACKABLE = 1e-12


class Counter:
    """Monotonic (or signed) event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (may be negative for gauges-as-counters)."""
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the counter (mirroring an externally-kept tally)."""
        self.value = value

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class QuantileSketch:
    """Deterministic fixed-memory streaming quantile estimator.

    A DDSketch-style log-bucketed sketch: a positive value ``v`` lands in
    bucket ``ceil(log(v) / log(γ))`` with ``γ = (1+α)/(1−α)``, so every
    value in a bucket is within relative error ``α`` of the bucket's
    midpoint estimate.  Negative values mirror into a second bucket map
    and near-zeros share one zero bucket.  Memory is bounded by the
    *dynamic range* of the data (≈ ``log(max/min)/log γ`` buckets, capped
    at ``max_buckets`` by collapsing the lowest buckets), never by the
    sample count — O(1) in n.

    Unlike P²/KLL sketches the bucketing is **randomness-free** and merges
    are exact integer additions, so merged worker sketches are
    bit-identical to one sketch that saw every sample (whatever the
    grouping or order — the ``sweep_map`` parity invariant), and the
    estimator never consumes RNG state.
    """

    def __init__(
        self, relative_accuracy: float = 0.005, max_buckets: int = 4096
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        if max_buckets < 8:
            raise ValueError("max_buckets must be >= 8")
        self.relative_accuracy = float(relative_accuracy)
        self.max_buckets = int(max_buckets)
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _bucket_index(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def observe(self, value: float) -> None:
        """Record one sample (non-finite values are ignored)."""
        v = float(value)
        if not math.isfinite(v):
            return
        self._count += 1
        self._sum += v
        self._sum_sq += v * v
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        mag = abs(v)
        if mag < _MIN_TRACKABLE:
            self._zero += 1
            return
        buckets = self._pos if v > 0.0 else self._neg
        idx = self._bucket_index(mag)
        buckets[idx] = buckets.get(idx, 0) + 1
        if len(buckets) > self.max_buckets:
            self._collapse(buckets)

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of samples — one vectorised bucketing pass."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            return
        self._count += int(finite.size)
        self._sum += float(finite.sum())
        self._sum_sq += float(np.dot(finite, finite))
        self._min = min(self._min, float(finite.min()))
        self._max = max(self._max, float(finite.max()))
        mags = np.abs(finite)
        near_zero = mags < _MIN_TRACKABLE
        self._zero += int(near_zero.sum())
        for buckets, mask in (
            (self._pos, (finite > 0.0) & ~near_zero),
            (self._neg, (finite < 0.0) & ~near_zero),
        ):
            chunk = mags[mask]
            if chunk.size == 0:
                continue
            idxs = np.ceil(np.log(chunk) / self._log_gamma).astype(np.int64)
            uniq, counts = np.unique(idxs, return_counts=True)
            for i, c in zip(uniq.tolist(), counts.tolist()):
                buckets[i] = buckets.get(i, 0) + int(c)
            if len(buckets) > self.max_buckets:
                self._collapse(buckets)

    def _collapse(self, buckets: Dict[int, int]) -> None:
        """Fold the lowest buckets together until under the cap (keeps
        high-quantile accuracy; only the low tail coarsens)."""
        while len(buckets) > self.max_buckets:
            low = sorted(buckets)[:2]
            buckets[low[1]] = buckets.get(low[1], 0) + buckets.pop(low[0])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Samples recorded (excluding ignored non-finite values)."""
        return self._count

    @property
    def bucket_count(self) -> int:
        """Buckets currently held — the memory footprint metric."""
        return len(self._pos) + len(self._neg) + (1 if self._zero else 0)

    def mean(self) -> float:
        """Arithmetic mean of the recorded samples; NaN when empty."""
        return self._sum / self._count if self._count else math.nan

    def std(self) -> float:
        """Population standard deviation; NaN when empty."""
        if not self._count:
            return math.nan
        var = self._sum_sq / self._count - (self._sum / self._count) ** 2
        return math.sqrt(max(var, 0.0))

    def min(self) -> float:
        """Smallest sample (exact); NaN when empty."""
        return self._min if self._count else math.nan

    def max(self) -> float:
        """Largest sample (exact); NaN when empty."""
        return self._max if self._count else math.nan

    def total(self) -> float:
        """Sum of all samples (0 when empty)."""
        return self._sum

    def _bucket_midpoint(self, idx: int) -> float:
        return 2.0 * self._gamma**idx / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile estimate (0..100); NaN when empty.

        Scans buckets in ascending value order (negatives descending by
        index, the zero bucket, positives ascending) for the bucket
        containing rank ``q/100·(n−1)`` — the same rank convention NumPy's
        linear interpolation targets — and returns that bucket's midpoint
        clamped to the exact observed [min, max].
        """
        if not self._count:
            return math.nan
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = (q / 100.0) * (self._count - 1)
        cum = 0
        estimate = self._max
        found = False
        for idx in sorted(self._neg, reverse=True):
            cum += self._neg[idx]
            if cum > rank:
                estimate = -self._bucket_midpoint(idx)
                found = True
                break
        if not found and self._zero:
            cum += self._zero
            if cum > rank:
                estimate = 0.0
                found = True
        if not found:
            for idx in sorted(self._pos):
                cum += self._pos[idx]
                if cum > rank:
                    estimate = self._bucket_midpoint(idx)
                    break
        return min(max(estimate, self._min), self._max)

    # ------------------------------------------------------------------
    # Merge / state transport
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (exact: integer bucket additions)."""
        if not math.isclose(other._gamma, self._gamma):
            raise ValueError("cannot merge sketches with different accuracy")
        for idx, c in other._pos.items():
            self._pos[idx] = self._pos.get(idx, 0) + c
        for idx, c in other._neg.items():
            self._neg[idx] = self._neg.get(idx, 0) + c
        self._zero += other._zero
        self._count += other._count
        self._sum += other._sum
        self._sum_sq += other._sum_sq
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        if len(self._pos) > self.max_buckets:
            self._collapse(self._pos)
        if len(self._neg) > self.max_buckets:
            self._collapse(self._neg)

    def export_state(self) -> Dict[str, object]:
        """Picklable snapshot for worker→parent merges."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "pos": dict(self._pos),
            "neg": dict(self._neg),
            "zero": self._zero,
            "count": self._count,
            "sum": self._sum,
            "sum_sq": self._sum_sq,
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "QuantileSketch":
        """Reconstruct a sketch from :meth:`export_state` output."""
        sk = cls(relative_accuracy=float(state["relative_accuracy"]))  # type: ignore[arg-type]
        sk._pos = {int(k): int(v) for k, v in state["pos"].items()}  # type: ignore[union-attr]
        sk._neg = {int(k): int(v) for k, v in state["neg"].items()}  # type: ignore[union-attr]
        sk._zero = int(state["zero"])  # type: ignore[arg-type]
        sk._count = int(state["count"])  # type: ignore[arg-type]
        sk._sum = float(state["sum"])  # type: ignore[arg-type]
        sk._sum_sq = float(state["sum_sq"])  # type: ignore[arg-type]
        sk._min = float(state["min"])  # type: ignore[arg-type]
        sk._max = float(state["max"])  # type: ignore[arg-type]
        return sk

    def state_equal(self, other: "QuantileSketch") -> bool:
        """True when two sketches hold identical state (the merge
        associativity/parity check)."""
        return (
            self._pos == other._pos
            and self._neg == other._neg
            and self._zero == other._zero
            and self._count == other._count
            and self._min == other._min
            and self._max == other._max
        )


class Histogram:
    """Sample accumulator with summary statistics.

    Samples are appended in O(1); statistics are computed lazily with
    NumPy.  Every observation also feeds a :class:`QuantileSketch`, so
    tail quantiles survive in O(1) memory when the exact sample list is
    turned off (``exact=False``).  With the default ``exact=True`` the
    list is the authoritative source for :meth:`mean`/:meth:`percentile`
    — results are bit-identical to a sketch-free histogram — and the
    sketch answers only the ``p50/p95/p99/p999`` snapshot entries.

    The exact list is this repo's one allow-listed unbounded per-sample
    accumulator (lint rule BRS008): it is the parity oracle the sketch is
    validated against.
    """

    def __init__(self, name: str, exact: bool = True) -> None:
        self.name = name
        self._samples: Optional[List[float]] = [] if exact else None
        self.sketch = QuantileSketch()

    @property
    def exact(self) -> bool:
        """True while the exact per-sample list is retained."""
        return self._samples is not None

    def observe(self, value: float) -> None:
        """Record one sample."""
        v = float(value)
        if self._samples is not None:
            self._samples.append(v)
        self.sketch.observe(v)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples."""
        batch = [float(v) for v in values]
        if self._samples is not None:
            self._samples.extend(batch)
        self.sketch.observe_many(batch)

    def __len__(self) -> int:
        if self._samples is not None:
            return len(self._samples)
        return self.sketch.count

    @property
    def samples(self) -> np.ndarray:
        """All samples as a NumPy array (copy); requires ``exact``."""
        if self._samples is None:
            raise RuntimeError(
                f"histogram {self.name!r} is sketch-only (exact=False); "
                "raw samples were not retained"
            )
        return np.asarray(self._samples, dtype=np.float64)

    def mean(self) -> float:
        """Arithmetic mean; NaN when empty."""
        if self._samples is not None:
            return float(np.mean(self._samples)) if self._samples else math.nan
        return self.sketch.mean()

    def std(self) -> float:
        """Population standard deviation; NaN when empty."""
        if self._samples is not None:
            return float(np.std(self._samples)) if self._samples else math.nan
        return self.sketch.std()

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100); NaN when empty.

        Exact (NumPy linear interpolation) while the sample list is
        retained; the sketch's bounded-relative-error estimate otherwise.
        """
        if self._samples is not None:
            return float(np.percentile(self._samples, q)) if self._samples else math.nan
        return self.sketch.quantile(q)

    def sketch_quantile(self, q: float) -> float:
        """The sketch's q-th percentile estimate (0..100) — O(1) memory,
        identical across serial and merged-worker runs."""
        return self.sketch.quantile(q)

    def min(self) -> float:
        """Smallest sample; NaN when empty."""
        if self._samples is not None:
            return float(np.min(self._samples)) if self._samples else math.nan
        return self.sketch.min()

    def max(self) -> float:
        """Largest sample; NaN when empty."""
        if self._samples is not None:
            return float(np.max(self._samples)) if self._samples else math.nan
        return self.sketch.max()

    def total(self) -> float:
        """Sum of all samples (0 when empty)."""
        if self._samples is not None:
            return float(np.sum(self._samples)) if self._samples else 0.0
        return self.sketch.total()

    def reset(self) -> None:
        """Drop all samples (and the sketch's state)."""
        if self._samples is not None:
            self._samples.clear()
        self.sketch = QuantileSketch()

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Picklable snapshot: raw samples (when exact) plus the sketch."""
        return {
            "samples": list(self._samples) if self._samples is not None else None,
            "sketch": self.sketch.export_state(),
        }

    def merge_exported(self, state: Mapping[str, object]) -> None:
        """Fold a worker histogram's :meth:`export_state` in.

        Samples extend the exact list and sketch buckets add — each path
        merged independently so nothing is double-counted.  A sketch-only
        worker histogram (samples ``None``) degrades this histogram to
        sketch-only too: a partial sample list would silently misreport
        exact statistics.
        """
        samples = state.get("samples")
        if samples is None:
            self._samples = None
        elif self._samples is not None:
            self._samples.extend(float(s) for s in samples)
        sketch_state = state.get("sketch")
        if isinstance(sketch_state, Mapping):
            self.sketch.merge(QuantileSketch.from_state(sketch_state))


class TimeSeries:
    """(time, value) pairs, e.g. load over virtual time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one point; times need not be distinct but must not regress."""
        if self._times and time < self._times[-1]:
            raise ValueError(f"time regression in series {self.name!r}: {time} < {self._times[-1]}")
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (times, values) as NumPy arrays."""
        return (
            np.asarray(self._times, dtype=np.float64),
            np.asarray(self._values, dtype=np.float64),
        )

    def last(self) -> Tuple[float, float]:
        """Most recent (time, value); raises when empty."""
        if not self._times:
            raise IndexError(f"series {self.name!r} is empty")
        return self._times[-1], self._values[-1]


class MetricsRegistry:
    """Named collection of counters, histograms and time series."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = Counter(name)
            self._counters[name] = c
        return c

    def histogram(self, name: str, *, exact: bool = True) -> Histogram:
        """Get (or create) the histogram ``name``.

        ``exact`` only matters on first creation: ``exact=False`` makes
        the new histogram sketch-only (O(1) memory, bounded-error
        quantiles) — the mode ROADMAP item 1's million-node runs use.
        """
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(name, exact=exact)
            self._histograms[name] = h
        return h

    def series(self, name: str) -> TimeSeries:
        """Get (or create) the time series ``name``."""
        s = self._series.get(name)
        if s is None:
            s = TimeSeries(name)
            self._series[name] = s
        return s

    @property
    def counters(self) -> Mapping[str, Counter]:
        return self._counters

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return self._histograms

    @property
    def series_map(self) -> Mapping[str, TimeSeries]:
        return self._series

    def snapshot(self) -> Dict[str, float]:
        """Flat {name: value} view of every accumulator.

        Counters contribute their value, histograms ``<name>.mean`` and
        ``<name>.count`` plus the :data:`TAIL_QUANTILES` sketch estimates
        (``<name>.p50`` … ``<name>.p999``), and time series
        ``<name>.last`` (NaN when empty) and ``<name>.count`` — no
        accumulator kind is silently omitted.
        """
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = float(c.value)
        for name, h in self._histograms.items():
            out[name + ".mean"] = h.mean()
            out[name + ".count"] = float(len(h))
            for suffix, q in TAIL_QUANTILES:
                out[f"{name}.{suffix}"] = h.sketch_quantile(q)
        for name, s in self._series.items():
            out[name + ".last"] = s.last()[1] if len(s) else math.nan
            out[name + ".count"] = float(len(s))
        return out

    def tail_latency_section(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-histogram tail quantiles for the run manifest: ``{name:
        {p50, p95, p99, p999}}`` with non-finite values nulled."""
        out: Dict[str, Dict[str, Optional[float]]] = {}
        for name, h in self._histograms.items():
            entry: Dict[str, Optional[float]] = {}
            for suffix, q in TAIL_QUANTILES:
                v = h.sketch_quantile(q)
                entry[suffix] = v if math.isfinite(v) else None
            out[name] = entry
        return out

    def reset(self) -> None:
        """Reset all accumulators (names are kept)."""
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()
        self._series.clear()

    # ------------------------------------------------------------------
    # Cross-process merge (sweep workers → parent session)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Picklable snapshot of every accumulator, for worker→parent merge.

        Unlike :meth:`snapshot` (a flat numeric view), this keeps full
        fidelity: raw histogram samples *and* sketch buckets travel across
        the process boundary so the merged registry is indistinguishable
        from one that recorded everything in-process.
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "histograms": {n: h.export_state() for n, h in self._histograms.items()},
            "series": {
                n: (list(s._times), list(s._values)) for n, s in self._series.items()
            },
        }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold a worker's :meth:`export_state` into this registry.

        Counters are summed; histogram samples are extended and sketch
        buckets added (each independently — no double counting); series
        points are appended with times clamped to this registry's last
        recorded time (worker clocks are process-local and may sit behind
        the parent's; clamping preserves every point without violating
        monotonicity).  A plain sample list (the pre-sketch export
        format) is still accepted and re-observed.
        """
        for name, value in state.get("counters", {}).items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        histograms: Mapping[str, Union[Mapping[str, object], Sequence[float]]]
        histograms = state.get("histograms", {})  # type: ignore[assignment]
        for name, payload in histograms.items():
            h = self.histogram(name)
            if isinstance(payload, Mapping):
                h.merge_exported(payload)
            else:
                h.observe_many(payload)
        for name, (times, values) in state.get("series", {}).items():  # type: ignore[union-attr]
            s = self.series(name)
            floor = s._times[-1] if s._times else float("-inf")
            for t, v in zip(times, values):
                floor = max(floor, float(t))
                s.record(floor, v)


#: Name suffixes treated as ratio-valued by default: these stats stay
#: histograms even when their value happens to be a whole number (a
#: ``hit_rate`` of exactly 0.0 or 1.0 must not turn into a counter).
RATIO_SUFFIXES: Tuple[str, ...] = ("rate", "ratio", "fraction")


def record_cache_stats(
    registry: MetricsRegistry,
    stats: Mapping[str, float],
    prefix: str = "oracle",
    ratios: Optional[Collection[str]] = None,
) -> None:
    """Mirror a :meth:`PathOracle.cache_stats` snapshot into ``registry``.

    Integer tallies (hits, misses, evictions, dijkstra_runs, …) become
    counters named ``<prefix>.<stat>``; derived ratios such as
    ``hit_rate`` are recorded as histogram observations so repeated
    snapshots aggregate sensibly (``<prefix>.hit_rate.mean`` in
    :meth:`MetricsRegistry.snapshot`).  NaN ratios (no lookups yet) are
    skipped.

    The counter/histogram split is explicit: a stat is ratio-valued when
    its *name* says so — it is listed in ``ratios``, or (when ``ratios``
    is ``None``) it ends with one of :data:`RATIO_SUFFIXES` — so a
    ``hit_rate`` of exactly 0.0 or 1.0 still lands in the histogram.
    Any stat with a fractional value is also kept as a histogram, since
    counters are integer-valued.
    """
    for name, value in stats.items():
        v = float(value)
        if math.isnan(v):
            continue
        if ratios is not None:
            is_ratio = name in ratios
        else:
            is_ratio = name.endswith(RATIO_SUFFIXES)
        if is_ratio or v != int(v):
            registry.histogram(f"{prefix}.{name}").observe(v)
        else:
            registry.counter(f"{prefix}.{name}").set(int(v))


@dataclasses.dataclass
class Summary:
    """Five-number-ish summary of a sample set (with tail percentiles)."""

    count: int
    mean: float
    std: float
    p50: float
    p95: float
    min: float
    max: float
    p99: float = math.nan
    p999: float = math.nan


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a sequence of samples (NaN fields when empty)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return Summary(0, math.nan, math.nan, math.nan, math.nan, math.nan, math.nan)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        p999=float(np.percentile(arr, 99.9)),
        min=float(arr.min()),
        max=float(arr.max()),
    )


__all__.append("Summary")


#: Central catalogue of every metric name the project emits, keyed by
#: literal name or ``prefix.*`` wildcard (dynamic tails such as
#: ``f"messages.{kind}"``), with the factory kind each name must use.
#: The whole-program linter (BRS012, :mod:`repro.lint.wholeprogram`)
#: cross-checks emit sites, literal-name consumers, manifest validators
#: and bench gates against this registry: an unregistered emitter, a
#: kind mismatch, a consumer with no live emitter, or a stale entry all
#: fail the lint run.  Entries are data only — registration never
#: changes how a metric accumulates.
METRIC_NAMES: Dict[str, str] = {
    # -- routing (repro.core.routing / protocol) -----------------------
    "route.count": "counter",
    "route.failures": "counter",
    "route.app_hops": "histogram",
    "route.path_cost": "histogram",
    "route.resolutions": "histogram",
    "messages.*": "counter",
    "latency.*": "histogram",
    # -- §2.3 location operations (repro.core.bristle) -----------------
    "op.join.count": "counter",
    "op.join.registrations": "histogram",
    "op.leave.count": "counter",
    "op.leave.unregistrations": "histogram",
    "op.register.count": "counter",
    "op.register.refreshed": "counter",
    "op.unregister.count": "counter",
    "op.update.count": "counter",
    "op.update.publish_messages": "counter",
    "op.update.total_messages": "histogram",
    "op.update.ldt_messages": "histogram",
    "op.update.ldt_depth": "histogram",
    "op.update.path_cost": "histogram",
    "op.update_many.count": "counter",
    "op.update_many.publish_messages": "counter",
    "op.update_many.multicast_hops": "counter",
    "op.update_many.total_messages": "histogram",
    "op.update_many.ldt_messages": "histogram",
    "op.update_many.ldt_depth": "histogram",
    "op.update_many.batch_size": "histogram",
    "op.discover.count": "counter",
    # -- discovery detours (repro.core.protocol) -----------------------
    "discovery.hops": "histogram",
    "discovery.detour_hops": "histogram",
    "discovery.detour_cost": "histogram",
    "discovery.misses": "counter",
    "discover.rtt": "histogram",
    "advertise.makespan": "histogram",
    # -- LDT builds and multicast (repro.core.ldt) ---------------------
    "ldt.built": "counter",
    "ldt.depth": "histogram",
    "ldt.fanout": "histogram",
    "ldt.messages": "histogram",
    "ldt.multicast.fanout": "histogram",
    "ldt.cache_hits": "counter",
    "ldt.cache_misses": "counter",
    # -- overlay maintenance (repro.overlay) ---------------------------
    "overlay.repairs": "counter",
    "overlay.repaired_nodes": "counter",
    "overlay.mobile.add_node": "counter",
    "overlay.mobile.remove_node": "counter",
    # -- failure detection (repro.core.failure) ------------------------
    "heartbeats": "counter",
    "evictions": "counter",
    "detection_delay": "histogram",
    # -- runtime sanitizer (repro.sanitize) ----------------------------
    "sanitize.checks": "counter",
    "sanitize.checks.*": "counter",
    "sanitize.violations": "counter",
}

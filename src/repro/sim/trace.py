"""Structured trace log for debugging and test assertions.

Protocol code emits trace records ("node 5 resolved key 0x1a2b via node 9")
through a :class:`Tracer`.  Tests assert on the record stream; experiments
normally run with tracing disabled (a no-op fast path so hot loops pay only
an attribute check).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer", "NULL_TRACER"]


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One trace entry: virtual time, category, and free-form fields."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Field lookup by name."""
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        """Fields as a dict, plus ``time`` and ``category``."""
        d = dict(self.fields)
        d["time"] = self.time
        d["category"] = self.category
        return d


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled.

    Parameters
    ----------
    enabled:
        When ``False`` (the default for experiments), :meth:`emit` is a
        near-free early return.
    capacity:
        Optional bound; the oldest records are dropped once exceeded.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._records: List[TraceRecord] = []

    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record an entry (no-op when disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time, category, tuple(sorted(fields.items()))))
        if self.capacity is not None and len(self._records) > self.capacity:
            del self._records[: len(self._records) - self.capacity]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose fields equal every ``match`` item."""
        out = []
        for rec in self._records:
            if rec.category != category:
                continue
            if all(rec.get(k) == v for k, v in match.items()):
                out.append(rec)
        return out

    def count(self, category: str, **match: Any) -> int:
        """Number of matching records."""
        return len(self.filter(category, **match))

    def clear(self) -> None:
        """Drop all recorded entries."""
        self._records.clear()


#: Shared disabled tracer for hot paths that were not handed a real one.
NULL_TRACER = Tracer(enabled=False)

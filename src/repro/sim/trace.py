"""Structured trace log: events, spans, and a streaming JSONL sink.

Protocol code emits trace records ("node 5 resolved key 0x1a2b via node 9")
through a :class:`Tracer`.  Tests assert on the record stream; experiments
normally run with tracing disabled (a no-op fast path so hot loops pay only
an attribute check).

Beyond flat events the tracer supports lightweight **spans** — begin/end
pairs carrying virtual time, wall time (``perf_counter``) and a parent id,
so nested protocol operations (a route containing discovery detours, a
move containing an LDT build) become an inspectable tree.  A completed
span is appended to the record stream as a ``"span"``-category
:class:`TraceRecord` and, when a :class:`JsonlSink` is attached, written
out immediately as one JSON line — traces no longer have to fit in memory.

Bounded tracing uses a ``collections.deque(maxlen=...)`` so overflow
trimming is O(1) per event (the previous list-slice deletion was O(n)).
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import time as _time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

__all__ = [
    "TraceRecord",
    "Span",
    "Tracer",
    "JsonlSink",
    "read_jsonl",
    "NULL_TRACER",
]


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One trace entry: virtual time, category, and free-form fields."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Field lookup by name."""
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        """Fields as a dict, plus ``time`` and ``category``."""
        d = dict(self.fields)
        d["time"] = self.time
        d["category"] = self.category
        return d


@dataclasses.dataclass
class Span:
    """One begin/end span: virtual time, wall time, and a parent id.

    Attributes
    ----------
    id:
        Tracer-unique positive integer (0 is reserved for "no span", the
        handle :meth:`Tracer.span_begin` returns when tracing is off).
    name:
        Operation name, e.g. ``"op.update"`` or ``"route"``.
    parent:
        Id of the enclosing span, or ``None`` for a root span.
    start / end:
        Virtual (simulation) time at begin/end; ``end`` is ``None`` while
        the span is open.
    wall_start / wall_end:
        ``time.perf_counter()`` readings at begin/end.
    fields:
        Free-form annotations, merged from begin and end.
    """

    id: int
    name: str
    parent: Optional[int]
    start: float
    wall_start: float
    end: Optional[float] = None
    wall_end: Optional[float] = None
    fields: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def open(self) -> bool:
        """True until :meth:`Tracer.span_end` closes the span."""
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        """Virtual-time duration (``None`` while open)."""
        return None if self.end is None else self.end - self.start

    @property
    def wall_duration(self) -> Optional[float]:
        """Wall-clock duration in seconds (``None`` while open)."""
        return None if self.wall_end is None else self.wall_end - self.wall_start

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (what the sink writes)."""
        d: Dict[str, Any] = {
            "kind": "span",
            "id": self.id,
            "name": self.name,
            "parent": self.parent,
            "time": self.start,
            "end": self.end,
            "wall_s": self.wall_duration,
        }
        d.update(self.fields)
        return d


def _json_default(value: Any) -> Any:
    """Coerce NumPy scalars (and anything else odd) for ``json.dumps``."""
    try:
        return value.item()
    except AttributeError:
        return str(value)


class JsonlSink:
    """Streaming newline-delimited JSON writer for trace output.

    Accepts a file path (opened for writing, closed by :meth:`close`) or
    any object with a ``write`` method.  Each payload becomes exactly one
    line, flushed lazily by the underlying buffer — the tracer's memory
    bound no longer limits how much can be traced.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            self._fh = open(target, "w")
            self._owns = True
            self.path = str(target)
        self.written = 0

    def write(self, payload: Mapping[str, Any]) -> None:
        """Serialise one record as a JSON line."""
        self._fh.write(json.dumps(payload, default=_json_default) + "\n")
        self.written += 1

    def flush(self) -> None:
        """Flush the underlying stream."""
        self._fh.flush()

    def close(self) -> None:
        """Flush, and close the file when this sink opened it."""
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of dicts.

    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    offending line number so CI schema checks can point at the problem.
    """
    out: List[Dict[str, Any]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON line: {exc}") from None
            if not isinstance(payload, dict):
                raise ValueError(f"{path}:{lineno}: expected a JSON object")
            out.append(payload)
    return out


class Tracer:
    """Collects :class:`TraceRecord` entries and :class:`Span` trees.

    Parameters
    ----------
    enabled:
        When ``False`` (the default for experiments), :meth:`emit` and
        :meth:`span_begin` are near-free early returns.
    capacity:
        Optional in-memory bound; the oldest records are dropped once
        exceeded (O(1) per event via ``deque(maxlen=...)``).  A sink keeps
        receiving every record regardless of the bound.
    sink:
        Optional :class:`JsonlSink` receiving every event and completed
        span as it happens.
    """

    def __init__(
        self,
        enabled: bool = True,
        capacity: Optional[int] = None,
        sink: Optional[JsonlSink] = None,
    ) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.sink = sink
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._next_span_id = 1
        self._open_spans: Dict[int, Span] = {}
        self._span_stack: List[int] = []

    # ------------------------------------------------------------------
    # Flat events
    # ------------------------------------------------------------------
    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record an entry (no-op when disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time, category, tuple(sorted(fields.items())))
        self._records.append(rec)
        if self.sink is not None:
            payload = rec.as_dict()
            payload["kind"] = "event"
            self.sink.write(payload)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span_begin(
        self, time: float, name: str, parent: Optional[int] = None, **fields: Any
    ) -> int:
        """Open a span at virtual ``time``; returns its id (0 when disabled).

        When ``parent`` is omitted the innermost still-open span becomes
        the parent, so nested ``begin``/``end`` pairs form a tree without
        explicit bookkeeping at the call sites.
        """
        if not self.enabled:
            return 0
        sid = self._next_span_id
        self._next_span_id += 1
        if parent is None and self._span_stack:
            parent = self._span_stack[-1]
        span = Span(
            id=sid,
            name=name,
            parent=parent,
            start=float(time),
            wall_start=_time.perf_counter(),
            fields=dict(fields),
        )
        self._open_spans[sid] = span
        self._span_stack.append(sid)
        return sid

    def span_end(self, time: float, span_id: int, **fields: Any) -> Optional[Span]:
        """Close the span ``span_id`` at virtual ``time``.

        Extra ``fields`` are merged into the span's annotations.  Returns
        the completed :class:`Span`, or ``None`` for the disabled-tracer
        handle 0 / an unknown id (lenient so async completions survive a
        tracer swap).
        """
        if not self.enabled or span_id == 0:
            return None
        span = self._open_spans.pop(span_id, None)
        if span is None:
            return None
        span.end = float(time)
        span.wall_end = _time.perf_counter()
        span.fields.update(fields)
        try:
            self._span_stack.remove(span_id)
        except ValueError:
            pass
        record_fields = {
            "name": span.name,
            "id": span.id,
            "parent": span.parent,
            "end": span.end,
            "wall_s": span.wall_duration,
        }
        record_fields.update(span.fields)
        self._records.append(
            TraceRecord(span.start, "span", tuple(sorted(record_fields.items())))
        )
        if self.sink is not None:
            self.sink.write(span.as_dict())
        return span

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        *,
        clock: Optional[Callable[[], float]] = None,
        time: float = 0.0,
        **fields: Any,
    ) -> Iterator[int]:
        """Context-manager span; yields the span id (0 when disabled).

        ``clock`` is a zero-argument callable returning the current virtual
        time (e.g. ``lambda: net.now``); without one, ``time`` stamps both
        begin and end.
        """
        if not self.enabled:
            yield 0
            return
        begin = clock() if clock is not None else time
        sid = self.span_begin(begin, name, **fields)
        try:
            yield sid
        finally:
            self.span_end(clock() if clock is not None else begin, sid)

    def spans(self, name: Optional[str] = None) -> List[TraceRecord]:
        """Completed-span records, optionally filtered by span name."""
        if name is None:
            return [r for r in self._records if r.category == "span"]
        return self.filter("span", name=name)

    def open_span_count(self) -> int:
        """Number of spans begun but not yet ended (should drain to 0)."""
        return len(self._open_spans)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose fields equal every ``match`` item."""
        out = []
        for rec in self._records:
            if rec.category != category:
                continue
            if all(rec.get(k) == v for k, v in match.items()):
                out.append(rec)
        return out

    def count(self, category: str, **match: Any) -> int:
        """Number of matching records."""
        return len(self.filter(category, **match))

    def clear(self) -> None:
        """Drop all recorded entries and forget open spans."""
        self._records.clear()
        self._open_spans.clear()
        self._span_stack.clear()


#: Shared disabled tracer for hot paths that were not handed a real one.
NULL_TRACER = Tracer(enabled=False)

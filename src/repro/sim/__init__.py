"""Deterministic discrete-event simulation substrate.

This package provides the machinery every experiment runs on: a virtual
clock with an event heap (:class:`Engine`), named reproducible random
streams (:class:`RngStreams`), leases and timers, metric accumulators and a
structured tracer.
"""

from .engine import Engine, SimulationError
from .events import Event, EventKind, Priority
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    Summary,
    TimeSeries,
    record_cache_stats,
    summarize,
)
from .nodestats import KINDS, NodeLoadLedger, gini, imbalance_stats, top_hotspots
from .profile import PhaseProfiler
from .rng import RngStreams, derive_seed
from .telemetry import Telemetry, active_telemetry, telemetry_session
from .timers import Lease, TimerWheel
from .trace import NULL_TRACER, JsonlSink, Span, TraceRecord, Tracer, read_jsonl

__all__ = [
    "Engine",
    "SimulationError",
    "Event",
    "EventKind",
    "Priority",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "record_cache_stats",
    "Summary",
    "TimeSeries",
    "summarize",
    "KINDS",
    "NodeLoadLedger",
    "gini",
    "imbalance_stats",
    "top_hotspots",
    "PhaseProfiler",
    "RngStreams",
    "derive_seed",
    "Telemetry",
    "active_telemetry",
    "telemetry_session",
    "Lease",
    "TimerWheel",
    "NULL_TRACER",
    "JsonlSink",
    "Span",
    "TraceRecord",
    "Tracer",
    "read_jsonl",
]

"""Per-node load ledger: who absorbs the traffic, and how unevenly.

The run-level metrics (``repro.sim.metrics``) aggregate per *run*; this
module keys the same accounting by *node* so hotspot questions — which
stationary nodes serve the discovery detours, who holds the location
records, who fans an LDT wave out — become answerable from a manifest.
"Rendezvous Regions"-style location services live or die by load
concentration at responsible nodes, so the ledger also derives the
imbalance statistics a load-balance argument needs: max/mean ratio, Gini
coefficient, and a top-k hotspot table.

Counts live in one grow-by-doubling ``int64`` NumPy matrix (rows =
nodes, columns = :data:`KINDS`), so recording is integer arithmetic —
deterministic, RNG-free, and exactly mergeable across ``sweep_map``
workers (bucket addition commutes with recording order).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

__all__ = [
    "KINDS",
    "NodeLoadLedger",
    "gini",
    "imbalance_stats",
    "top_hotspots",
]

#: The per-node load kinds the ledger tracks:
#:
#: ``routed``
#:     messages a node forwarded (every application-level hop's source);
#: ``terminated``
#:     routed messages delivered *at* the node (the final hop's target);
#: ``registrations``
#:     location-record publish messages the node absorbed as a
#:     stationary holder (§2.3.1 update fan-in);
#: ``ldt_fanout``
#:     LDT advertisement copies the node forwarded to its children when a
#:     dissemination tree was built over it (Fig 4 fan-out served);
#: ``detour``
#:     discovery detours the node served as the resolving record holder
#:     (Fig 2's Z — the Table-1 "infrastructure load").
KINDS: Tuple[str, ...] = (
    "routed",
    "terminated",
    "registrations",
    "ldt_fanout",
    "detour",
)

_KIND_INDEX: Dict[str, int] = {k: i for i, k in enumerate(KINDS)}


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector (0 = perfectly
    balanced, → 1 = one node absorbs everything).

    Uses the sorted-rank identity ``G = 2·Σ i·x_(i) / (n·Σ x) − (n+1)/n``
    (O(n log n), vectorised).  Empty or all-zero vectors return 0.0.
    """
    arr = np.asarray(counts, dtype=np.float64).ravel()
    n = int(arr.size)
    total = float(arr.sum())
    if n == 0 or total <= 0.0:
        return 0.0
    ordered = np.sort(arr)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * np.dot(ranks, ordered) / (n * total) - (n + 1) / n)


def imbalance_stats(counts: np.ndarray) -> Dict[str, float]:
    """Imbalance summary of a per-node count vector.

    Returns ``nodes`` (population size), ``total``, ``mean``, ``max``,
    ``max_mean`` (the hotspot ratio; 0 when the mean is 0) and ``gini``.
    """
    arr = np.asarray(counts, dtype=np.float64).ravel()
    n = int(arr.size)
    total = float(arr.sum()) if n else 0.0
    mean = total / n if n else 0.0
    peak = float(arr.max()) if n else 0.0
    return {
        "nodes": float(n),
        "total": total,
        "mean": mean,
        "max": peak,
        "max_mean": (peak / mean) if mean > 0.0 else 0.0,
        "gini": gini(arr),
    }


def top_hotspots(loads: Mapping[int, int], k: int = 10) -> List[Tuple[int, int]]:
    """The ``k`` most-loaded ``(node_key, count)`` pairs, deterministic.

    Sorted by descending count, ties broken by ascending key, zero-load
    nodes omitted — the same ordering whatever the mapping's insertion
    order was.
    """
    ranked = sorted(
        ((key, count) for key, count in loads.items() if count > 0),
        key=lambda kv: (-kv[1], kv[0]),
    )
    return ranked[: max(int(k), 0)]


class NodeLoadLedger:
    """Vectorised per-node counters for every :data:`KINDS` load kind.

    Node keys register lazily on first touch; counts for all kinds share
    one ``(nodes, kinds)`` int64 matrix that doubles as it grows, so a
    bulk :meth:`add_many` is a single ``np.add.at`` scatter.  Recording
    is pure integer counting — no RNG draws, no oracle reads — so turning
    the ledger on cannot perturb simulation results.
    """

    def __init__(self) -> None:
        self._index: Dict[int, int] = {}
        self._keys: List[int] = []
        self._counts: np.ndarray = np.zeros((0, len(KINDS)), dtype=np.int64)

    def __len__(self) -> int:
        return len(self._keys)

    def _row(self, key: int) -> int:
        """Matrix row for ``key``, registering (and growing) on demand."""
        row = self._index.get(key)
        if row is not None:
            return row
        row = len(self._keys)
        if row >= self._counts.shape[0]:
            grown = np.zeros(
                (max(16, 2 * self._counts.shape[0]), len(KINDS)), dtype=np.int64
            )
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        self._index[key] = row
        self._keys.append(int(key))
        return row

    @staticmethod
    def _col(kind: str) -> int:
        try:
            return _KIND_INDEX[kind]
        except KeyError:
            raise ValueError(f"unknown load kind {kind!r}; expected one of {KINDS}")

    def register_nodes(self, keys: Iterable[int]) -> None:
        """Pre-register nodes at zero load, so imbalance statistics range
        over the whole population instead of only the nodes ever hit."""
        for key in keys:
            self._row(int(key))

    def add(self, kind: str, key: int, amount: int = 1) -> None:
        """Charge ``amount`` load of ``kind`` to node ``key``."""
        # Resolve the row before subscripting: _row may reallocate the
        # matrix while growing it.
        row = self._row(int(key))
        self._counts[row, self._col(kind)] += int(amount)

    def add_many(self, kind: str, keys: Iterable[int]) -> None:
        """Charge one unit of ``kind`` per entry of ``keys`` (repeats
        accumulate) — a single vectorised scatter-add."""
        key_list = [int(k) for k in keys]
        if not key_list:
            return
        col = self._col(kind)
        if len(key_list) < 8:
            for k in key_list:
                row = self._row(k)
                self._counts[row, col] += 1
            return
        rows = np.fromiter(
            (self._row(k) for k in key_list), dtype=np.intp, count=len(key_list)
        )
        np.add.at(self._counts[:, col], rows, 1)

    def total(self, kind: str) -> int:
        """Total load of ``kind`` across every node."""
        n = len(self._keys)
        return int(self._counts[:n, self._col(kind)].sum())

    def counts(self, kind: str) -> Dict[int, int]:
        """``node key → count`` for ``kind`` (registered nodes only)."""
        col = self._col(kind)
        return {k: int(self._counts[i, col]) for i, k in enumerate(self._keys)}

    def counts_array(self, kind: str) -> np.ndarray:
        """Count vector for ``kind`` over registered nodes (a copy,
        aligned with :attr:`keys`)."""
        n = len(self._keys)
        return self._counts[:n, self._col(kind)].copy()

    @property
    def keys(self) -> List[int]:
        """Registered node keys, in registration order (a copy)."""
        return list(self._keys)

    def imbalance(self, kind: str) -> Dict[str, float]:
        """:func:`imbalance_stats` over the registered population."""
        return imbalance_stats(self.counts_array(kind))

    def hotspots(self, kind: str, k: int = 10) -> List[Tuple[int, int]]:
        """Top-``k`` ``(node key, count)`` hotspots for ``kind``."""
        return top_hotspots(self.counts(kind), k)

    def manifest_section(self, top: int = 5) -> Dict[str, Dict[str, object]]:
        """The manifest's ``node_load`` section: per active kind, the
        imbalance stats plus a ``top`` hotspot table (``[key, count]``
        pairs).  Kinds with zero recorded load are omitted so quiet runs
        stay compact."""
        section: Dict[str, Dict[str, object]] = {}
        for kind in KINDS:
            arr = self.counts_array(kind)
            if arr.size == 0 or int(arr.sum()) == 0:
                continue
            stats = imbalance_stats(arr)
            entry: Dict[str, object] = {k: round(v, 9) for k, v in stats.items()}
            entry["top"] = [
                [int(key), int(count)] for key, count in self.hotspots(kind, top)
            ]
            section[kind] = entry
        return section

    # ------------------------------------------------------------------
    # Cross-process merge (sweep workers → parent session)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Picklable snapshot (keys + per-kind counts) for worker→parent
        merges.  Merging exported states in any grouping yields the same
        ledger as recording everything in one process — counts are
        integers and addition is associative."""
        n = len(self._keys)
        return {
            "keys": list(self._keys),
            "counts": self._counts[:n].tolist(),
        }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold a worker's :meth:`export_state` into this ledger."""
        keys = state.get("keys", [])
        counts = state.get("counts", [])
        assert isinstance(keys, list) and isinstance(counts, list)
        for key, row in zip(keys, counts):
            r = self._row(int(key))
            self._counts[r] += np.asarray(row, dtype=np.int64)

"""Columnar (struct-of-arrays) state engine for million-node simulation.

The object model tops out around N = 4096: every node is a Python object
and every event touches one lease at a time.  This module keeps the hot
per-node state in parallel NumPy columns instead and processes whole
event batches with vectorised kernels:

* :class:`ColumnarStore` — the location-record table as sorted parallel
  columns (key, address triple, lease times, replica holders) with a
  precomputed expiry ordering, so a TTL sweep slices off the expired
  prefix instead of checking every lease;
* :class:`ColumnarDirectory` — a drop-in
  :class:`repro.core.location.LocationDirectory` backend over that store.
  The object directory stays on as the **parity oracle**: on any seeded
  scenario both must produce bit-identical :meth:`snapshot` tuples (the
  oracle-vs-bulk pattern the batched-update and churn-repair PRs
  established);
* placement kernels — :func:`ring_nearest` (vectorised
  ``KeySpace.nearest_key``) and :func:`expand_holders` (vectorised
  replica placement, exact replica order of
  ``LocationDirectory._holders_near``);
* :func:`ldt_fanout` — closed-form batched Fig-4 dissemination fanout
  (message count and tree depth for many LDTs at once, validated against
  ``build_ldt`` on uniform-capacity registries);
* :class:`StatePairColumns` — registration/state-pair tables as columns
  (registrant, key, address, lease), bridged to/from the per-node
  :class:`repro.overlay.state.StateTable` object model;
* :func:`run_scale_shard` — one keyspace shard of the million-node
  churn+traffic scenario.  Every per-key event stream is derived by
  hashing the key itself (:func:`mix64`), so any shard partition of the
  key population replays bit-identically to the serial run; the driver
  (``repro.experiments.ext_scaling``) fans shards out through
  ``sweep_map`` and merges snapshots by concatenation.

Kernels operate on whole columns; per-node Python loops over full
membership arrays are banned here by lint rule BRS009.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import sanitize as _sanitize
from ..core.ldt_forest import build_forest_columns, forest_depths, forest_from_columns
from .rng import derive_seed

__all__ = [
    "mix64",
    "ring_nearest",
    "replica_offsets",
    "expand_holders",
    "ldt_fanout",
    "ExpiryHeap",
    "ColumnarStore",
    "ColumnarDirectory",
    "StatePairColumns",
    "OWNED_COLUMNS",
    "ScaleShardParams",
    "ScaleShardResult",
    "TrafficMixParams",
    "run_scale_shard",
    "run_traffic_shard",
    "merge_shard_results",
    "snapshot_checksum",
]

#: Columnar kernels pack keys into uint64 columns; identifier rings wider
#: than 63 bits would overflow the ring-distance arithmetic.
MAX_COLUMNAR_BITS = 63

#: Every column attribute owned by this module's struct-of-arrays tables
#: (:class:`ColumnarStore` rows plus :class:`StatePairColumns.COLUMNS`).
#: The whole-program linter (BRS013, :mod:`repro.lint.wholeprogram`)
#: flags any store to one of these attributes on a columnar table
#: outside this kernel module: column invariants (sort order, expiry
#: ordering, holder fan-out) only hold when mutations go through the
#: batch API (``upsert``/``remove``/``expire``/``refresh``).
OWNED_COLUMNS = (
    "keys",
    "router",
    "port",
    "epoch",
    "published",
    "ttl",
    "expiry",
    "holders",
    "holder_count",
    "registrant",
    "key",
    "refreshed",
    "capacity",
    # LDT forest columns (repro.core.ldt_forest — the other columnar
    # kernel module): level-synchronous build invariants only hold when
    # these are written by build_forest_columns/build_ldt_forest.
    "tree_id",
    "tree_offsets",
    "parent",
    "parent_row",
    "level",
    "assigned",
)

_U64 = np.uint64
_I64 = np.int64
_F64 = np.float64

# splitmix64 finalizer constants (same mixing as repro.sim.rng.derive_seed).
_MIX_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MUL2 = np.uint64(0x94D049BB133111EB)
_MIX_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def mix64(values: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorised splitmix64 finalizer over a uint64 column.

    Per-key randomness for the scale engine comes from hashing the key
    itself (plus a salt derived from the master seed), never from a
    sequential stream — that is what makes event streams independent of
    how the key population is sharded.
    """
    with np.errstate(over="ignore"):
        z = values.astype(_U64, copy=True)
        z += _U64(salt & 0xFFFFFFFFFFFFFFFF) + _MIX_GOLDEN
        z = (z ^ (z >> _U64(30))) * _MIX_MUL1
        z = (z ^ (z >> _U64(27))) * _MIX_MUL2
        return z ^ (z >> _U64(31))


def ring_nearest(
    sorted_keys: np.ndarray, targets: np.ndarray, bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised ``KeySpace.nearest_key`` over a whole target column.

    Returns ``(owner_idx, owner_key)`` — for each target, the index and
    value of the member key with minimal ring distance (ties to the
    numerically smaller key, bit-identical to the scalar oracle).
    """
    if sorted_keys.size == 0:
        raise ValueError("empty key array")
    if bits > MAX_COLUMNAR_BITS:
        raise ValueError(f"columnar kernels support bits <= {MAX_COLUMNAR_BITS}")
    keys = sorted_keys.astype(_U64, copy=False)
    tgt = targets.astype(_U64, copy=False)
    n = keys.size
    size = _U64(1 << bits)
    idx = np.searchsorted(keys, tgt)
    ia = idx % n  # successor (wraps to 0 past the end)
    ib = (idx - 1) % n  # predecessor
    ka, kb = keys[ia], keys[ib]
    with np.errstate(over="ignore"):
        mask = size - _U64(1)
        da_fwd = (ka - tgt) & mask
        db_fwd = (kb - tgt) & mask
    da = np.minimum(da_fwd, size - da_fwd)
    db = np.minimum(db_fwd, size - db_fwd)
    take_b = (db < da) | ((db == da) & (kb < ka))
    owner_idx = np.where(take_b, ib, ia)
    return owner_idx.astype(_I64), keys[owner_idx]


def replica_offsets(count: int) -> np.ndarray:
    """The replica placement order around an owner: 0, +1, −1, +2, −2, …

    Matches the alternate right/left walk of
    ``LocationDirectory._holders_near``; the first ``count`` offsets are
    always distinct modulo any membership size ``n >= count`` (their span
    is ``count − 1``), so no per-holder dedup is ever needed.
    """
    steps = np.arange(1, count, dtype=_I64)
    signed = np.where(steps % 2 == 1, (steps + 1) // 2, -(steps // 2))
    return np.concatenate([np.zeros(1, dtype=_I64), signed])


def expand_holders(
    sorted_keys: np.ndarray, owner_idx: np.ndarray, replication: int
) -> np.ndarray:
    """Vectorised replica expansion: holder matrix of shape ``(Q, count)``.

    Row ``q`` lists the holders for a record owned by the member at sorted
    index ``owner_idx[q]`` — the owner plus its ring neighbours in the
    alternate right/left order, ``min(replication, n)`` holders total,
    byte-identical (values and order) to the scalar oracle's walk.
    """
    keys = sorted_keys.astype(_U64, copy=False)
    n = keys.size
    count = min(replication, int(n))
    offs = replica_offsets(count)
    idx = (owner_idx.astype(_I64).reshape(-1, 1) + offs.reshape(1, -1)) % n
    return keys[idx]


def ldt_fanout(
    registry_sizes: np.ndarray,
    root_k: np.ndarray,
    member_k: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched Fig-4 dissemination cost for many LDTs at once.

    For uniform-capacity registries the Fig-4 recursion is closed-form:
    a root with capacity for ``k`` partitions splits its ``R`` members
    round-robin, each partition head (capacity ``member_k``) recurses on
    its partition minus itself.  Messages are always ``R`` (every member
    receives the advertisement exactly once); depth follows the shrinking
    recursion ``R → ceil(R / k) − 1``.

    Parameters are per-tree columns: registry size, the root's partition
    count ``max(1, floor(Avail_root / v))`` and the members' shared
    partition count.  Returns ``(messages, depth)`` columns, validated
    against ``repro.core.ldt.build_ldt`` in the parity tests.
    """
    sizes = registry_sizes.astype(_I64, copy=True)
    rk = np.maximum(root_k.astype(_I64, copy=False), 1)
    mk = np.maximum(member_k.astype(_I64, copy=False), 1)
    messages = sizes.copy()
    depth = np.zeros_like(sizes)
    remaining = sizes.copy()
    k = rk.copy()
    active = remaining > 0
    while np.any(active):
        depth[active] += 1
        rem = remaining[active]
        kk = k[active]
        remaining[active] = -(-rem // kk) - 1  # ceil(rem / k) − 1
        k[active] = mk[active]
        active = remaining > 0
    return messages, depth


def snapshot_checksum(rows: Sequence[tuple]) -> str:
    """SHA-256 over a canonical snapshot (the cross-run identity)."""
    h = hashlib.sha256()
    for row in rows:
        h.update(repr(row).encode())
    return h.hexdigest()


class ExpiryHeap:
    """Min-expiry index shared by both directory backends (lazy deletion).

    ``push`` records ``(expires_at, key)``; ``pop_expired`` pops every
    entry strictly below ``now`` and hands each to a validity callback
    (re-published or withdrawn keys leave stale entries behind, which the
    callback rejects).  Expiry cost is O(expired · log K) instead of the
    O(total records) full scan it replaces.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, expires_at: float, key: int) -> None:
        """Record that ``key``'s current lease lapses at ``expires_at``."""
        heapq.heappush(self._heap, (float(expires_at), int(key)))

    def clear(self) -> None:
        """Drop every entry (callers re-push on a full re-placement)."""
        self._heap.clear()

    def pop_expired(self, now: float) -> List[Tuple[float, int]]:
        """Pop every entry with ``expires_at < now`` (stale ones included;
        the caller validates against its own record table)."""
        out: List[Tuple[float, int]] = []
        heap = self._heap
        while heap and heap[0][0] < now:
            out.append(heapq.heappop(heap))
        return out


class ColumnarStore:
    """The location-record table as sorted parallel columns.

    One row per *key* (all replicas of a record share its lease and
    address, so the replica dimension folds into a fixed-width holder
    matrix).  Rows stay sorted by key; every mutation is a batch rebuild
    (O(K + B log B) for a B-row batch), and a stable expiry ordering is
    recomputed alongside so :meth:`expire` is a prefix slice.
    """

    def __init__(self, replication: int) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.replication = replication
        self.keys = np.empty(0, dtype=_U64)
        self.router = np.empty(0, dtype=_I64)
        self.port = np.empty(0, dtype=_I64)
        self.epoch = np.empty(0, dtype=_I64)
        self.published = np.empty(0, dtype=_F64)
        self.ttl = np.empty(0, dtype=_F64)
        self.expiry = np.empty(0, dtype=_F64)
        self.holders = np.empty((0, replication), dtype=_U64)
        self.holder_count = np.empty(0, dtype=_I64)
        #: Stable argsort of ``expiry`` (ties resolve in key order), the
        #: sorted expiry column behind the one-pass TTL sweep.
        self._exp_order = np.empty(0, dtype=_I64)

    def __len__(self) -> int:
        return int(self.keys.size)

    # ------------------------------------------------------------------
    # Mutation (batch-first)
    # ------------------------------------------------------------------
    def _set(self, **cols: np.ndarray) -> None:
        for name, arr in cols.items():
            setattr(self, name, arr)
        self._exp_order = np.argsort(self.expiry, kind="stable").astype(_I64)
        if _sanitize.ACTIVE:
            _sanitize.check_columnar_store(self)

    def _select(self, mask: np.ndarray) -> Dict[str, np.ndarray]:
        return {
            "keys": self.keys[mask],
            "router": self.router[mask],
            "port": self.port[mask],
            "epoch": self.epoch[mask],
            "published": self.published[mask],
            "ttl": self.ttl[mask],
            "expiry": self.expiry[mask],
            "holders": self.holders[mask],
            "holder_count": self.holder_count[mask],
        }

    def upsert(
        self,
        keys: np.ndarray,
        router: np.ndarray,
        port: np.ndarray,
        epoch: np.ndarray,
        published: np.ndarray,
        ttl: np.ndarray,
        holders: np.ndarray,
        holder_count: np.ndarray,
    ) -> None:
        """Insert-or-replace a batch of rows (batch keys must be unique)."""
        keys = keys.astype(_U64, copy=False)
        if keys.size == 0:
            return
        if self.keys.size:
            keep = ~np.isin(self.keys, keys)
            base = self._select(keep)
        else:
            base = self._select(np.zeros(0, dtype=bool))
        new_expiry = published + ttl
        pad = self.replication - holders.shape[1]
        if pad > 0:
            holders = np.concatenate(
                [holders, np.zeros((holders.shape[0], pad), dtype=_U64)], axis=1
            )
        merged_keys = np.concatenate([base["keys"], keys])
        order = np.argsort(merged_keys, kind="stable")
        self._set(
            keys=merged_keys[order],
            router=np.concatenate([base["router"], router.astype(_I64)])[order],
            port=np.concatenate([base["port"], port.astype(_I64)])[order],
            epoch=np.concatenate([base["epoch"], epoch.astype(_I64)])[order],
            published=np.concatenate([base["published"], published.astype(_F64)])[order],
            ttl=np.concatenate([base["ttl"], ttl.astype(_F64)])[order],
            expiry=np.concatenate([base["expiry"], new_expiry.astype(_F64)])[order],
            holders=np.concatenate([base["holders"], holders.astype(_U64)])[order],
            holder_count=np.concatenate(
                [base["holder_count"], holder_count.astype(_I64)]
            )[order],
        )

    def remove(self, keys: np.ndarray) -> np.ndarray:
        """Drop rows for ``keys``; returns the removed keys' holder counts
        (zero-length when nothing matched)."""
        keys = keys.astype(_U64, copy=False)
        if not self.keys.size or not keys.size:
            return np.empty(0, dtype=_I64)
        hit = np.isin(self.keys, keys)
        counts = self.holder_count[hit]
        self._set(**self._select(~hit))
        return counts

    def expire(self, now: float) -> np.ndarray:
        """One-pass TTL sweep: remove every row with ``expiry < now``.

        The expired rows form a prefix of the precomputed expiry ordering,
        so the sweep costs O(expired) plus one ``searchsorted`` — never a
        scan of the live rows.  Returns the expired keys, ascending.
        """
        if not self.keys.size:
            return np.empty(0, dtype=_U64)
        order = self._exp_order
        cut = int(np.searchsorted(self.expiry[order], now, side="left"))
        if cut == 0:
            return np.empty(0, dtype=_U64)
        dead_rows = order[:cut]
        dead_keys = np.sort(self.keys[dead_rows])
        keep = np.ones(self.keys.size, dtype=bool)
        keep[dead_rows] = False
        self._set(**self._select(keep))
        return dead_keys

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices for ``keys``: ``(rows, found_mask)`` via one
        ``searchsorted`` over the full key column."""
        q = keys.astype(_U64, copy=False)
        if not self.keys.size:
            return np.zeros(q.size, dtype=_I64), np.zeros(q.size, dtype=bool)
        idx = np.searchsorted(self.keys, q)
        idx_c = np.minimum(idx, self.keys.size - 1)
        found = self.keys[idx_c] == q
        return idx_c.astype(_I64), found

    def resolve_many(
        self, keys: np.ndarray, now: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bulk lookup: ``(rows, hit_mask)`` where a hit is a stored row
        whose lease is still fresh at ``now``."""
        rows, found = self.find(keys)
        fresh = np.zeros(found.shape, dtype=bool)
        fresh[found] = self.expiry[rows[found]] >= now
        return rows, found & fresh

    def snapshot_rows(self) -> List[tuple]:
        """Canonical per-replica rows, sorted by (key, holder) — the
        parity contract shared with ``LocationDirectory.snapshot``."""
        out: List[tuple] = []
        for i in range(len(self)):  # repro-lint: disable=BRS009 canonical export walks rows by design
            base = (
                int(self.router[i]),
                int(self.port[i]),
                int(self.epoch[i]),
                float(self.published[i]),
                float(self.ttl[i]),
            )
            key = int(self.keys[i])
            for h in sorted(
                int(h) for h in self.holders[i, : int(self.holder_count[i])]
            ):
                out.append((key, h) + base)
        return out


class ColumnarDirectory:
    """Struct-of-arrays drop-in for ``LocationDirectory``.

    Same public surface and bit-identical state evolution (the object
    directory is the parity oracle); storage and bulk paths run on
    :class:`ColumnarStore` columns.  Owner resolution has two modes:

    * **overlay mode** (``stationary_overlay=``) delegates to the
      overlay's own ``owner_of`` — exact for all five substrate
      geometries (ring-nearest, Chord successor, Tapestry surrogate,
      CAN zones), which is what the cross-overlay parity tests need;
    * **array mode** (``stationary_keys=``) uses the vectorised
      :func:`ring_nearest` kernel over a static membership column — the
      million-node scale engine path, no overlay objects at all.
    """

    def __init__(
        self,
        space,
        stationary_overlay=None,
        replication: int = 3,
        ledger=None,
        *,
        stationary_keys: Optional[np.ndarray] = None,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if (stationary_overlay is None) == (stationary_keys is None):
            raise ValueError(
                "pass exactly one of stationary_overlay= or stationary_keys="
            )
        if space.bits > MAX_COLUMNAR_BITS:
            raise ValueError(
                f"ColumnarDirectory supports key_bits <= {MAX_COLUMNAR_BITS}"
            )
        self.space = space
        self.overlay = stationary_overlay
        self._static_keys = (
            None
            if stationary_keys is None
            else np.sort(stationary_keys.astype(_U64, copy=False))
        )
        self.replication = replication
        self.ledger = ledger
        self.store = ColumnarStore(replication)
        self.publish_count = 0
        self.batch_publish_count = 0
        self.resolve_count = 0

    # ------------------------------------------------------------------
    # Holder selection
    # ------------------------------------------------------------------
    @property
    def _member_keys(self) -> np.ndarray:
        if self._static_keys is not None:
            return self._static_keys
        return self.overlay.keys.astype(_U64, copy=False)

    def _owner_indices(self, keys: np.ndarray) -> np.ndarray:
        """Sorted member index of each key's responsible owner."""
        members = self._member_keys
        if self._static_keys is not None:
            idx, _ = ring_nearest(members, keys, self.space.bits)
            return idx
        owners = np.fromiter(
            (self.overlay.owner_of(int(k)) for k in keys), dtype=_U64, count=keys.size
        )
        return np.searchsorted(members, owners).astype(_I64)

    def holders_matrix(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised holder sets: ``(holders (Q, count), count)``."""
        members = self._member_keys
        owner_idx = self._owner_indices(keys)
        mat = expand_holders(members, owner_idx, self.replication)
        return mat, mat.shape[1]

    def holders_for(self, key: int) -> List[int]:
        """Stationary nodes storing ``key``'s record (owner + neighbours)."""
        mat, _ = self.holders_matrix(np.asarray([key], dtype=_U64))
        return [int(h) for h in mat[0]]

    def holders_for_many(self, keys) -> Dict[int, List[int]]:
        """Batched :meth:`holders_for` (same shape as the oracle's)."""
        key_list = [int(k) for k in keys]
        if not key_list:
            return {}
        mat, _ = self.holders_matrix(np.asarray(key_list, dtype=_U64))
        return {
            k: [int(h) for h in mat[i]] for i, k in enumerate(key_list)
        }

    # ------------------------------------------------------------------
    # Publish / resolve / withdraw
    # ------------------------------------------------------------------
    def _publish_batch(
        self, items: List[Tuple[int, "NetworkAddress"]], now: float, ttl: float
    ) -> Tuple[np.ndarray, int]:
        """Vectorised store update for ascending ``(key, addr)`` pairs;
        returns the holder matrix and per-row holder count."""
        keys = np.asarray([k for k, _ in items], dtype=_U64)
        mat, count = self.holders_matrix(keys)
        b = len(items)
        self.store.upsert(
            keys=keys,
            router=np.asarray([a.router for _, a in items], dtype=_I64),
            port=np.asarray([a.port for _, a in items], dtype=_I64),
            epoch=np.asarray([a.epoch for _, a in items], dtype=_I64),
            published=np.full(b, float(now), dtype=_F64),
            ttl=np.full(b, float(ttl), dtype=_F64),
            holders=mat,
            holder_count=np.full(b, count, dtype=_I64),
        )
        if self.ledger is not None:
            self.ledger.add_many("registrations", mat.reshape(-1).tolist())
        return mat, count

    def publish(self, key: int, addr, now: float, ttl: float) -> List[int]:
        """Store ``key → addr`` at every holder; returns the holder keys."""
        mat, _ = self._publish_batch([(int(key), addr)], now, ttl)
        self.publish_count += 1
        return [int(h) for h in mat[0]]

    def publish_many(self, updates, now: float, ttl: float):
        """Batched publish, same result contract as the oracle's."""
        from ..core.location import BatchPublishResult

        items = sorted((int(k), addr) for k, addr in updates.items())
        mat, _ = self._publish_batch(items, now, ttl)
        holders_map: Dict[int, List[int]] = {}
        holder_batches: Dict[int, List[int]] = {}
        for i, (key, _) in enumerate(items):
            row = [int(h) for h in mat[i]]
            holders_map[key] = row
            for h in row:
                holder_batches.setdefault(h, []).append(key)
        self.publish_count += len(items)
        self.batch_publish_count += 1
        return BatchPublishResult(holders=holders_map, holder_batches=holder_batches)

    def _address_at(self, row: int):
        from ..net.address import NetworkAddress

        return NetworkAddress(
            router=int(self.store.router[row]),
            port=int(self.store.port[row]),
            epoch=int(self.store.epoch[row]),
        )

    def resolve(self, key: int, now: float):
        """Freshest record among ``key``'s *current* holders.

        All replicas of a key share one record, so this reduces to: the
        row exists, its lease is fresh, and at least one of the holders
        that store it is still a current holder for the key.
        """
        self.resolve_count += 1
        rows, hit = self.store.resolve_many(np.asarray([key], dtype=_U64), now)
        if not bool(hit[0]):
            return None
        row = int(rows[0])
        stored = set(
            int(h)
            for h in self.store.holders[row, : int(self.store.holder_count[row])]
        )
        if stored.isdisjoint(self.holders_for(int(key))):
            return None
        return self._address_at(row)

    def resolve_at(self, holder: int, key: int, now: float):
        """Lookup at one specific holder (discovery route terminus)."""
        rows, hit = self.store.resolve_many(np.asarray([key], dtype=_U64), now)
        if not bool(hit[0]):
            return None
        row = int(rows[0])
        stored = self.store.holders[row, : int(self.store.holder_count[row])]
        if not bool(np.any(stored == _U64(int(holder)))):
            return None
        return self._address_at(row)

    def resolve_array(
        self, keys: np.ndarray, now: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bulk lookup resolution for the scale engine: one searchsorted
        over the full key column.  Returns ``(hit, router, port, epoch)``
        columns; counts every query in ``resolve_count``."""
        self.resolve_count += int(keys.size)
        rows, hit = self.store.resolve_many(keys, now)
        router = np.where(hit, self.store.router[rows], -1)
        port = np.where(hit, self.store.port[rows], -1)
        epoch = np.where(hit, self.store.epoch[rows], -1)
        return hit, router, port, epoch

    def withdraw(self, key: int) -> int:
        """Remove all records for ``key``; returns replicas removed."""
        counts = self.store.remove(np.asarray([key], dtype=_U64))
        return int(counts.sum())

    def withdraw_many(self, keys: np.ndarray) -> int:
        """Bulk withdrawal; returns total replicas removed."""
        counts = self.store.remove(keys)
        return int(counts.sum())

    def expire_leases(self, now: float) -> List[int]:
        """Drop every record whose lease lapsed before ``now`` — the
        sorted-expiry prefix sweep.  Returns the expired keys, ascending."""
        return [int(k) for k in self.store.expire(now)]

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def records_at(self, holder: int) -> Dict[int, "LocationRecord"]:
        """All records a holder currently stores (object view for parity
        with the oracle's per-holder responsibility accounting)."""
        from ..core.location import LocationRecord

        s = self.store
        # Only the first holder_count slots of a row are live; the rest is
        # zero padding that must not match a real holder key of 0.
        valid = np.arange(s.holders.shape[1])[None, :] < s.holder_count[:, None]
        mask = np.any((s.holders == _U64(int(holder))) & valid, axis=1)
        out: Dict[int, LocationRecord] = {}
        for row in np.nonzero(mask)[0]:
            r = int(row)
            key = int(s.keys[r])
            out[key] = LocationRecord(
                key=key,
                addr=self._address_at(r),
                published_at=float(s.published[r]),
                ttl=float(s.ttl[r]),
            )
        return out

    def holder_load(self) -> Dict[int, int]:
        """Record count per stationary holder (live holders only)."""
        s = self.store
        if not len(s):
            return {}
        valid = np.arange(s.holders.shape[1])[None, :] < s.holder_count[:, None]
        uniq, counts = np.unique(s.holders[valid], return_counts=True)
        return {int(k): int(c) for k, c in zip(uniq, counts)}

    def rebalance_after_membership_change(self, all_keys, now: float) -> None:
        """Re-place every live, fresh record on the holders implied by the
        current membership (same survivors as the oracle's rebalance)."""
        s = self.store
        if not len(s):
            return
        keep = s.expiry >= now
        if all_keys is not None:
            live = np.asarray(sorted({int(k) for k in all_keys}), dtype=_U64)
            keep &= np.isin(s.keys, live)
        cols = s._select(keep)
        keys = cols["keys"]
        self.store = ColumnarStore(self.replication)
        if not keys.size:
            return
        mat, count = self.holders_matrix(keys)
        self.store.upsert(
            keys=keys,
            router=cols["router"],
            port=cols["port"],
            epoch=cols["epoch"],
            published=cols["published"],
            ttl=cols["ttl"],
            holders=mat,
            holder_count=np.full(keys.size, count, dtype=_I64),
        )
        if self.ledger is not None:
            self.ledger.add_many("registrations", mat.reshape(-1).tolist())

    def snapshot(self) -> Tuple[tuple, ...]:
        """Canonical state: (key, holder, router, port, epoch, published,
        ttl) rows sorted by (key, holder) — must be bit-identical to the
        oracle's ``LocationDirectory.snapshot`` on any seeded scenario."""
        return tuple(self.store.snapshot_rows())


class StatePairColumns:
    """Registration/state-pair tables as parallel columns.

    Rows are (registrant, key) pairs — "registrant holds a leased
    state-pair for key" — sorted lexicographically, with address triple,
    lease times and the advertised capacity alongside.  Bridges to and
    from the per-node ``StateTable`` object model so parity tests can
    check the columnar lease kernels against the scalar ones.
    """

    COLUMNS = (
        "registrant",
        "key",
        "router",
        "port",
        "epoch",
        "refreshed",
        "ttl",
        "capacity",
    )

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        missing = set(self.COLUMNS) - set(columns)
        if missing:
            raise ValueError(f"missing columns: {sorted(missing)}")
        order = np.lexsort((columns["key"], columns["registrant"]))
        for name in self.COLUMNS:
            setattr(self, name, np.asarray(columns[name])[order])

    def __len__(self) -> int:
        return int(self.registrant.size)

    @classmethod
    def from_tables(cls, tables: Dict[int, "StateTable"]) -> "StatePairColumns":
        """Flatten many nodes' state tables into one column set."""
        cols: Dict[str, List] = {name: [] for name in cls.COLUMNS}
        for owner in sorted(tables):
            for pair in tables[owner]:
                cols["registrant"].append(owner)
                cols["key"].append(pair.key)
                cols["router"].append(pair.addr.router if pair.addr else -1)
                cols["port"].append(pair.addr.port if pair.addr else -1)
                cols["epoch"].append(pair.addr.epoch if pair.addr else -1)
                cols["refreshed"].append(pair.refreshed_at)
                cols["ttl"].append(pair.ttl)
                cols["capacity"].append(pair.capacity)
        return cls(
            {
                "registrant": np.asarray(cols["registrant"], dtype=_U64),
                "key": np.asarray(cols["key"], dtype=_U64),
                "router": np.asarray(cols["router"], dtype=_I64),
                "port": np.asarray(cols["port"], dtype=_I64),
                "epoch": np.asarray(cols["epoch"], dtype=_I64),
                "refreshed": np.asarray(cols["refreshed"], dtype=_F64),
                "ttl": np.asarray(cols["ttl"], dtype=_F64),
                "capacity": np.asarray(cols["capacity"], dtype=_F64),
            }
        )

    def expire(self, now: float) -> "StatePairColumns":
        """Columnar lease sweep: drop every pair with
        ``refreshed + ttl < now`` (exactly ``StatePair.is_fresh``'s
        complement) in one vectorised pass."""
        keep = (self.refreshed + self.ttl) >= now
        return StatePairColumns(
            {name: getattr(self, name)[keep] for name in self.COLUMNS}
        )

    def refresh_keys(self, keys: np.ndarray, now: float) -> int:
        """Bulk lease renewal for every pair referencing ``keys``; returns
        the number of pairs refreshed."""
        hit = np.isin(self.key, keys.astype(_U64, copy=False))
        self.refreshed = np.where(hit, float(now), self.refreshed)
        return int(hit.sum())

    def registry_sizes(self) -> Dict[int, int]:
        """Pairs per referenced key — |R(i)| over the whole population."""
        uniq, counts = np.unique(self.key, return_counts=True)
        return {int(k): int(c) for k, c in zip(uniq, counts)}

    def rows(self) -> List[tuple]:
        """Canonical (registrant, key, router, port, epoch, refreshed,
        ttl, capacity) tuples, ascending — the parity contract."""
        out = []
        for i in range(len(self)):  # repro-lint: disable=BRS009 canonical export walks rows by design
            out.append(
                tuple(
                    (float if name in ("refreshed", "ttl", "capacity") else int)(
                        getattr(self, name)[i]
                    )
                    for name in self.COLUMNS
                )
            )
        return out


# ----------------------------------------------------------------------
# Keyspace-sharded million-node scenario
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ScaleShardParams:
    """One keyspace shard of the churn+traffic scale scenario.

    The full population parameters travel with every shard: each worker
    regenerates the (deterministic) stationary membership and the shared
    lookup stream, then keeps only the mobile keys whose owner position
    falls inside its shard.  Because every per-key event stream is a pure
    function of ``mix64(key, seed)``, the union of any shard partition is
    bit-identical to the serial run.
    """

    num_stationary: int
    num_mobile: int
    lookups: int
    rounds: int
    shard: int
    shards: int
    seed: int
    key_bits: int = 32
    replication: int = 3
    base_ttl: float = 60.0
    round_dt: float = 25.0
    registry_size: int = 20


@dataclasses.dataclass
class ScaleShardResult:
    """Shard outcome: additive stats plus the shard's final store rows."""

    stats: Dict[str, int]
    rows: List[tuple]


def _draw_unique_keys(seed: int, name: str, count: int, bits: int) -> np.ndarray:
    """Sorted unique uint64 keys, deterministic in (seed, name)."""
    gen = np.random.default_rng(derive_seed(seed, name))
    size = 1 << bits
    keys = np.unique(gen.integers(0, size, size=count, dtype=_U64))
    while keys.size < count:
        extra = gen.integers(0, size, size=count - keys.size, dtype=_U64)
        keys = np.unique(np.concatenate([keys, extra]))
    return keys[:count]


def run_scale_shard(p: ScaleShardParams) -> ScaleShardResult:
    """Run one keyspace shard of the scale scenario, fully vectorised.

    Per round: a one-pass TTL expiry sweep, a batched republish of every
    mobile key whose (key-hashed) schedule says it moves, a batched
    withdrawal of leaving keys, the Fig-4 advertisement trees of the
    movers materialised as one columnar forest
    (:func:`repro.core.ldt_forest.build_forest_columns`), and this
    shard's slice of the global lookup stream resolved in one kernel
    call.
    """
    if not 0 <= p.shard < p.shards:
        raise ValueError("shard index out of range")
    from ..overlay.keyspace import KeySpace

    digit_bits = 4 if p.key_bits % 4 == 0 else 1
    space = KeySpace(bits=p.key_bits, digit_bits=digit_bits)
    stationary = _draw_unique_keys(p.seed, "scale|stationary", p.num_stationary, p.key_bits)
    mobile = _draw_unique_keys(p.seed, "scale|mobile", p.num_mobile, p.key_bits)

    # Keyspace sharding: a mobile key belongs to the shard owning its ring
    # position, a pure function of (key, membership) — shard-invariant.
    pos = np.searchsorted(stationary, mobile) % p.num_stationary  # ring wrap
    shard_of = (pos.astype(np.int64) * p.shards) // p.num_stationary
    mine = shard_of == p.shard
    keys = mobile[mine]

    directory = ColumnarDirectory(
        space,
        stationary_keys=stationary,
        replication=p.replication,
    )

    # Per-key event schedules, hashed from the keys themselves.
    h_move = mix64(keys, derive_seed(p.seed, "scale|moves"))
    h_attr = mix64(keys, derive_seed(p.seed, "scale|attrs"))
    move_mask = h_move  # bit r set → the key republishes in round r
    leaves = (h_attr % _U64(8)) == 0  # ~1/8 of keys leave mid-run
    leave_round = ((h_attr >> _U64(8)) % _U64(max(p.rounds, 1))).astype(_I64)
    ttl = p.base_ttl * (1.0 + (h_attr >> _U64(16)) % _U64(3)).astype(_F64) / 2.0

    # The global lookup stream (every shard derives the same one and keeps
    # its own targets, so any partition replays the serial stream).
    lgen = np.random.default_rng(derive_seed(p.seed, "scale|lookups"))
    target_idx = lgen.integers(0, p.num_mobile, size=p.lookups)
    lookup_round = (np.arange(p.lookups, dtype=_I64) * p.rounds) // max(p.lookups, 1)
    target_keys = mobile[target_idx]
    lk_mine = shard_of[target_idx] == p.shard

    stats = {
        "keys": int(keys.size),
        "published": 0,
        "expired": 0,
        "withdrawn": 0,
        "lookups": 0,
        "hits": 0,
        "replica_messages": 0,
        "ldt_trees": 0,
        "ldt_messages": 0,
        "ldt_depth_sum": 0,
        "multicast_deliveries": 0,
    }

    def publish_batch(batch: np.ndarray, now: float, epoch_val: int) -> None:
        if not batch.size:
            return
        hb = mix64(batch, derive_seed(p.seed, "scale|addr"))
        items_router = (hb & _U64(0xFFFF)).astype(_I64)
        items_port = ((hb >> _U64(16)) & _U64(0xFFFF)).astype(_I64)
        mat, count = directory.holders_matrix(batch)
        bt = ttl[np.searchsorted(keys, batch)]
        directory.store.upsert(
            keys=batch,
            router=items_router,
            port=items_port,
            epoch=np.full(batch.size, epoch_val, dtype=_I64),
            published=np.full(batch.size, now, dtype=_F64),
            ttl=bt,
            holders=mat,
            holder_count=np.full(batch.size, count, dtype=_I64),
        )
        directory.publish_count += int(batch.size)
        stats["published"] += int(batch.size)
        stats["replica_messages"] += int(batch.size) * count

    departed = np.zeros(keys.size, dtype=bool)
    publish_batch(keys, 0.0, 0)

    for r in range(p.rounds):
        now = (r + 1) * p.round_dt
        stats["expired"] += len(directory.expire_leases(now))

        leave_now = leaves & (leave_round == r) & ~departed
        if np.any(leave_now):
            stats["withdrawn"] += directory.withdraw_many(keys[leave_now])
            departed |= leave_now

        movers = (
            ((move_mask >> _U64(r % 64)) & _U64(1)).astype(bool) & ~departed
        )
        move_keys = keys[movers]
        publish_batch(move_keys, now, r + 1)
        if move_keys.size:
            # Materialised columnar LDTs (one forest per move batch): the
            # uniform-capacity registries of the scale scenario keep the
            # closed-form ``ldt_fanout`` as a parity oracle — messages are
            # always R and the forest's depths match it bit-identically.
            hc = mix64(move_keys, derive_seed(p.seed, "scale|caps"))
            caps = ((hc % _U64(15)) + _U64(1)).astype(_F64)
            sizes = np.full(move_keys.size, p.registry_size, dtype=_I64)
            offsets = np.zeros(move_keys.size + 1, dtype=_I64)
            np.cumsum(sizes, out=offsets[1:])
            member_avail = np.repeat(caps, sizes)
            unit = np.ones(move_keys.size, dtype=_F64)
            level, assigned, parent_row = build_forest_columns(
                offsets, member_avail, caps, unit
            )
            stats["ldt_trees"] += int(move_keys.size)
            stats["ldt_messages"] += int(sizes.sum())
            stats["ldt_depth_sum"] += int(forest_depths(offsets, level).sum())
            # Every member receives the advertisement exactly once.
            stats["multicast_deliveries"] += int(level.size)
            if _sanitize.ACTIVE:
                _sanitize.check_ldt_forest(
                    forest_from_columns(
                        offsets, member_avail, caps, unit,
                        level, assigned, parent_row,
                    )
                )

        in_round = lookup_round == r
        q = target_keys[lk_mine & in_round]
        if q.size:
            hit, _, _, _ = directory.resolve_array(q, now + p.round_dt / 2.0)
            stats["lookups"] += int(q.size)
            stats["hits"] += int(hit.sum())

    return ScaleShardResult(stats=stats, rows=directory.store.snapshot_rows())


@dataclasses.dataclass(frozen=True)
class TrafficMixParams:
    """One keyspace shard of the Zipf-skewed traffic-mix scenario.

    The heavy-traffic companion of :class:`ScaleShardParams`: key
    popularity follows a Zipf law (rank hashed from the key population,
    exponent ``zipf_s``), the *lookup* stream draws targets by popularity
    weight, and *advertisement* load skews the same way — a key's
    registry size shrinks with its popularity rank between
    ``max_registry`` (rank 0) and ``min_registry`` (the tail), and every
    mover's LDT is materialised through the columnar forest builder with
    per-member hashed capacities.  All randomness is a pure function of
    ``(key, seed)`` or a globally-replayed stream, so any shard partition
    merges bit-identically to the serial run.
    """

    num_stationary: int
    num_mobile: int
    lookups: int
    rounds: int
    shard: int
    shards: int
    seed: int
    key_bits: int = 32
    replication: int = 3
    base_ttl: float = 60.0
    round_dt: float = 25.0
    zipf_s: float = 1.1
    min_registry: int = 4
    max_registry: int = 64


def run_traffic_shard(p: TrafficMixParams) -> ScaleShardResult:
    """Run one keyspace shard of the Zipf traffic mix, fully vectorised.

    Per round: TTL expiry, batched republish of the movers, one columnar
    forest build over the movers' skew-sized registries (the multicast
    wave — every member row is one delivery), and this shard's slice of
    the popularity-weighted lookup stream.
    """
    if not 0 <= p.shard < p.shards:
        raise ValueError("shard index out of range")
    from ..overlay.keyspace import KeySpace

    digit_bits = 4 if p.key_bits % 4 == 0 else 1
    space = KeySpace(bits=p.key_bits, digit_bits=digit_bits)
    stationary = _draw_unique_keys(
        p.seed, "traffic|stationary", p.num_stationary, p.key_bits
    )
    mobile = _draw_unique_keys(p.seed, "traffic|mobile", p.num_mobile, p.key_bits)

    pos = np.searchsorted(stationary, mobile) % p.num_stationary
    shard_of = (pos.astype(_I64) * p.shards) // p.num_stationary
    mine = shard_of == p.shard
    keys = mobile[mine]

    # Popularity: rank 0 is the hottest key.  The rank permutation is
    # hashed from the key population itself, so it is shard-invariant.
    rank = np.empty(p.num_mobile, dtype=_I64)
    rank[np.argsort(mix64(mobile, derive_seed(p.seed, "traffic|rank")), kind="stable")] = (
        np.arange(p.num_mobile, dtype=_I64)
    )
    # Advertisement skew: popular keys accumulate more interested nodes.
    registry_sizes = np.maximum(
        np.int64(p.min_registry),
        (p.max_registry / np.sqrt(rank + 1.0)).astype(_I64),
    )
    reg_sizes = registry_sizes[mine]

    directory = ColumnarDirectory(
        space, stationary_keys=stationary, replication=p.replication
    )

    h_move = mix64(keys, derive_seed(p.seed, "traffic|moves"))
    h_attr = mix64(keys, derive_seed(p.seed, "traffic|attrs"))
    ttl = p.base_ttl * (1.0 + (h_attr >> _U64(16)) % _U64(3)).astype(_F64) / 2.0

    # Lookup skew: the global stream draws targets Zipf(s) by rank.
    weights = (rank.astype(_F64) + 1.0) ** (-p.zipf_s)
    weights /= weights.sum()
    lgen = np.random.default_rng(derive_seed(p.seed, "traffic|lookups"))
    target_idx = lgen.choice(p.num_mobile, size=p.lookups, p=weights)
    lookup_round = (np.arange(p.lookups, dtype=_I64) * p.rounds) // max(p.lookups, 1)
    target_keys = mobile[target_idx]
    lk_mine = shard_of[target_idx] == p.shard

    stats = {
        "keys": int(keys.size),
        "published": 0,
        "expired": 0,
        "lookups": 0,
        "hits": 0,
        "hot_lookups": 0,
        "replica_messages": 0,
        "ldt_trees": 0,
        "ldt_messages": 0,
        "ldt_depth_sum": 0,
        "multicast_deliveries": 0,
    }
    # Hot-set accounting: lookups landing on the top 1% of ranks.
    hot_cut = max(p.num_mobile // 100, 1)

    def publish_batch(batch: np.ndarray, now: float, epoch_val: int) -> None:
        if not batch.size:
            return
        hb = mix64(batch, derive_seed(p.seed, "traffic|addr"))
        mat, count = directory.holders_matrix(batch)
        directory.store.upsert(
            keys=batch,
            router=(hb & _U64(0xFFFF)).astype(_I64),
            port=((hb >> _U64(16)) & _U64(0xFFFF)).astype(_I64),
            epoch=np.full(batch.size, epoch_val, dtype=_I64),
            published=np.full(batch.size, now, dtype=_F64),
            ttl=ttl[np.searchsorted(keys, batch)],
            holders=mat,
            holder_count=np.full(batch.size, count, dtype=_I64),
        )
        directory.publish_count += int(batch.size)
        stats["published"] += int(batch.size)
        stats["replica_messages"] += int(batch.size) * count

    def advertise_batch(batch: np.ndarray) -> None:
        """Materialise the movers' LDTs as one columnar forest."""
        if not batch.size:
            return
        sz = reg_sizes[np.searchsorted(keys, batch)]
        offsets = np.zeros(batch.size + 1, dtype=_I64)
        np.cumsum(sz, out=offsets[1:])
        total = int(offsets[-1])
        base = mix64(batch, derive_seed(p.seed, "traffic|members"))
        with np.errstate(over="ignore"):
            member_slot = (
                np.repeat(base, sz)
                + np.arange(total, dtype=_U64)
                - np.repeat(offsets[:-1].astype(_U64), sz)
            )
        hm = mix64(member_slot, derive_seed(p.seed, "traffic|mcaps"))
        member_avail = ((hm % _U64(15)) + _U64(1)).astype(_F64)
        hr = mix64(batch, derive_seed(p.seed, "traffic|caps"))
        root_avail = ((hr % _U64(15)) + _U64(1)).astype(_F64)
        unit = np.ones(batch.size, dtype=_F64)
        level, assigned, parent_row = build_forest_columns(
            offsets, member_avail, root_avail, unit
        )
        stats["ldt_trees"] += int(batch.size)
        stats["ldt_messages"] += total
        stats["ldt_depth_sum"] += int(forest_depths(offsets, level).sum())
        stats["multicast_deliveries"] += total
        if _sanitize.ACTIVE:
            _sanitize.check_ldt_forest(
                forest_from_columns(
                    offsets, member_avail, root_avail, unit,
                    level, assigned, parent_row,
                )
            )

    publish_batch(keys, 0.0, 0)
    advertise_batch(keys)

    for r in range(p.rounds):
        now = (r + 1) * p.round_dt
        stats["expired"] += len(directory.expire_leases(now))

        movers = ((h_move >> _U64(r % 64)) & _U64(1)).astype(bool)
        move_keys = keys[movers]
        publish_batch(move_keys, now, r + 1)
        advertise_batch(move_keys)

        in_round = lookup_round == r
        q_idx = target_idx[lk_mine & in_round]
        if q_idx.size:
            q = mobile[q_idx]
            hit, _, _, _ = directory.resolve_array(q, now + p.round_dt / 2.0)
            stats["lookups"] += int(q_idx.size)
            stats["hits"] += int(hit.sum())
            stats["hot_lookups"] += int((rank[q_idx] < hot_cut).sum())

    return ScaleShardResult(stats=stats, rows=directory.store.snapshot_rows())


def merge_shard_results(
    results: Sequence[ScaleShardResult],
) -> Tuple[Dict[str, int], List[tuple], str]:
    """Combine shard outcomes: summed stats, the merged (sorted) snapshot
    and its checksum.  Keys never cross shards, so concatenation plus one
    sort reproduces the serial run's snapshot exactly."""
    stats: Dict[str, int] = {}
    rows: List[tuple] = []
    for res in results:
        for k, v in res.stats.items():
            stats[k] = stats.get(k, 0) + v
        rows.extend(res.rows)
    rows.sort()
    return stats, rows, snapshot_checksum(rows)

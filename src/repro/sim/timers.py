"""Lease and timer helpers built on the simulation engine.

Bristle's state management is lease-based (§2.3.2): every state-pair cached
in the mobile layer carries a time-to-live, and both ends of a registration
periodically refresh it ("early binding").  :class:`Lease` captures that
contract; :class:`TimerWheel` groups per-node periodic tasks so a node that
leaves the system can cancel all of its timers at once.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from .engine import Engine
from .events import Event, EventKind

__all__ = ["Lease", "TimerWheel"]


@dataclasses.dataclass
class Lease:
    """A time-bounded contract, renewable by refresh.

    Attributes
    ----------
    duration:
        Validity period granted by each refresh.
    granted_at:
        Virtual time of the most recent refresh.
    """

    duration: float
    granted_at: float = 0.0

    @property
    def expires_at(self) -> float:
        """Virtual time at which the lease lapses."""
        return self.granted_at + self.duration

    def valid_at(self, now: float) -> bool:
        """True if the lease is still in force at time ``now``."""
        return now <= self.expires_at

    def refresh(self, now: float, duration: Optional[float] = None) -> None:
        """Renew the lease starting at ``now``; optionally change duration."""
        self.granted_at = now
        if duration is not None:
            self.duration = duration

    def remaining(self, now: float) -> float:
        """Time left before expiry (negative once lapsed)."""
        return self.expires_at - now


class TimerWheel:
    """Per-owner bundle of engine timers with bulk cancellation.

    A node registers its periodic refresh tasks and one-shot timeouts here;
    when the node leaves (or a test tears the node down) a single
    :meth:`cancel_all` silences everything it scheduled.
    """

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._cancels: List[Callable[[], None]] = []
        self._oneshots: List[Event] = []

    def every(self, period: float, callback: Callable[[], None], *, label: str = "") -> Callable[[], None]:
        """Register a periodic task; returns its individual cancel function."""
        cancel = self._engine.schedule_every(period, callback, label=label)
        self._cancels.append(cancel)
        return cancel

    def after(self, delay: float, callback: Callable[[], None], *, label: str = "") -> Event:
        """Register a one-shot timer firing ``delay`` from now."""
        ev = self._engine.schedule_in(delay, callback, kind=EventKind.TIMER, label=label)
        self._oneshots.append(ev)
        return ev

    def cancel_all(self) -> None:
        """Cancel every timer registered through this wheel."""
        for cancel in self._cancels:
            cancel()
        self._cancels.clear()
        for ev in self._oneshots:
            ev.cancel()
        self._oneshots.clear()

    @property
    def active_periodic(self) -> int:
        """Number of periodic tasks registered (including already-cancelled)."""
        return len(self._cancels)

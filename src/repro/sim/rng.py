"""Deterministic random-number streams for reproducible simulations.

Every source of randomness in the library flows through :class:`RngStreams`.
A single master seed derives an independent, *named* child stream per
subsystem ("topology", "keys", "capacities", "mobility", ...), so adding a
new consumer of randomness never perturbs the draws seen by existing ones —
a property the regression tests rely on.

The streams are :class:`numpy.random.Generator` instances (PCG64), which
supports both fast vectorised draws (used in the hot key-generation and
placement paths, per the hpc-parallel guidance to vectorise) and scalar
convenience helpers.
"""

from __future__ import annotations

import dataclasses

from typing import Dict, Iterable, List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = ["RngStreams", "derive_seed", "StreamSpec", "STREAMS"]

# A fixed 64-bit mixing constant (splitmix64 increment) used to fold stream
# names into the master seed.  Any odd constant works; this one is standard.
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a stream ``name``.

    The derivation hashes the name with a splitmix64-style mix so that
    distinct names yield statistically independent seeds, and the same
    (seed, name) pair always yields the same child seed on every platform
    (``hash()`` is deliberately avoided: it is salted per-process).
    """
    h = master_seed & 0xFFFFFFFFFFFFFFFF
    for ch in name.encode("utf-8"):
        h = (h ^ ch) * _GOLDEN_GAMMA & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 29
    # Final avalanche (splitmix64 finaliser).
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    h = (h ^ (h >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return (h ^ (h >> 31)) & 0xFFFFFFFFFFFFFFFF


class RngStreams:
    """A registry of named, independently-seeded random generators.

    Parameters
    ----------
    master_seed:
        Seed from which all named streams are derived.  Two ``RngStreams``
        built with the same master seed produce identical draw sequences
        stream-by-stream.

    Examples
    --------
    >>> rng = RngStreams(42)
    >>> keys = rng.stream("keys")
    >>> int(keys.integers(0, 100))  # doctest: +SKIP
    17
    >>> rng2 = RngStreams(42)
    >>> int(rng2.stream("keys").integers(0, 100)) == int(
    ...     RngStreams(42).stream("keys").integers(0, 100))
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object
        (its internal state advances across calls), which is what simulation
        code wants: one logical stream per subsystem.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(derive_seed(self.master_seed, name)))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *fresh* generator for ``name`` with pristine state.

        Unlike :meth:`stream`, this does not share state with previous
        callers — useful for tests that want to replay a stream from the
        start.
        """
        return np.random.Generator(np.random.PCG64(derive_seed(self.master_seed, name)))

    # ------------------------------------------------------------------
    # Convenience scalar/sequence helpers (thin wrappers, but they keep
    # call sites short and make the stream name explicit).
    # ------------------------------------------------------------------
    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)`` from stream ``name``."""
        return int(self.stream(name).integers(low, high))

    def random(self, name: str) -> float:
        """Uniform float in ``[0, 1)`` from stream ``name``."""
        return float(self.stream(name).random())

    def choice(self, name: str, seq: Sequence[T]) -> T:
        """Uniformly choose one element of ``seq``."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self.stream(name).integers(0, len(seq)))]

    def sample(self, name: str, seq: Sequence[T], k: int) -> List[T]:
        """Choose ``k`` distinct elements of ``seq`` (order randomised)."""
        if k > len(seq):
            raise ValueError(f"sample size {k} exceeds population size {len(seq)}")
        idx = self.stream(name).choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in idx]

    def shuffled(self, name: str, seq: Iterable[T]) -> List[T]:
        """Return a new list with the elements of ``seq`` shuffled."""
        items = list(seq)
        self.stream(name).shuffle(items)  # type: ignore[arg-type]
        return items

    def spawn(self, name: str) -> "RngStreams":
        """Create an independent child ``RngStreams`` namespace.

        Used when an experiment runs several trials: each trial gets its own
        namespace so trials are independent yet individually reproducible.
        """
        return RngStreams(derive_seed(self.master_seed, "spawn:" + name))


@dataclasses.dataclass(frozen=True)
class StreamSpec:
    """Provenance record for one named RNG stream (or ``prefix.*`` family).

    The whole-program linter (BRS010, :mod:`repro.lint.wholeprogram`)
    checks every stream-name literal in the tree against :data:`STREAMS`:
    an unregistered name is a provenance hole, and a draw from a
    subsystem outside ``{owner} | shared`` is a collision — two unrelated
    subsystems advancing one seeded stream silently correlate their
    draws.  Streams genuinely shared by design list the extra subsystems
    in ``shared`` with a mandatory ``reason``.
    """

    owner: str  #: owning subsystem ("repro.net", "repro.core", ...)
    purpose: str = ""  #: what the stream randomises
    shared: Tuple[str, ...] = ()  #: additional subsystems allowed to draw
    reason: str = ""  #: why sharing is by design (mandatory when shared)


#: Central registry of every named RNG stream in the project, keyed by
#: literal name or ``prefix.*`` wildcard (dynamic tails such as
#: ``f"churn.{rate}"``).  Entries are data only — registration does not
#: touch seed derivation, so adding one can never perturb existing draws.
STREAMS: Dict[str, StreamSpec] = {
    # -- network substrate (repro.net) ---------------------------------
    "topology": StreamSpec(
        owner="repro.net",
        purpose="transit-stub underlay construction (domain sizes, edges, latencies)",
    ),
    "placement": StreamSpec(
        owner="repro.net",
        purpose="initial attachment router for every host",
    ),
    "mobility": StreamSpec(
        owner="repro.net",
        purpose="re-attachment router draws when hosts move",
    ),
    # -- core protocol (repro.core) ------------------------------------
    "naming": StreamSpec(
        owner="repro.core",
        purpose="uniform key assignment for the baseline naming scheme",
    ),
    "naming.stationary": StreamSpec(
        owner="repro.core",
        purpose="stationary-band keys for the clustered naming scheme (§3)",
    ),
    "naming.mobile": StreamSpec(
        owner="repro.core",
        purpose="mobile-region keys for the clustered naming scheme (§3)",
    ),
    "registrations": StreamSpec(
        owner="repro.core",
        purpose="which stationary keys each mobile host registers under",
    ),
    "mobility.timing": StreamSpec(
        owner="repro.core",
        purpose="exponential inter-move delays for the mobility process",
    ),
    "join.bootstrap": StreamSpec(
        owner="repro.core",
        purpose="bootstrap-member choice for mobile joins",
    ),
    "routing.stale": StreamSpec(
        owner="repro.core",
        purpose="fractional stale-binding coin flips in route_preferring_resolved",
    ),
    # -- workload generators (repro.workloads) -------------------------
    "type_a": StreamSpec(
        owner="repro.workloads",
        purpose="independent RngStreams namespace for the Type-A baseline scenario",
    ),
    "type_b": StreamSpec(
        owner="repro.workloads",
        purpose="independent RngStreams namespace for the Type-B baseline scenario",
    ),
    "churn": StreamSpec(
        owner="repro.workloads",
        purpose="Poisson churn schedules (move/leave/join interarrivals)",
    ),
    "routes": StreamSpec(
        owner="repro.workloads",
        purpose="stationary (source, destination) route workload pairs",
        shared=("repro.experiments",),
        reason="drivers that synthesise their own route endpoints draw the "
        "same logical route-workload stream the sample helpers use, so "
        "route workloads stay comparable across experiments",
    ),
    "lookups": StreamSpec(
        owner="repro.workloads",
        purpose="(member, data key) lookup workload pairs",
    ),
    "capacities": StreamSpec(
        owner="repro.workloads",
        purpose="per-node capacity draws (uniform and Pareto variants)",
        shared=("repro.core",),
        reason="BristleNetwork draws default node capacities itself with the "
        "same logical workload stream so that explicit capacity workloads "
        "and the built-in default are interchangeable seed-for-seed",
    ),
    # -- baselines (repro.baselines) -----------------------------------
    "type_a.keys": StreamSpec(
        owner="repro.baselines",
        purpose="random key draws inside the Type-A home-agent baseline",
    ),
    # -- experiment drivers (repro.experiments) ------------------------
    "keys": StreamSpec(
        owner="repro.experiments",
        purpose="uniform node-key populations drawn by sweep drivers",
    ),
    "data": StreamSpec(
        owner="repro.experiments",
        purpose="data-item keys for the data-access workload",
    ),
    "table1.lookups": StreamSpec(
        owner="repro.experiments",
        purpose="lookup endpoints for the Table-1 comparison",
    ),
    "table1.failures": StreamSpec(
        owner="repro.experiments",
        purpose="failed-holder draws for the Table-1 comparison",
    ),
    "churn.*": StreamSpec(
        owner="repro.experiments",
        purpose="per-move-rate child namespaces of the churn comparison",
    ),
    "churn.lookups": StreamSpec(
        owner="repro.experiments",
        purpose="lookup endpoints interleaved with churn events",
    ),
    "membership.schedule": StreamSpec(
        owner="repro.experiments",
        purpose="join/leave ordering for the membership-churn experiment",
    ),
    "membership.initial": StreamSpec(
        owner="repro.experiments",
        purpose="initial member keys for the membership-churn experiment",
    ),
    "membership.joiners": StreamSpec(
        owner="repro.experiments",
        purpose="joiner keys for the membership-churn experiment",
    ),
    "hotspot.lookups": StreamSpec(
        owner="repro.experiments",
        purpose="Zipf-skewed lookup draws for the hotspot experiment",
    ),
    "binding.lookups": StreamSpec(
        owner="repro.experiments",
        purpose="lookup endpoints for the early-binding experiment",
    ),
    "batch.shared": StreamSpec(
        owner="repro.experiments",
        purpose="shared-audience sampling for the batch-update experiment",
    ),
    "fig9.trees": StreamSpec(
        owner="repro.experiments",
        purpose="which mobile nodes' dissemination trees Fig-9 samples",
    ),
    "reliability.failures": StreamSpec(
        owner="repro.experiments",
        purpose="failed-holder draws for the reliability experiment",
    ),
    "failed.*": StreamSpec(
        owner="repro.experiments",
        purpose="per-fraction failed-node draws for the reliability sweep",
    ),
    "routes.*": StreamSpec(
        owner="repro.experiments",
        purpose="per-fraction route draws for the reliability sweep",
    ),
    "overlay_choice": StreamSpec(
        owner="repro.experiments",
        purpose="route endpoints for the overlay-choice comparison",
    ),
    "ipv6.lookups": StreamSpec(
        owner="repro.experiments",
        purpose="lookup endpoints for the IPv6-style Type-B comparison",
    ),
    "stale.*": StreamSpec(
        owner="repro.experiments",
        purpose="per-p_stale coin-flip streams for the staleness sweep "
        "(one stream per point, so points stay order-independent)",
    ),
    "fig8": StreamSpec(
        owner="repro.experiments",
        purpose="default capacity draws for a single random LDT build",
    ),
    "fig8a.*": StreamSpec(
        owner="repro.experiments",
        purpose="per-registry-size capacity draws for Fig-8a",
    ),
    "fig8b.*": StreamSpec(
        owner="repro.experiments",
        purpose="per-max-capacity capacity draws for Fig-8b",
    ),
    "fig8w.*": StreamSpec(
        owner="repro.experiments",
        purpose="per-workload-fraction capacity draws for the Fig-8 "
        "used-capacity extension",
    ),
}

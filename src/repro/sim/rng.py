"""Deterministic random-number streams for reproducible simulations.

Every source of randomness in the library flows through :class:`RngStreams`.
A single master seed derives an independent, *named* child stream per
subsystem ("topology", "keys", "capacities", "mobility", ...), so adding a
new consumer of randomness never perturbs the draws seen by existing ones —
a property the regression tests rely on.

The streams are :class:`numpy.random.Generator` instances (PCG64), which
supports both fast vectorised draws (used in the hot key-generation and
placement paths, per the hpc-parallel guidance to vectorise) and scalar
convenience helpers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = ["RngStreams", "derive_seed"]

# A fixed 64-bit mixing constant (splitmix64 increment) used to fold stream
# names into the master seed.  Any odd constant works; this one is standard.
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a stream ``name``.

    The derivation hashes the name with a splitmix64-style mix so that
    distinct names yield statistically independent seeds, and the same
    (seed, name) pair always yields the same child seed on every platform
    (``hash()`` is deliberately avoided: it is salted per-process).
    """
    h = master_seed & 0xFFFFFFFFFFFFFFFF
    for ch in name.encode("utf-8"):
        h = (h ^ ch) * _GOLDEN_GAMMA & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 29
    # Final avalanche (splitmix64 finaliser).
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    h = (h ^ (h >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return (h ^ (h >> 31)) & 0xFFFFFFFFFFFFFFFF


class RngStreams:
    """A registry of named, independently-seeded random generators.

    Parameters
    ----------
    master_seed:
        Seed from which all named streams are derived.  Two ``RngStreams``
        built with the same master seed produce identical draw sequences
        stream-by-stream.

    Examples
    --------
    >>> rng = RngStreams(42)
    >>> keys = rng.stream("keys")
    >>> int(keys.integers(0, 100))  # doctest: +SKIP
    17
    >>> rng2 = RngStreams(42)
    >>> int(rng2.stream("keys").integers(0, 100)) == int(
    ...     RngStreams(42).stream("keys").integers(0, 100))
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object
        (its internal state advances across calls), which is what simulation
        code wants: one logical stream per subsystem.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(derive_seed(self.master_seed, name)))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *fresh* generator for ``name`` with pristine state.

        Unlike :meth:`stream`, this does not share state with previous
        callers — useful for tests that want to replay a stream from the
        start.
        """
        return np.random.Generator(np.random.PCG64(derive_seed(self.master_seed, name)))

    # ------------------------------------------------------------------
    # Convenience scalar/sequence helpers (thin wrappers, but they keep
    # call sites short and make the stream name explicit).
    # ------------------------------------------------------------------
    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)`` from stream ``name``."""
        return int(self.stream(name).integers(low, high))

    def random(self, name: str) -> float:
        """Uniform float in ``[0, 1)`` from stream ``name``."""
        return float(self.stream(name).random())

    def choice(self, name: str, seq: Sequence[T]) -> T:
        """Uniformly choose one element of ``seq``."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self.stream(name).integers(0, len(seq)))]

    def sample(self, name: str, seq: Sequence[T], k: int) -> List[T]:
        """Choose ``k`` distinct elements of ``seq`` (order randomised)."""
        if k > len(seq):
            raise ValueError(f"sample size {k} exceeds population size {len(seq)}")
        idx = self.stream(name).choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in idx]

    def shuffled(self, name: str, seq: Iterable[T]) -> List[T]:
        """Return a new list with the elements of ``seq`` shuffled."""
        items = list(seq)
        self.stream(name).shuffle(items)  # type: ignore[arg-type]
        return items

    def spawn(self, name: str) -> "RngStreams":
        """Create an independent child ``RngStreams`` namespace.

        Used when an experiment runs several trials: each trial gets its own
        namespace so trials are independent yet individually reproducible.
        """
        return RngStreams(derive_seed(self.master_seed, "spawn:" + name))

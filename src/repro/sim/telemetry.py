"""Run-wide telemetry: tracer + metrics + profiler, with an ambient session.

A :class:`Telemetry` bundles the three observability primitives one run
needs — a :class:`~repro.sim.trace.Tracer` (spans/events, optionally
streamed to JSONL), a :class:`~repro.sim.metrics.MetricsRegistry`
(per-operation counters and histograms) and a
:class:`~repro.sim.profile.PhaseProfiler` (wall-clock phase accounting).

The CLI opens a :func:`telemetry_session` around ``repro run``;
:class:`~repro.core.bristle.BristleNetwork` and the experiment drivers
pick the active session up via :func:`active_telemetry`, so **every**
driver gets tracing, metrics and a run manifest for free — no experiment
signature had to grow a telemetry parameter.  Outside a session each
network falls back to a private, tracing-disabled :class:`Telemetry`, so
instrumentation call sites never need a ``None`` check and tests can read
``net.telemetry.metrics`` directly.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Mapping, Optional

from .metrics import MetricsRegistry
from .nodestats import NodeLoadLedger
from .profile import PhaseProfiler
from .trace import Tracer

__all__ = ["Telemetry", "active_telemetry", "telemetry_session"]

#: Cap on per-network build records kept in a session (memory bound for
#: sweeps that construct hundreds of networks).
MAX_NETWORK_NOTES = 256


class Telemetry:
    """One run's observability bundle.

    Parameters
    ----------
    tracer:
        Span/event tracer; defaults to a disabled one (the near-free path).
    metrics:
        Counter/histogram registry; defaults to a fresh one.
    profiler:
        Wall-clock phase profiler; defaults to an enabled one (appends are
        only paid inside explicit ``phase`` blocks).
    show_phase_footers:
        When ``True`` (the CLI's ``--profile``), drivers append their
        phase wall-times as table footers.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
        show_phase_footers: bool = False,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        #: Per-node load accounting (messages routed/terminated,
        #: registrations held, LDT fan-out, detours served) — always on;
        #: recording is pure integer counting so it cannot perturb results.
        self.nodeload = NodeLoadLedger()
        self.show_phase_footers = show_phase_footers
        #: Summaries of every network built under this telemetry (seed,
        #: populations, config) — the manifest's provenance section.
        self.networks: List[Dict[str, Any]] = []
        self._network_count = 0

    @property
    def tracing(self) -> bool:
        """True when the tracer records (the detailed-accounting gate)."""
        return self.tracer.enabled

    def note_network(self, info: Mapping[str, Any]) -> None:
        """Record one network build (kept up to :data:`MAX_NETWORK_NOTES`)."""
        self._network_count += 1
        if len(self.networks) < MAX_NETWORK_NOTES:
            self.networks.append(dict(info))

    @property
    def network_count(self) -> int:
        """Total networks built, including ones past the note cap."""
        return self._network_count

    # ------------------------------------------------------------------
    # Cross-process merge (sweep workers → parent session)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Picklable snapshot of everything a sweep worker accumulated.

        Spans are deliberately absent: traces are per-process streams (a
        worker's tracer is disabled — see ``repro.experiments.parallel``),
        while metrics, phase wall-times and network provenance merge
        losslessly into the parent session.
        """
        return {
            "metrics": self.metrics.export_state(),
            "profiler": self.profiler.export_state(),
            "nodeload": self.nodeload.export_state(),
            "networks": [dict(n) for n in self.networks],
            "network_count": self._network_count,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold a worker's :meth:`export_state` into this bundle.

        Counters are summed, histogram samples extended, phase wall-times
        attributed additively and network notes appended (up to
        :data:`MAX_NETWORK_NOTES`), so ``--profile`` and the run manifest
        look the same whether the points ran here or in a pool.
        """
        self.metrics.merge_state(state.get("metrics", {}))
        self.profiler.merge_state(state.get("profiler", {}))
        self.nodeload.merge_state(state.get("nodeload", {}))
        for info in state.get("networks", []):
            if len(self.networks) < MAX_NETWORK_NOTES:
                self.networks.append(dict(info))
        self._network_count += int(state.get("network_count", 0))


_ACTIVE: List[Telemetry] = []


def active_telemetry() -> Optional[Telemetry]:
    """The innermost open telemetry session, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextlib.contextmanager
def telemetry_session(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Make ``telemetry`` (or a fresh default) the ambient session.

    Sessions nest; the innermost wins.  Everything built inside the
    ``with`` block — networks, drivers, protocol runs — records into the
    session's tracer/metrics/profiler.
    """
    tel = telemetry if telemetry is not None else Telemetry()
    _ACTIVE.append(tel)
    try:
        yield tel
    finally:
        _ACTIVE.pop()

"""A deterministic discrete-event simulation engine.

The engine is a classic calendar-queue loop: a binary heap of
:class:`~repro.sim.events.Event` objects ordered by
``(time, priority, sequence)``.  It is deliberately minimal — nodes and
protocols schedule callbacks; the engine only advances virtual time and
dispatches.  Determinism comes from the explicit sequence-number tie-break
and from all randomness living in :class:`~repro.sim.rng.RngStreams`.

Typical use::

    from repro.sim import Engine

    eng = Engine()
    eng.schedule(1.5, lambda: print("fires at t=1.5"))
    eng.run()

The engine also exposes *processes* in a lightweight form: a periodic task
is just a callback that reschedules itself via :meth:`Engine.schedule_every`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from .events import Event, EventKind, Priority, kind_default_priority

__all__ = ["Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Engine:
    """Discrete-event scheduler with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial virtual time (default ``0.0``).
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after
        dispatching this many events, catching accidental infinite
        self-rescheduling loops.  ``None`` disables the check.
    """

    def __init__(self, start_time: float = 0.0, max_events: Optional[int] = None) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[Tuple[float, int, int], Event]] = []
        self._seq = 0
        self._dispatched = 0
        self._running = False
        self._stopped = False
        self.max_events = max_events

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def dispatched(self) -> int:
        """Number of events dispatched so far."""
        return self._dispatched

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        kind: EventKind = EventKind.GENERIC,
        priority: Optional[Priority] = None,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire at absolute virtual ``time``.

        Returns the :class:`Event`, whose :meth:`~Event.cancel` method
        removes it (lazily) from the queue.  Scheduling strictly in the past
        raises :class:`SimulationError`; scheduling *at* the current time is
        allowed and fires after currently-dispatching same-time events.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        if priority is None:
            priority = kind_default_priority(kind)
        ev = Event(time=float(time), callback=callback, kind=kind, priority=priority, label=label)
        ev.seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (ev.sort_key(), ev))
        return ev

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        kind: EventKind = EventKind.GENERIC,
        priority: Optional[Priority] = None,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, kind=kind, priority=priority, label=label)

    def schedule_every(
        self,
        period: float,
        callback: Callable[[], Any],
        *,
        first_in: Optional[float] = None,
        kind: EventKind = EventKind.TIMER,
        label: str = "",
    ) -> Callable[[], None]:
        """Schedule ``callback`` periodically every ``period`` units.

        Returns a zero-argument *cancel function*; calling it stops future
        firings.  The first firing happens after ``first_in`` (defaults to
        ``period``).
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        state = {"cancelled": False, "event": None}

        def fire() -> None:
            if state["cancelled"]:
                return
            callback()
            if not state["cancelled"]:
                state["event"] = self.schedule_in(period, fire, kind=kind, label=label)

        state["event"] = self.schedule_in(
            period if first_in is None else first_in, fire, kind=kind, label=label
        )

        def cancel() -> None:
            state["cancelled"] = True
            ev = state["event"]
            if ev is not None:
                ev.cancel()

        return cancel

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next non-cancelled event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        while self._heap:
            _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._dispatched += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time exceeds ``until``.

        Returns the final virtual time.  When ``until`` is given, events
        with ``time > until`` remain queued and the clock is advanced to
        ``until`` exactly (so successive bounded runs compose).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                key, ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = ev.time
                self._dispatched += 1
                if self.max_events is not None and self._dispatched > self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "likely a runaway self-rescheduling loop"
                    )
                ev.callback()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._heap.clear()

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every reproducible experiment with its description.
``run <name> [...]``
    Run one or more experiments and print their tables
    (``--scale quick|default|paper``, ``--out FILE`` to also save).
``all``
    Run the full evaluation report.
``demo``
    The quickstart scenario (build / move / route / discover).

Telemetry flags (``run`` and ``all`` — see docs/observability.md):
``--trace FILE`` streams every span/event as JSONL, ``--metrics FILE``
writes the machine-readable run manifest (seed, config, phase wall-times,
per-operation counters, cache stats), and ``--profile`` appends phase
wall-clock footers to the printed tables.

Sweep flags (``run`` and ``all`` — see docs/performance.md):
``--jobs N`` fans experiment points out over N worker processes (results
and tables are bit-identical to ``--jobs 1``), and
``--no-underlay-reuse`` rebuilds the underlay per point instead of
sharing one prebuilt bundle across the sweep.

Sanitizer (``run`` and ``all`` — see docs/static-analysis.md):
``--sanitize`` (or ``REPRO_SANITIZE=1``) enables runtime invariant
checks — overlay consistency after churn, LDT structure after builds,
lease monotonicity, manifest round-trips — and prints a
``[sanitize] N invariant checks, V violations`` summary.  The checks are
read-only, so sanitized output is bit-identical to an unsanitized run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.report import (
    EXPERIMENTS,
    render_report,
    resolve_experiment_name,
    run_all,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Bristle: A Mobile Structured "
        "Peer-to-Peer Architecture' (IPDPS 2003)",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list reproducible experiments")

    run_p = sub.add_parser("run", help="run named experiments")
    run_p.add_argument("names", nargs="+", help="experiment names (see 'list')")
    run_p.add_argument(
        "--scale",
        choices=("quick", "default", "paper"),
        default="default",
        help="sweep size (paper = the paper's full populations; slow)",
    )
    run_p.add_argument("--out", default=None, help="also write the report to FILE")
    run_p.add_argument(
        "--precision", type=int, default=3, help="decimal places in tables"
    )
    run_p.add_argument(
        "--chart",
        action="store_true",
        help="also draw ASCII charts for experiments with known series",
    )
    _add_telemetry_flags(run_p)
    _add_sweep_flags(run_p)

    all_p = sub.add_parser("all", help="run the full evaluation")
    all_p.add_argument("--scale", choices=("quick", "default", "paper"), default="quick")
    all_p.add_argument("--out", default=None)
    all_p.add_argument("--precision", type=int, default=3)
    all_p.add_argument("--chart", action="store_true")
    _add_telemetry_flags(all_p)
    _add_sweep_flags(all_p)

    audit_p = sub.add_parser("audit", help="verify every paper claim (PASS/FAIL)")
    audit_p.add_argument("--scale", choices=("quick", "default", "paper"), default="quick")

    sub.add_parser("demo", help="run the quickstart scenario")
    return parser


def _add_telemetry_flags(sub_parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags to a subcommand parser."""
    sub_parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="stream protocol spans/events to FILE as JSONL",
    )
    sub_parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the machine-readable run manifest (JSON) to FILE",
    )
    sub_parser.add_argument(
        "--profile",
        action="store_true",
        help="append phase wall-clock footers to the printed tables",
    )
    sub_parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable runtime invariant checks (same as REPRO_SANITIZE=1); "
        "read-only, results stay bit-identical",
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_sweep_flags(sub_parser: argparse.ArgumentParser) -> None:
    """Attach the parallel-sweep flags to a subcommand parser."""
    sub_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for experiment sweeps (1 = serial; "
        "results are bit-identical either way)",
    )
    sub_parser.add_argument(
        "--no-underlay-reuse",
        action="store_true",
        help="rebuild the underlay per sweep point instead of sharing "
        "one prebuilt bundle",
    )


def _cmd_list() -> int:
    width = max(len(n) for n in EXPERIMENTS)
    for name, (desc, _) in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {desc}")
    return 0


#: experiment → (x column, series) for --chart rendering.
CHARTABLE = {
    "fig3": ("M/N (%)", ["member-only", "non-member-only"]),
    "fig7": ("M/N (%)", ["hops scrambled", "hops clustered"]),
    "fig9": ("M/N (%)", ["with locality", "without locality"]),
    "bounds-eq1": ("M/N (%)", ["routes w/ resolution (%)"]),
    "ext-staleness": ("p_stale", ["mean cost"]),
    "ext-batch-update": ("K", ["per-key msgs", "batched msgs"]),
    "fig8-workload": ("used (%)", ["mean depth"]),
    "ext-scaling": ("N", ["hops scrambled", "hops clustered"]),
    "ext-data": ("moved (%)", ["Bristle availability", "Type A availability"]),
}


def _cmd_run(
    names: List[str],
    scale: str,
    out: Optional[str],
    precision: int,
    chart: bool = False,
    trace: Optional[str] = None,
    metrics: Optional[str] = None,
    profile: bool = False,
    jobs: int = 1,
    underlay_reuse: bool = True,
    sanitize: bool = False,
) -> int:
    import contextlib

    from . import sanitize as sanitize_mod
    from .experiments.parallel import SweepConfig, sweep_session

    resolved: List[str] = []
    unknown: List[str] = []
    for n in names:
        try:
            resolved.append(resolve_experiment_name(n))
        except KeyError:
            unknown.append(n)
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    if sanitize:
        sanitize_mod.set_enabled(True)
    san_active = sanitize_mod.enabled()

    telemetry = None
    sink = None
    session: "contextlib.AbstractContextManager" = contextlib.nullcontext()
    # A sanitized run opens a (quiet) telemetry session too: workers report
    # their check counts through the merged ``sanitize.*`` counters.
    if trace or metrics or profile or san_active:
        from .sim.telemetry import Telemetry, telemetry_session
        from .sim.trace import JsonlSink, Tracer

        sink = JsonlSink(trace) if trace else None
        tracer = Tracer(enabled=trace is not None, capacity=100_000, sink=sink)
        telemetry = Telemetry(tracer=tracer, show_phase_footers=profile)
        session = telemetry_session(telemetry)

    sweep = SweepConfig(jobs=jobs, reuse_underlay=underlay_reuse)
    with session, sweep_session(sweep):
        tables = run_all(scale=scale, names=resolved)
    text = render_report(tables, precision=precision)
    if chart:
        from .experiments.plots import ascii_chart

        parts = [text]
        for name, table in tables.items():
            spec = CHARTABLE.get(name)
            if spec is not None:
                parts.append(ascii_chart(table, x=spec[0], series=spec[1]))
                parts.append("")
        text = "\n".join(parts)
    print(text)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")
        print(f"[written to {out}]")

    if telemetry is not None and (trace or metrics or profile):
        from .experiments.io import manifest_path_for, write_manifest
        from .experiments.manifest import build_manifest

        if sink is not None:
            sink.close()
            print(f"[trace written to {trace} ({sink.written} records)]")
        manifest = build_manifest(
            experiments=resolved,
            scale=scale,
            telemetry=telemetry,
            argv=sys.argv[1:],
            trace_file=trace,
            jobs=jobs,
            underlay_reuse=underlay_reuse,
        )
        manifest_targets = [p for p in (metrics,) if p]
        if out:
            # Every saved result table carries its provenance next to it.
            manifest_targets.append(manifest_path_for(out))
        for target in manifest_targets:
            write_manifest(manifest, target)
            print(f"[manifest written to {target}]")
        if profile:
            print("[profile] " + telemetry.profiler.footer_line())
    if san_active and telemetry is not None:
        checks = int(telemetry.metrics.counter("sanitize.checks").value)
        violations = int(telemetry.metrics.counter("sanitize.violations").value)
        print(sanitize_mod.summary_line(checks, violations))
    return 0


def _cmd_demo() -> int:
    from repro import BristleConfig, BristleNetwork, route_with_resolution

    net = BristleNetwork(BristleConfig(seed=42), num_stationary=150, num_mobile=75)
    net.setup_random_registrations()
    alice, bob = net.stationary_keys[0], net.mobile_keys[0]
    before = route_with_resolution(net, alice, bob)
    report = net.move(bob)
    after = route_with_resolution(net, alice, bob)
    print(
        f"{net.num_nodes} nodes; bob moved "
        f"(epoch {report.new_address.epoch}, {report.total_messages} update msgs, "
        f"LDT depth {report.ldt_depth})"
    )
    print(
        f"alice->bob: {before.app_hops} hops before the move, "
        f"{after.app_hops} after — same key, still delivered"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.names, args.scale, args.out, args.precision, args.chart,
            trace=args.trace, metrics=args.metrics, profile=args.profile,
            jobs=args.jobs, underlay_reuse=not args.no_underlay_reuse,
            sanitize=args.sanitize,
        )
    if args.command == "all":
        return _cmd_run(
            list(EXPERIMENTS), args.scale, args.out, args.precision, args.chart,
            trace=args.trace, metrics=args.metrics, profile=args.profile,
            jobs=args.jobs, underlay_reuse=not args.no_underlay_reuse,
            sanitize=args.sanitize,
        )
    if args.command == "audit":
        from .experiments.audit import render_audit, run_audit

        results = run_audit(scale=args.scale)
        print(render_audit(results))
        return 0 if all(r.passed for r in results) else 3
    if args.command == "demo":
        return _cmd_demo()
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Extension experiment: Bristle end-to-end scaling in N.

The paper's §2.1 promise: with the clustered naming scheme, a
stationary→stationary route costs ``O(log N)`` application-level hops
even with address resolutions, versus ``O((log N)^2)`` in the naive
design.  This sweep grows the population at a fixed mobile share and
measures the full Fig-2 routing pipeline — if the architecture delivers,
hops divided by ``log₂ N`` stay bounded for the clustered scheme while
the scrambled scheme's normalised cost keeps creeping up (its per-route
resolutions scale with the hop count itself).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.mobility import shuffle_all_mobile
from ..core.routing import route_with_resolution
from ..net.underlay import build_underlay, shared_underlay_cache
from ..sim.rng import derive_seed
from ..workloads.routes import sample_stationary_pairs
from .common import ResultTable
from .parallel import active_sweep, derive_point_seeds, sweep_map

__all__ = ["ScalingParams", "run_scaling"]


@dataclasses.dataclass(frozen=True)
class ScalingParams:
    sizes: Sequence[int] = (250, 500, 1000, 2000)
    mobile_share: float = 0.5
    routes: int = 400
    seed: int = 47


@dataclasses.dataclass(frozen=True)
class _ScalingPoint:
    """One (population size, naming scheme) cell of the scaling sweep."""

    naming: str
    n: int
    num_stationary: int
    num_mobile: int
    routes: int
    router_count: int
    underlay_seed: int
    seed: int
    reuse_underlay: bool


def _scaling_point(pt: _ScalingPoint) -> float:
    """Module-level (picklable) per-cell worker for :func:`sweep_map`."""
    bundle = (
        shared_underlay_cache().get(pt.underlay_seed, pt.router_count)
        if pt.reuse_underlay
        else build_underlay(pt.underlay_seed, pt.router_count)
    )
    cfg = BristleConfig(seed=pt.seed, naming=pt.naming, p_stale=1.0)
    net = BristleNetwork(cfg, pt.num_stationary, pt.num_mobile, underlay=bundle)
    shuffle_all_mobile(net)
    pairs = sample_stationary_pairs(net.stationary_keys, pt.routes, net.rng)
    hops = [route_with_resolution(net, s, t).app_hops for s, t in pairs]
    return float(np.mean(hops))


def run_scaling(params: Optional[ScalingParams] = None) -> ResultTable:
    """Route hops vs N for both naming schemes at fixed M/N.

    The sizes × schemes grid fans out through :func:`sweep_map`; each cell
    derives its own child seed (decoupling the two schemes' RNG streams)
    and sizes sharing a router count share one prebuilt underlay bundle.
    """
    p = params if params is not None else ScalingParams()
    if not 0.0 <= p.mobile_share < 1.0:
        raise ValueError("mobile_share must be in [0, 1)")
    table = ResultTable(
        title="Extension — end-to-end scaling in N (fixed M/N)",
        columns=[
            "N",
            "log2 N",
            "hops scrambled",
            "hops clustered",
            "scrambled / log2 N",
            "clustered / log2 N",
        ],
        notes=[
            f"mobile share {p.mobile_share:.0%}, {p.routes} routes per point, "
            "cold caches (p_stale = 1)",
        ],
    )
    sweep = active_sweep()
    underlay_seed = derive_seed(p.seed, "underlay")
    seeds = derive_point_seeds(
        p.seed, list(p.sizes), variants=("scrambled", "clustered")
    )
    points = [
        _ScalingPoint(
            naming=naming,
            n=n,
            num_stationary=n - int(round(n * p.mobile_share)),
            num_mobile=int(round(n * p.mobile_share)),
            routes=p.routes,
            router_count=max(150, n // 3),
            underlay_seed=underlay_seed,
            seed=seeds[(n, naming)],
            reuse_underlay=sweep.reuse_underlay,
        )
        for n in p.sizes
        for naming in ("scrambled", "clustered")
    ]
    results = sweep_map(_scaling_point, points)
    for n, scr, clu in zip(p.sizes, results[0::2], results[1::2]):
        log_n = math.log2(n)
        table.add_row(
            **{
                "N": n,
                "log2 N": log_n,
                "hops scrambled": scr,
                "hops clustered": clu,
                "scrambled / log2 N": scr / log_n,
                "clustered / log2 N": clu / log_n,
            }
        )
    return table

"""Extension experiment: Bristle end-to-end scaling in N.

The paper's §2.1 promise: with the clustered naming scheme, a
stationary→stationary route costs ``O(log N)`` application-level hops
even with address resolutions, versus ``O((log N)^2)`` in the naive
design.  This sweep grows the population at a fixed mobile share and
measures the full Fig-2 routing pipeline — if the architecture delivers,
hops divided by ``log₂ N`` stay bounded for the clustered scheme while
the scrambled scheme's normalised cost keeps creeping up (its per-route
resolutions scale with the hop count itself).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.mobility import shuffle_all_mobile
from ..core.routing import route_with_resolution
from ..net.underlay import build_underlay, shared_underlay_cache
from ..sim.rng import derive_seed
from ..sim.columnar import (
    ScaleShardParams,
    ScaleShardResult,
    TrafficMixParams,
    merge_shard_results,
    run_scale_shard,
    run_traffic_shard,
)
from ..workloads.routes import sample_stationary_pairs
from .common import ResultTable
from .parallel import active_sweep, derive_point_seeds, sweep_map

__all__ = [
    "ColumnarScaleParams",
    "ScalingParams",
    "TrafficMixScaleParams",
    "run_columnar_scale",
    "run_scaling",
    "run_traffic_mix",
]


@dataclasses.dataclass(frozen=True)
class ScalingParams:
    sizes: Sequence[int] = (250, 500, 1000, 2000)
    mobile_share: float = 0.5
    routes: int = 400
    seed: int = 47


@dataclasses.dataclass(frozen=True)
class _ScalingPoint:
    """One (population size, naming scheme) cell of the scaling sweep."""

    naming: str
    n: int
    num_stationary: int
    num_mobile: int
    routes: int
    router_count: int
    underlay_seed: int
    seed: int
    reuse_underlay: bool


def _scaling_point(pt: _ScalingPoint) -> float:
    """Module-level (picklable) per-cell worker for :func:`sweep_map`."""
    bundle = (
        shared_underlay_cache().get(pt.underlay_seed, pt.router_count)
        if pt.reuse_underlay
        else build_underlay(pt.underlay_seed, pt.router_count)
    )
    cfg = BristleConfig(seed=pt.seed, naming=pt.naming, p_stale=1.0)
    net = BristleNetwork(cfg, pt.num_stationary, pt.num_mobile, underlay=bundle)
    shuffle_all_mobile(net)
    pairs = sample_stationary_pairs(net.stationary_keys, pt.routes, net.rng)
    hops = [route_with_resolution(net, s, t).app_hops for s, t in pairs]
    return float(np.mean(hops))


def run_scaling(params: Optional[ScalingParams] = None) -> ResultTable:
    """Route hops vs N for both naming schemes at fixed M/N.

    The sizes × schemes grid fans out through :func:`sweep_map`; each cell
    derives its own child seed (decoupling the two schemes' RNG streams)
    and sizes sharing a router count share one prebuilt underlay bundle.
    """
    p = params if params is not None else ScalingParams()
    if not 0.0 <= p.mobile_share < 1.0:
        raise ValueError("mobile_share must be in [0, 1)")
    table = ResultTable(
        title="Extension — end-to-end scaling in N (fixed M/N)",
        columns=[
            "N",
            "log2 N",
            "hops scrambled",
            "hops clustered",
            "scrambled / log2 N",
            "clustered / log2 N",
        ],
        notes=[
            f"mobile share {p.mobile_share:.0%}, {p.routes} routes per point, "
            "cold caches (p_stale = 1)",
        ],
    )
    sweep = active_sweep()
    underlay_seed = derive_seed(p.seed, "underlay")
    seeds = derive_point_seeds(
        p.seed, list(p.sizes), variants=("scrambled", "clustered")
    )
    points = [
        _ScalingPoint(
            naming=naming,
            n=n,
            num_stationary=n - int(round(n * p.mobile_share)),
            num_mobile=int(round(n * p.mobile_share)),
            routes=p.routes,
            router_count=max(150, n // 3),
            underlay_seed=underlay_seed,
            seed=seeds[(n, naming)],
            reuse_underlay=sweep.reuse_underlay,
        )
        for n in p.sizes
        for naming in ("scrambled", "clustered")
    ]
    results = sweep_map(_scaling_point, points)
    for n, scr, clu in zip(p.sizes, results[0::2], results[1::2]):
        log_n = math.log2(n)
        table.add_row(
            **{
                "N": n,
                "log2 N": log_n,
                "hops scrambled": scr,
                "hops clustered": clu,
                "scrambled / log2 N": scr / log_n,
                "clustered / log2 N": clu / log_n,
            }
        )
    return table


@dataclasses.dataclass(frozen=True)
class ColumnarScaleParams:
    """Population and sharding for the columnar scale scenario.

    The scenario itself (per-round expiry sweep, hashed movement /
    departure schedules, the shared lookup stream) lives in
    :func:`repro.sim.columnar.run_scale_shard`; this wrapper only decides
    how big it is and into how many keyspace shards it fans out.
    """

    num_stationary: int = 20_000
    num_mobile: int = 8_000
    lookups: int = 10_000
    rounds: int = 8
    shards: int = 4
    seed: int = 53
    key_bits: int = 32
    replication: int = 3

    @classmethod
    def quick_scale(cls) -> "ColumnarScaleParams":
        """CI-sized population: a few thousand keys, still 4 shards."""
        return cls(num_stationary=2_500, num_mobile=1_200, lookups=1_500, rounds=6)


def _columnar_shard(pt: ScaleShardParams) -> ScaleShardResult:
    """Module-level (picklable) per-shard worker for :func:`sweep_map`."""
    return run_scale_shard(pt)


def run_columnar_scale(params: Optional[ColumnarScaleParams] = None) -> ResultTable:
    """Churn + lookup scenario on the columnar engine, keyspace-sharded.

    One :class:`~repro.sim.columnar.ScaleShardParams` per shard fans out
    through :func:`sweep_map`; each worker keeps only the mobile keys
    whose ring position falls in its shard, so the merged outcome is
    bit-identical to a serial run whatever the shard count or job count.
    Every reported value is deterministic (the snapshot checksum is
    folded to an integer so downstream numeric tooling can gate on it);
    wall-clock throughput lives in ``benchmarks/bench_scale.py``, not
    here.
    """
    p = params if params is not None else ColumnarScaleParams()
    if p.shards < 1:
        raise ValueError("shards must be >= 1")
    points = [
        ScaleShardParams(
            num_stationary=p.num_stationary,
            num_mobile=p.num_mobile,
            lookups=p.lookups,
            rounds=p.rounds,
            shard=shard,
            shards=p.shards,
            seed=p.seed,
            key_bits=p.key_bits,
            replication=p.replication,
        )
        for shard in range(p.shards)
    ]
    results = sweep_map(_columnar_shard, points)
    stats, rows, checksum = merge_shard_results(results)
    table = ResultTable(
        title="Extension — columnar engine scale scenario (keyspace-sharded)",
        columns=[
            "stationary",
            "mobile",
            "shards",
            "published",
            "expired",
            "withdrawn",
            "lookups",
            "hits",
            "live rows",
            "checksum12",
        ],
        notes=[
            f"{p.rounds} rounds, replication {p.replication}, seed {p.seed}; "
            "checksum12 = first 12 hex digits of the merged snapshot "
            "checksum (shard- and jobs-invariant)",
        ],
    )
    table.add_row(
        **{
            "stationary": p.num_stationary,
            "mobile": p.num_mobile,
            "shards": p.shards,
            "published": stats["published"],
            "expired": stats["expired"],
            "withdrawn": stats["withdrawn"],
            "lookups": stats["lookups"],
            "hits": stats["hits"],
            "live rows": len(rows),
            "checksum12": int(checksum[:12], 16),
        }
    )
    return table


@dataclasses.dataclass(frozen=True)
class TrafficMixScaleParams:
    """Population and sharding for the Zipf traffic-mix scale scenario.

    The scenario (popularity-ranked registry sizes, Zipf lookup stream,
    columnar-forest advertisement waves) lives in
    :func:`repro.sim.columnar.run_traffic_shard`; this wrapper sizes it
    and fans it out over keyspace shards.
    """

    num_stationary: int = 20_000
    num_mobile: int = 8_000
    lookups: int = 10_000
    rounds: int = 8
    shards: int = 4
    seed: int = 61
    key_bits: int = 32
    replication: int = 3
    zipf_s: float = 1.1
    min_registry: int = 4
    max_registry: int = 64

    @classmethod
    def quick_scale(cls) -> "TrafficMixScaleParams":
        """CI-sized population: a few thousand keys, still 4 shards."""
        return cls(num_stationary=2_500, num_mobile=1_200, lookups=1_500, rounds=6)


def _traffic_shard(pt: TrafficMixParams) -> ScaleShardResult:
    """Module-level (picklable) per-shard worker for :func:`sweep_map`."""
    return run_traffic_shard(pt)


def run_traffic_mix(params: Optional[TrafficMixScaleParams] = None) -> ResultTable:
    """Zipf-skewed advertisement/lookup mix on the columnar engine.

    Same sharding contract as :func:`run_columnar_scale`: one
    :class:`~repro.sim.columnar.TrafficMixParams` per shard through
    :func:`sweep_map`, merged bit-identically whatever the shard or job
    count.  The table reports the dissemination side of the mix — forest
    builds, multicast deliveries, depth — plus the hot-set lookup share
    that makes the Zipf skew visible.
    """
    p = params if params is not None else TrafficMixScaleParams()
    if p.shards < 1:
        raise ValueError("shards must be >= 1")
    points = [
        TrafficMixParams(
            num_stationary=p.num_stationary,
            num_mobile=p.num_mobile,
            lookups=p.lookups,
            rounds=p.rounds,
            shard=shard,
            shards=p.shards,
            seed=p.seed,
            key_bits=p.key_bits,
            replication=p.replication,
            zipf_s=p.zipf_s,
            min_registry=p.min_registry,
            max_registry=p.max_registry,
        )
        for shard in range(p.shards)
    ]
    results = sweep_map(_traffic_shard, points)
    stats, rows, checksum = merge_shard_results(results)
    table = ResultTable(
        title="Extension — Zipf traffic mix on the columnar LDT forest",
        columns=[
            "stationary",
            "mobile",
            "shards",
            "published",
            "ldt trees",
            "multicast deliveries",
            "mean depth",
            "lookups",
            "hit rate",
            "hot share",
            "checksum12",
        ],
        notes=[
            f"{p.rounds} rounds, Zipf s={p.zipf_s}, registries "
            f"{p.min_registry}..{p.max_registry} by popularity rank, seed "
            f"{p.seed}; hot share = lookups on the top 1% of ranks; "
            "checksum12 = first 12 hex digits of the merged snapshot "
            "checksum (shard- and jobs-invariant)",
        ],
    )
    table.add_row(
        **{
            "stationary": p.num_stationary,
            "mobile": p.num_mobile,
            "shards": p.shards,
            "published": stats["published"],
            "ldt trees": stats["ldt_trees"],
            "multicast deliveries": stats["multicast_deliveries"],
            "mean depth": stats["ldt_depth_sum"] / max(stats["ldt_trees"], 1),
            "lookups": stats["lookups"],
            "hit rate": stats["hits"] / max(stats["lookups"], 1),
            "hot share": stats["hot_lookups"] / max(stats["lookups"], 1),
            "checksum12": int(checksum[:12], 16),
        }
    )
    return table

"""Extension experiment: Bristle end-to-end scaling in N.

The paper's §2.1 promise: with the clustered naming scheme, a
stationary→stationary route costs ``O(log N)`` application-level hops
even with address resolutions, versus ``O((log N)^2)`` in the naive
design.  This sweep grows the population at a fixed mobile share and
measures the full Fig-2 routing pipeline — if the architecture delivers,
hops divided by ``log₂ N`` stay bounded for the clustered scheme while
the scrambled scheme's normalised cost keeps creeping up (its per-route
resolutions scale with the hop count itself).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.mobility import shuffle_all_mobile
from ..core.routing import route_with_resolution
from ..workloads.routes import sample_stationary_pairs
from .common import ResultTable

__all__ = ["ScalingParams", "run_scaling"]


@dataclasses.dataclass(frozen=True)
class ScalingParams:
    sizes: Sequence[int] = (250, 500, 1000, 2000)
    mobile_share: float = 0.5
    routes: int = 400
    seed: int = 47


def run_scaling(params: Optional[ScalingParams] = None) -> ResultTable:
    """Route hops vs N for both naming schemes at fixed M/N."""
    p = params if params is not None else ScalingParams()
    if not 0.0 <= p.mobile_share < 1.0:
        raise ValueError("mobile_share must be in [0, 1)")
    table = ResultTable(
        title="Extension — end-to-end scaling in N (fixed M/N)",
        columns=[
            "N",
            "log2 N",
            "hops scrambled",
            "hops clustered",
            "scrambled / log2 N",
            "clustered / log2 N",
        ],
        notes=[
            f"mobile share {p.mobile_share:.0%}, {p.routes} routes per point, "
            "cold caches (p_stale = 1)",
        ],
    )
    for n in p.sizes:
        num_mobile = int(round(n * p.mobile_share))
        num_stationary = n - num_mobile
        row = {"N": n, "log2 N": math.log2(n)}
        for naming in ("scrambled", "clustered"):
            cfg = BristleConfig(seed=p.seed, naming=naming, p_stale=1.0)
            net = BristleNetwork(
                cfg, num_stationary, num_mobile, router_count=max(150, n // 3)
            )
            shuffle_all_mobile(net)
            pairs = sample_stationary_pairs(net.stationary_keys, p.routes, net.rng)
            hops = [route_with_resolution(net, s, t).app_hops for s, t in pairs]
            row[f"hops {naming}"] = float(np.mean(hops))
        row["scrambled / log2 N"] = row["hops scrambled"] / row["log2 N"]
        row["clustered / log2 N"] = row["hops clustered"] / row["log2 N"]
        table.add_row(**row)
    return table

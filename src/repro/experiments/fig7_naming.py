"""Figure 7: scrambled vs clustered naming — application-level hops and
relative delay penalty (§4.1).

Paper setup: ``N − M = 2,000`` stationary nodes, ``M = 0..8,000`` mobile
(M/N from 0 to 80%), nodes placed randomly on a GT-ITM transit-stub
underlay, 10,000 sample routes between randomly picked stationary nodes.
For each naming scheme the experiment reports the mean application-level
hops (Fig 7a) and the mean path cost; Fig 7(b)'s RDP is the
scrambled/clustered ratio of each, with the knee expected at M/N = 50%
(the ∇ ≥ 1/2 bound of §3 eq. 1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.mobility import shuffle_all_mobile
from ..core.routing import route_preferring_resolved, route_with_resolution
from ..net.underlay import (
    UnderlayBundle,
    build_underlay,
    cache_stats_delta,
    shared_underlay_cache,
)
from ..sim.metrics import record_cache_stats
from ..sim.rng import derive_seed
from ..sim.telemetry import active_telemetry
from ..workloads.routes import sample_stationary_pairs
from .common import (
    ResultTable,
    driver_profiler,
    maybe_add_nodeload_footer,
    maybe_add_phase_footer,
)
from .parallel import active_sweep, derive_point_seeds, sweep_map

__all__ = ["Fig7Params", "measure_naming_scheme", "run_fig7"]

#: The paper's M/N sweep: 0%..80% in 10% steps.
DEFAULT_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclasses.dataclass(frozen=True)
class Fig7Params:
    """Experiment sizing — defaults are a scaled-down but shape-preserving
    version of the paper's setup; pass ``paper_scale()`` for full size."""

    num_stationary: int = 500
    routes: int = 2000
    router_count: int = 600
    fractions: Sequence[float] = DEFAULT_FRACTIONS
    seed: int = 5
    #: ``"greedy"`` = the plain Fig-2 rule (closest state-pair wins, the
    #: paper's naming-oblivious default); ``"prefer_resolved"`` = §3's
    #: "reduce the help of mobile nodes" policy, which sharpens the 50%
    #: knee (ablation bench).
    routing_policy: str = "greedy"

    def __post_init__(self) -> None:
        if self.routing_policy not in ("greedy", "prefer_resolved"):
            raise ValueError(f"unknown routing policy {self.routing_policy!r}")

    @staticmethod
    def paper_scale() -> "Fig7Params":
        """The paper's 2,000 stationary / 10,000 routes configuration."""
        return Fig7Params(num_stationary=2000, routes=10000, router_count=2600)


def measure_naming_scheme(
    naming: str,
    num_stationary: int,
    num_mobile: int,
    routes: int,
    router_count: int,
    seed: int,
    routing_policy: str = "greedy",
    underlay: Optional[UnderlayBundle] = None,
) -> Dict[str, float]:
    """Build one network, shuffle every mobile node once (cold caches),
    sample routes, and return the Figure-7 aggregates.

    The oracle is pre-warmed with the attachment routers of every member
    (the exact source set the sweep's hop costs can touch) so the 10,000
    per-hop distance reads hit a batch-computed cache; the oracle's
    counters ride along under ``"cache_stats"``.  When a prebuilt
    ``underlay`` bundle is supplied its (possibly shared, already warm)
    oracle is used and the reported stats are this point's *delta* —
    totals then agree with the per-point-oracle path.
    """
    prof = driver_profiler()
    cfg = BristleConfig(seed=seed, naming=naming, p_stale=1.0)
    stats_before = underlay.oracle.cache_stats() if underlay is not None else None
    with prof.phase("build"):
        if underlay is not None:
            net = BristleNetwork(cfg, num_stationary, num_mobile, underlay=underlay)
        else:
            net = BristleNetwork(
                cfg, num_stationary, num_mobile, router_count=router_count
            )
        shuffle_all_mobile(net)
    with prof.phase("warmup"):
        net.prewarm_oracle()  # one batched Dijkstra over the post-move routers
    route_fn = (
        route_preferring_resolved if routing_policy == "prefer_resolved" else route_with_resolution
    )
    pairs = sample_stationary_pairs(net.stationary_keys, routes, net.rng)
    hops = np.empty(len(pairs), dtype=np.float64)
    costs = np.empty(len(pairs), dtype=np.float64)
    resolutions = np.empty(len(pairs), dtype=np.float64)
    with prof.phase("route"):
        for i, (s, t) in enumerate(pairs):
            trace = route_fn(net, s, t)
            hops[i] = trace.app_hops
            costs[i] = trace.path_cost
            resolutions[i] = trace.resolutions
    after = net.oracle.cache_stats()
    return {
        "hops": float(hops.mean()),
        "cost": float(costs.mean()),
        "resolutions": float(resolutions.mean()),
        "cache_stats": (
            cache_stats_delta(stats_before, after) if stats_before is not None else after
        ),
    }


@dataclasses.dataclass(frozen=True)
class _Fig7Point:
    """One (mobility fraction, naming scheme) cell of the Fig-7 grid."""

    naming: str
    fraction: float
    num_stationary: int
    num_mobile: int
    routes: int
    router_count: int
    underlay_seed: int
    seed: int
    routing_policy: str
    reuse_underlay: bool


def _fig7_point(pt: _Fig7Point) -> Dict[str, float]:
    """Module-level (picklable) per-point worker for :func:`sweep_map`."""
    bundle = (
        shared_underlay_cache().get(pt.underlay_seed, pt.router_count)
        if pt.reuse_underlay
        else build_underlay(pt.underlay_seed, pt.router_count)
    )
    return measure_naming_scheme(
        pt.naming,
        pt.num_stationary,
        pt.num_mobile,
        pt.routes,
        pt.router_count,
        pt.seed,
        pt.routing_policy,
        underlay=bundle,
    )


def run_fig7(params: Optional[Fig7Params] = None) -> ResultTable:
    """Run the full Figure-7 sweep for both naming schemes.

    Columns cover both sub-figures: mean hops per scheme (7a), mean path
    cost per scheme, and the two RDP ratios (7b).

    The 2 × len(fractions) grid cells are independent: each gets its own
    child seed via :func:`~repro.experiments.parallel.derive_point_seeds`
    (decoupling the scrambled/clustered RNG streams that previously shared
    ``p.seed`` verbatim) and runs through :func:`sweep_map`, sharing one
    prebuilt underlay keyed on ``(derive_seed(p.seed, "underlay"),
    router_count)``.
    """
    p = params if params is not None else Fig7Params()
    table = ResultTable(
        title="Figure 7 — scrambled vs clustered naming",
        columns=[
            "M/N (%)",
            "hops scrambled",
            "hops clustered",
            "cost scrambled",
            "cost clustered",
            "RDP hops",
            "RDP cost",
            "res scrambled",
            "res clustered",
        ],
        notes=[
            f"{p.num_stationary} stationary nodes, {p.routes} routes per point, "
            f"~{p.router_count}-router transit-stub underlay "
            "(paper: 2,000 stationary / 10,000 routes)",
        ],
    )
    cache_totals = {
        "hits": 0.0, "misses": 0.0, "evictions": 0.0,
        "dijkstra_runs": 0.0, "batch_calls": 0.0,
    }
    for frac in p.fractions:
        if frac >= 1.0:
            raise ValueError("mobile fraction must be < 1")
    sweep = active_sweep()
    underlay_seed = derive_seed(p.seed, "underlay")
    seeds = derive_point_seeds(
        p.seed, list(p.fractions), variants=("scrambled", "clustered")
    )
    if sweep.reuse_underlay:
        # Build + fully warm the shared oracle once, before any fork: every
        # attachment point is covered, so each grid cell sees an identical
        # (all-hits) cache regardless of job count or point order.
        bundle = shared_underlay_cache().get(underlay_seed, p.router_count)
        before = bundle.oracle.cache_stats()
        with driver_profiler().phase("warmup"):
            bundle.oracle.prewarm(bundle.topology.attachment_points())
        for k, v in cache_stats_delta(before, bundle.oracle.cache_stats()).items():
            if k in cache_totals:
                cache_totals[k] += v
    points = [
        _Fig7Point(
            naming=naming,
            fraction=frac,
            num_stationary=p.num_stationary,
            num_mobile=int(round(p.num_stationary * frac / (1.0 - frac))),
            routes=p.routes,
            router_count=p.router_count,
            underlay_seed=underlay_seed,
            seed=seeds[(frac, naming)],
            routing_policy=p.routing_policy,
            reuse_underlay=sweep.reuse_underlay,
        )
        for frac in p.fractions
        for naming in ("scrambled", "clustered")
    ]
    results = sweep_map(_fig7_point, points)
    for frac, scr, clu in zip(p.fractions, results[0::2], results[1::2]):
        for stats in (scr["cache_stats"], clu["cache_stats"]):
            for k in cache_totals:
                cache_totals[k] += stats[k]
        table.add_row(
            **{
                "M/N (%)": round(100 * frac, 1),
                "hops scrambled": scr["hops"],
                "hops clustered": clu["hops"],
                "cost scrambled": scr["cost"],
                "cost clustered": clu["cost"],
                "RDP hops": scr["hops"] / clu["hops"] if clu["hops"] else float("nan"),
                "RDP cost": scr["cost"] / clu["cost"] if clu["cost"] else float("nan"),
                "res scrambled": scr["resolutions"],
                "res clustered": clu["resolutions"],
            }
        )
    lookups = cache_totals["hits"] + cache_totals["misses"]
    cache_totals["hit_rate"] = (
        cache_totals["hits"] / lookups if lookups else float("nan")
    )
    table.add_cache_footer(cache_totals, label="oracle cache (all points)")
    tel = active_telemetry()
    if tel is not None:
        # Mirror the sweep-wide cache totals into the session registry so
        # the run manifest's cache_stats section covers this experiment.
        record_cache_stats(tel.metrics, cache_totals, ratios=("hit_rate",))
    maybe_add_phase_footer(table, ("build", "warmup", "route"))
    maybe_add_nodeload_footer(table, ("routed", "detour"))
    return table

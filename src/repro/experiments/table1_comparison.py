"""Table 1, measured: Type A vs Type B vs Bristle on one shared workload.

The paper's Table 1 is qualitative (infrastructure, scalability,
reliability, performance, deployment, end-to-end semantics).  This
experiment quantifies each row the simulation can speak to:

* **end-to-end semantics** — fraction of lookups (addressed to the node
  keys correspondents learned *before* the churn) that still reach the
  intended node after every mobile node moved.  Type A breaks this (the
  key is retired on re-join); Bristle and Type B preserve it.
* **performance** — mean underlay path cost of those lookups.  Type B
  pays the Mobile-IP triangular route on every hop to a moved node;
  Bristle pays a one-time discovery (and nothing once caches are warm —
  reported separately).
* **maintenance overhead** — protocol messages per move: Type A's
  ``2·O(log N)`` re-join, Type B's single home-agent registration,
  Bristle's publish + LDT advertisement.
* **reliability** — delivery rate when a fraction of the location
  infrastructure fails: Type B home agents vs Bristle directory holders
  (whose records are replicated).
* **scalability** — the maximum per-node relay/storage load of the
  location infrastructure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..core.routing import route_with_resolution
from ..net.underlay import shared_underlay_cache
from ..workloads.scenarios import ComparisonScenario, build_comparison_scenario
from .common import (
    ResultTable,
    driver_profiler,
    maybe_add_nodeload_footer,
    maybe_add_phase_footer,
)
from .parallel import active_sweep, sweep_map

__all__ = ["Table1Params", "run_table1"]


@dataclasses.dataclass(frozen=True)
class Table1Params:
    num_stationary: int = 200
    num_mobile: int = 200
    lookups: int = 600
    agent_failure_fraction: float = 0.2
    seed: int = 4
    #: Table 1 compares the architectures, not the §3 naming optimisation;
    #: scrambled keys spread the location directory uniformly over the
    #: stationary layer (clustered naming would concentrate every mobile
    #: record at the stationary band's edge nodes — see DESIGN.md).
    naming: str = "scrambled"


def _bristle_metrics(scenario: ComparisonScenario, p: Table1Params) -> Dict[str, float]:
    net = scenario.bristle
    net.setup_random_registrations()
    move_messages: List[int] = []
    for mk in list(net.mobile_keys):
        rep = net.move(mk, advertise=True)
        move_messages.append(rep.total_messages)
    gen = net.rng.stream("table1.lookups")
    stationary = net.stationary_keys
    mobile = net.mobile_keys
    delivered = 0
    costs: List[float] = []
    warm_costs: List[float] = []
    resolutions = 0
    for _ in range(p.lookups):
        src = stationary[int(gen.integers(len(stationary)))]
        tgt = mobile[int(gen.integers(len(mobile)))]
        trace = route_with_resolution(net, src, tgt)
        if trace.success:
            delivered += 1
            costs.append(trace.path_cost)
            resolutions += trace.resolutions
        # Warm caches: the resolved address is remembered (end-to-end
        # semantics preserved), so repeat traffic goes direct.
        warm = route_with_resolution(net, src, tgt, p_stale=0.0)
        if warm.success:
            warm_costs.append(warm.path_cost)
    # Reliability: fail a fraction of directory holders; replicated
    # records survive unless every holder of a key is down.
    holders = sorted(net.directory.holder_load())
    n_fail = int(len(holders) * p.agent_failure_fraction)
    failed = set(net.rng.sample("table1.failures", holders, n_fail)) if n_fail else set()
    survivable = 0
    for mk in mobile:
        if any(h not in failed for h in net.directory.holders_for(mk)):
            survivable += 1
    load = net.resolution_load
    return {
        "end_to_end": delivered / p.lookups,
        "mean_cost": float(np.mean(costs)) if costs else float("nan"),
        "warm_cost": float(np.mean(warm_costs)) if warm_costs else float("nan"),
        "messages_per_move": float(np.mean(move_messages)) if move_messages else 0.0,
        "delivery_under_failure": survivable / len(mobile) if mobile else 1.0,
        "max_infra_load": float(max(load.values())) if load else 0.0,
    }


def _type_a_metrics(scenario: ComparisonScenario, p: Table1Params) -> Dict[str, float]:
    ta = scenario.type_a
    # Correspondents learn keys now, before the churn.
    known_keys = {host: ta.key_of[host] for host in scenario.mobile_hosts}
    move_messages: List[int] = []
    for host in sorted(scenario.mobile_hosts):
        move_messages.append(ta.move(host).join_messages)
    gen = ta.rng.stream("table1.lookups")
    stationary_hosts = sorted(set(ta.key_of) - scenario.mobile_hosts)
    mobile_hosts = sorted(scenario.mobile_hosts)
    delivered = 0
    costs: List[float] = []
    for _ in range(p.lookups):
        src = stationary_hosts[int(gen.integers(len(stationary_hosts)))]
        tgt_host = mobile_hosts[int(gen.integers(len(mobile_hosts)))]
        result = ta.lookup(src, known_keys[tgt_host])
        if result.reached_intended:
            delivered += 1
            costs.append(result.path_cost)
    return {
        "end_to_end": delivered / p.lookups,
        "mean_cost": float(np.mean(costs)) if costs else float("nan"),
        # Repeat traffic cannot warm anything: the old key stays dead.
        "warm_cost": float("nan"),
        "messages_per_move": float(np.mean(move_messages)) if move_messages else 0.0,
        # Type A has no location infrastructure: nothing to fail, nothing
        # to overload — but also nothing to restore reachability.
        "delivery_under_failure": delivered / p.lookups,
        "max_infra_load": 0.0,
    }


def _type_b_metrics(scenario: ComparisonScenario, p: Table1Params) -> Dict[str, float]:
    tb = scenario.type_b
    for host in sorted(scenario.mobile_hosts):
        tb.move(host)
    gen = tb.rng.stream("table1.lookups")
    stationary_hosts = sorted(set(tb.key_of) - scenario.mobile_hosts)
    mobile_hosts = sorted(scenario.mobile_hosts)
    delivered = 0
    costs: List[float] = []
    for _ in range(p.lookups):
        src = stationary_hosts[int(gen.integers(len(stationary_hosts)))]
        tgt_host = mobile_hosts[int(gen.integers(len(mobile_hosts)))]
        result = tb.lookup(src, tb.key_of[tgt_host])
        if result.delivered:
            delivered += 1
            costs.append(result.path_cost)
    end_to_end = delivered / p.lookups
    mean_cost = float(np.mean(costs)) if costs else float("nan")
    # Reliability: fail a fraction of home agents and replay lookups.
    agents = sorted(tb.home_agent.values())
    unique_agents = sorted(set(agents))
    n_fail = int(len(unique_agents) * p.agent_failure_fraction)
    for router in tb.rng.sample("table1.failures", unique_agents, n_fail):
        tb.fail_agent(router)
    delivered_failed = 0
    for _ in range(p.lookups):
        src = stationary_hosts[int(gen.integers(len(stationary_hosts)))]
        tgt_host = mobile_hosts[int(gen.integers(len(mobile_hosts)))]
        if tb.lookup(src, tb.key_of[tgt_host]).delivered:
            delivered_failed += 1
    load = tb.agent_load_stats()
    return {
        "end_to_end": end_to_end,
        "mean_cost": mean_cost,
        # Mobile IP's triangular route is permanent: packets always pass
        # the home agent, warm or cold.
        "warm_cost": mean_cost,
        "messages_per_move": 1.0,  # one care-of registration per move
        "delivery_under_failure": delivered_failed / p.lookups,
        "max_infra_load": load["max"],
    }


_ARCH_FNS = {
    "Type A": _type_a_metrics,
    "Type B": _type_b_metrics,
    "Bristle": _bristle_metrics,
}

#: Table-1 measurement order (also the row order).
_ARCHITECTURES = ("Type A", "Type B", "Bristle")


@dataclasses.dataclass(frozen=True)
class _Table1Point:
    """One architecture of the Table-1 comparison.

    All three points deliberately share ``params.seed``: Table 1 compares
    the architectures over *one identical world* (same topology, same key
    assignment, same lookup draws), so the per-variant seed decoupling the
    figure sweeps use would defeat the experiment's pairing.
    """

    arch: str
    params: Table1Params
    router_count: int
    reuse_underlay: bool


def _table1_point(pt: _Table1Point) -> Dict[str, float]:
    """Module-level (picklable) per-architecture worker for sweep_map."""
    from ..core.config import BristleConfig

    p = pt.params
    prof = driver_profiler()
    # The bundle key is (p.seed, router_count) — the very derivation
    # build_comparison_scenario uses inline — so cached and uncached paths
    # produce byte-identical worlds.
    underlay = (
        shared_underlay_cache().get(p.seed, pt.router_count)
        if pt.reuse_underlay
        else None
    )
    with prof.phase("build"):
        scenario = build_comparison_scenario(
            p.num_stationary,
            p.num_mobile,
            seed=p.seed,
            config=BristleConfig(seed=p.seed, naming=p.naming),
            underlay=underlay,
        )
    with prof.phase("measure"):
        return _ARCH_FNS[pt.arch](scenario, p)


def run_table1(params: Optional[Table1Params] = None) -> ResultTable:
    """Measure all three architectures (a 3-point sweep over one world)."""
    p = params if params is not None else Table1Params()
    sweep = active_sweep()
    router_count = max(100, (p.num_stationary + p.num_mobile) // 2)
    points = [
        _Table1Point(
            arch=name,
            params=p,
            router_count=router_count,
            reuse_underlay=sweep.reuse_underlay,
        )
        for name in _ARCHITECTURES
    ]
    results = sweep_map(_table1_point, points)
    metrics_by_type: Dict[str, Dict[str, float]] = {
        pt.arch: res for pt, res in zip(points, results)
    }

    table = ResultTable(
        title="Table 1 — design choices, measured",
        columns=[
            "architecture",
            "end-to-end delivery",
            "mean path cost",
            "warm path cost",
            "messages/move",
            "delivery w/ 20% infra failure",
            "max infra load",
        ],
        notes=[
            f"{p.num_stationary} stationary + {p.num_mobile} mobile nodes; every "
            f"mobile node moves once; {p.lookups} lookups to pre-move keys",
        ],
    )
    for name in ("Type A", "Type B", "Bristle"):
        m = metrics_by_type[name]
        table.add_row(
            **{
                "architecture": name,
                "end-to-end delivery": m["end_to_end"],
                "mean path cost": m["mean_cost"],
                "warm path cost": m["warm_cost"],
                "messages/move": m["messages_per_move"],
                "delivery w/ 20% infra failure": m["delivery_under_failure"],
                "max infra load": m["max_infra_load"],
            }
        )
    maybe_add_phase_footer(table, ("build", "measure"))
    maybe_add_nodeload_footer(table, ("detour", "registrations"))
    return table

"""Text-mode charts: render ResultTable series as ASCII line/bar plots.

The paper's evaluation is figures; the benches print tables.  These
helpers close the gap for terminal consumption::

    print(ascii_chart(table, x="M/N (%)",
                      series=["hops scrambled", "hops clustered"]))

draws the Figure-7(a) curves with axis labels and a legend, entirely in
monospace text (no plotting dependency).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .common import ResultTable, format_float

__all__ = ["ascii_chart", "ascii_bars"]

#: Glyph per series, cycled.
_MARKS = "*o+x#@%&"


def _scale(
    values: Sequence[float], lo: float, hi: float, extent: int
) -> List[int]:
    """Map values into [0, extent-1] (graceful on a degenerate range)."""
    if hi <= lo:
        return [0 for _ in values]
    return [
        min(extent - 1, max(0, int(round((v - lo) / (hi - lo) * (extent - 1)))))
        for v in values
    ]


def ascii_chart(
    table: ResultTable,
    x: str,
    series: Sequence[str],
    *,
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Render one or more numeric columns of ``table`` against column ``x``.

    Rows with missing/NaN values in a series are skipped for that series.
    Returns a multi-line string: title, plot grid with y-axis labels,
    x-axis range, legend.
    """
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")
    xs_all = table.column(x)
    points: Dict[str, List[Tuple[float, float]]] = {}
    for name in series:
        col = table.column(name)
        pts = [
            (float(a), float(b))
            for a, b in zip(xs_all, col)
            if a is not None and b is not None and not (
                isinstance(b, float) and math.isnan(b)
            )
        ]
        if pts:
            points[name] = pts
    if not points:
        raise ValueError("no plottable points in the requested series")

    all_x = [p[0] for pts in points.values() for p in pts]
    all_y = [p[1] for pts in points.values() for p in pts]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(points.items()):
        mark = _MARKS[idx % len(_MARKS)]
        cols = _scale([p[0] for p in pts], x_lo, x_hi, width)
        rows = _scale([p[1] for p in pts], y_lo, y_hi, height)
        # Connect consecutive points with linear interpolation.
        for (c0, r0), (c1, r1) in zip(zip(cols, rows), zip(cols[1:], rows[1:])):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for s in range(steps + 1):
                c = round(c0 + (c1 - c0) * s / steps)
                r = round(r0 + (r1 - r0) * s / steps)
                if grid[height - 1 - r][c] == " ":
                    grid[height - 1 - r][c] = mark
        # Re-stamp the actual data points so they win over line fill.
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = mark

    y_labels = [format_float(y_hi, 3), format_float((y_lo + y_hi) / 2, 3), format_float(y_lo, 3)]
    label_w = max(len(s) for s in y_labels)
    lines = []
    lines.append(title if title is not None else table.title)
    for i, row in enumerate(grid):
        if i == 0:
            label = y_labels[0]
        elif i == height // 2:
            label = y_labels[1]
        elif i == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}")
    lines.append(f"{' ' * label_w} +{'-' * width}")
    x_axis = f"{format_float(x_lo, 3)}{' ' * (width - len(format_float(x_lo, 3)) - len(format_float(x_hi, 3)))}{format_float(x_hi, 3)}"
    lines.append(f"{' ' * label_w}  {x_axis}")
    lines.append(f"{' ' * label_w}  x: {x}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(points)
    )
    lines.append(f"{' ' * label_w}  {legend}")
    return "\n".join(lines)


def ascii_bars(
    table: ResultTable,
    label: str,
    value: str,
    *,
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart of column ``value`` labelled by ``label``."""
    labels = [str(v) for v in table.column(label)]
    raw = table.column(value)
    values = [float(v) if v is not None else math.nan for v in raw]
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        raise ValueError("no plottable values")
    peak = max(max(finite), 1e-12)
    label_w = max(len(s) for s in labels)
    lines = [title if title is not None else f"{table.title} — {value}"]
    for name, v in zip(labels, values):
        if math.isnan(v):
            bar, shown = "", "nan"
        else:
            bar = "█" * max(0, int(round(v / peak * width)))
            shown = format_float(v, 3)
        lines.append(f"{name.rjust(label_w)} |{bar} {shown}")
    return "\n".join(lines)

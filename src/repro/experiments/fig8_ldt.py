"""Figure 8: LDT adaptation to workload and heterogeneity (§4.2).

Paper setup: up to 25,000 nodes; each node's capacity (number of available
network connections) uniform in ``1..MAX`` for ``MAX = 1..15``; each LDT
has ⌈log₂ 25,000⌉ = 15 registry members.

* **Fig 8(a)** — for each MAX, the percentage of tree nodes at each level
  over all LDTs: homogeneous weak nodes (MAX = 1) degenerate into chains
  (depth ≈ registry size); richer capacity mixes flatten the trees.
* **Fig 8(b)** — 15 sampled trees: per registry node (sorted by
  decreasing capacity) its capacity and the number of nodes it was
  assigned (the Fig-4 partition size), showing super-nodes carry the
  forwarding load and partitions stay nearly equal.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ldt import LDTMember, LDTree, build_ldt
from ..sim.rng import RngStreams
from .common import ResultTable

__all__ = [
    "Fig8Params",
    "run_fig8_workload",
    "build_random_ldt",
    "run_fig8a",
    "run_fig8b",
    "sample_tree_profiles",
]


@dataclasses.dataclass(frozen=True)
class Fig8Params:
    """Sizing for the Figure-8 runs."""

    registry_size: int = 15  # ⌈log2 25000⌉ in the paper
    trees_per_max: int = 200  # LDTs measured per MAX value
    max_values: Sequence[int] = tuple(range(1, 16))
    unit_cost: float = 1.0
    seed: int = 8

    @staticmethod
    def paper_scale() -> "Fig8Params":
        """Closer to "we measure all LDTs" over 25,000 nodes."""
        return Fig8Params(trees_per_max=2000)


def build_random_ldt(
    registry_size: int,
    max_capacity: int,
    rng: RngStreams,
    *,
    unit_cost: float = 1.0,
    used_fraction: float = 0.0,
    stream: str = "fig8",
) -> LDTree:
    """One LDT whose root and registry draw uniform capacities 1..MAX.

    ``used_fraction`` optionally pre-loads each node with that fraction of
    its capacity (the workload knob of §4.2's "tree depth becomes
    lengthened" observation).
    """
    if registry_size < 1:
        raise ValueError("registry_size must be >= 1")
    if max_capacity < 1:
        raise ValueError("max_capacity must be >= 1")
    if not 0.0 <= used_fraction < 1.0:
        raise ValueError("used_fraction must be in [0, 1)")
    gen = rng.stream(stream)
    caps = gen.integers(1, max_capacity + 1, size=registry_size + 1)
    members = [
        LDTMember(key=i + 1, capacity=float(c), used=float(c) * used_fraction)
        for i, c in enumerate(caps[1:])
    ]
    root = LDTMember(key=0, capacity=float(caps[0]), used=float(caps[0]) * used_fraction)
    return build_ldt(root, members, unit_cost=unit_cost)


def run_fig8a(params: Optional[Fig8Params] = None) -> ResultTable:
    """Level distribution of LDT members per MAX (Fig 8a).

    Columns: MAX, mean/max depth, then the percentage of members at
    levels 1..registry_size.
    """
    p = params if params is not None else Fig8Params()
    level_cols = [f"L{lvl} (%)" for lvl in range(1, p.registry_size + 1)]
    table = ResultTable(
        title="Figure 8(a) — LDT structure vs node capacity",
        columns=["MAX", "mean depth", "max depth"] + level_cols,
        notes=[
            f"registry size {p.registry_size} (paper: ceil(log2 25000) = 15), "
            f"{p.trees_per_max} trees per MAX, capacities U(1..MAX)",
        ],
    )
    rng = RngStreams(p.seed)
    for max_cap in p.max_values:
        counts = np.zeros(p.registry_size + 2, dtype=np.int64)
        depths: List[int] = []
        for t in range(p.trees_per_max):
            tree = build_random_ldt(
                p.registry_size, max_cap, rng, unit_cost=p.unit_cost,
                stream=f"fig8a.{max_cap}",
            )
            depths.append(tree.depth)
            for lvl, n in tree.level_histogram().items():
                counts[min(lvl, p.registry_size + 1)] += n
        total = counts.sum()
        row: Dict[str, float] = {
            "MAX": max_cap,
            "mean depth": float(np.mean(depths)),
            "max depth": float(np.max(depths)),
        }
        for lvl in range(1, p.registry_size + 1):
            row[f"L{lvl} (%)"] = 100.0 * counts[lvl] / total if total else 0.0
        table.add_row(**row)
    return table


def sample_tree_profiles(
    num_trees: int,
    registry_size: int,
    max_capacity: int,
    seed: int,
    *,
    unit_cost: float = 1.0,
) -> List[List[Tuple[float, int]]]:
    """Fig 8(b) raw data: for each sampled tree, the (capacity, assigned)
    pairs of its nodes sorted by decreasing capacity (root first tie)."""
    rng = RngStreams(seed)
    profiles = []
    for t in range(num_trees):
        tree = build_random_ldt(
            registry_size, max_capacity, rng, unit_cost=unit_cost, stream=f"fig8b.{t}"
        )
        members = [n for k, n in tree.nodes.items() if k != tree.root_key]
        members.sort(key=lambda n: (-n.member.capacity, n.member.key))
        profiles.append([(n.member.capacity, n.assigned) for n in members])
    return profiles


def run_fig8b(
    num_trees: int = 15,
    registry_size: int = 15,
    max_capacity: int = 15,
    seed: int = 8,
) -> ResultTable:
    """Fig 8(b): per-node capacity and assignment for sampled trees.

    One row per (tree, node-rank); the benches verify the paper's two
    observations — forwarding subsets go to the high-capacity nodes, and
    head partitions are nearly equal in size.
    """
    table = ResultTable(
        title="Figure 8(b) — heterogeneity and load balance in LDTs",
        columns=["tree", "node rank", "capacity", "nodes assigned"],
        notes=[f"{num_trees} sampled trees, registry size {registry_size}, MAX={max_capacity}"],
    )
    profiles = sample_tree_profiles(num_trees, registry_size, max_capacity, seed)
    for t, profile in enumerate(profiles, start=1):
        for rank, (cap, assigned) in enumerate(profile, start=1):
            table.add_row(
                **{"tree": t, "node rank": rank, "capacity": cap, "nodes assigned": assigned}
            )
    return table


def run_fig8_workload(
    registry_size: int = 15,
    max_capacity: int = 8,
    used_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
    trees: int = 200,
    seed: int = 8,
) -> ResultTable:
    """§4.2's workload observation, swept: "When each node in a tree
    encounters heavy workload, the tree depth becomes lengthened."

    Capacities stay fixed while every node's ``Used`` consumes a growing
    fraction of its capacity; the effective branching ⌊Avail/v⌋ shrinks
    and the trees deepen toward chains.
    """
    table = ResultTable(
        title="Figure 8 (workload sweep) — LDT depth vs node load",
        columns=["used (%)", "mean depth", "max depth", "mean branching"],
        notes=[
            f"registry {registry_size}, capacities U(1..{max_capacity}), "
            f"{trees} trees per point",
        ],
    )
    rng = RngStreams(seed)
    for frac in used_fractions:
        depths: List[int] = []
        branchings: List[float] = []
        for t in range(trees):
            tree = build_random_ldt(
                registry_size,
                max_capacity,
                rng,
                used_fraction=frac,
                stream=f"fig8w.{frac}",
            )
            depths.append(tree.depth)
            interior = [n for n in tree.nodes.values() if n.children]
            if interior:
                branchings.append(
                    float(np.mean([len(n.children) for n in interior]))
                )
        table.add_row(
            **{
                "used (%)": round(100 * frac, 1),
                "mean depth": float(np.mean(depths)),
                "max depth": float(np.max(depths)),
                "mean branching": float(np.mean(branchings)),
            }
        )
    return table

"""Extension experiment: hotspot load under Zipf-skewed discovery traffic.

"Rendezvous Regions"-style location services concentrate load on the
nodes responsible for popular keys; Bristle's §2.3.2 discovery has the
same exposure — every lookup for a mobile key detours through the
stationary record holder closest to that key.  This experiment drives a
Zipf-popular discovery workload (rank-``r`` mobile key drawn with
probability ∝ ``1/(r+1)^s``) against every stationary-layer substrate
and reports how unevenly the resolution load lands: max/mean hotspot
ratio, Gini coefficient, the share absorbed by the single hottest
holder, and the discovery-hop tail (p50/p99 from a
:class:`~repro.sim.metrics.QuantileSketch`, the O(1)-memory estimator).

Each overlay is one independent :func:`~repro.experiments.parallel.sweep_map`
point with its own derived seed, so the sweep parallelises and merges its
telemetry (including the per-node ledger) exactly like the other drivers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..net.underlay import build_underlay, shared_underlay_cache
from ..overlay.factory import OVERLAY_NAMES
from ..sim.metrics import QuantileSketch
from ..sim.nodestats import imbalance_stats
from ..sim.rng import derive_seed
from .common import (
    ResultTable,
    driver_profiler,
    maybe_add_nodeload_footer,
    maybe_add_phase_footer,
)
from .parallel import active_sweep, derive_point_seeds, sweep_map

__all__ = ["HotspotParams", "run_hotspot_load"]


@dataclasses.dataclass(frozen=True)
class HotspotParams:
    """Sweep configuration for the hotspot-load experiment."""

    num_stationary: int = 192
    num_mobile: int = 96
    lookups: int = 1200
    zipf_s: float = 1.1
    router_count: int = 250
    seed: int = 47

    @classmethod
    def quick_scale(cls) -> "HotspotParams":
        """Reduced sizing for CI smoke runs."""
        return cls(num_stationary=64, num_mobile=32, lookups=300, router_count=120)


@dataclasses.dataclass(frozen=True)
class _HotspotPoint:
    """One stationary-overlay cell of the hotspot sweep."""

    overlay: str
    num_stationary: int
    num_mobile: int
    lookups: int
    zipf_s: float
    router_count: int
    underlay_seed: int
    seed: int
    reuse_underlay: bool


def _hotspot_point(pt: _HotspotPoint) -> Dict[str, float]:
    """Module-level (picklable) per-overlay worker for :func:`sweep_map`."""
    prof = driver_profiler()
    bundle = (
        shared_underlay_cache().get(pt.underlay_seed, pt.router_count)
        if pt.reuse_underlay
        else build_underlay(pt.underlay_seed, pt.router_count)
    )
    cfg = BristleConfig(
        seed=pt.seed, naming="scrambled", stationary_layer_overlay=pt.overlay
    )
    with prof.phase("build"):
        net = BristleNetwork(
            cfg, pt.num_stationary, pt.num_mobile, underlay=bundle
        )
        for mk in net.mobile_keys:
            net.move(mk, advertise=False)
    # Zipf-ranked popularity over the mobile population: rank r drawn with
    # probability ∝ 1/(r+1)^s, sampled by inverse CDF so one uniform draw
    # per lookup fully determines the target (deterministic given the
    # seeded stream, whatever process runs this point).
    ranks = np.arange(1, pt.num_mobile + 1, dtype=np.float64)
    weights = ranks ** (-pt.zipf_s)
    cdf = np.cumsum(weights) / weights.sum()
    gen = net.rng.stream("hotspot.lookups")
    srcs = gen.integers(pt.num_stationary, size=pt.lookups)
    targets = np.searchsorted(cdf, gen.random(pt.lookups), side="right")
    hop_sketch = QuantileSketch()
    with prof.phase("measure"):
        for si, ti in zip(srcs.tolist(), targets.tolist()):
            d = net.discover(net.stationary_keys[int(si)], net.mobile_keys[int(ti)])
            assert d.found
            hop_sketch.observe(d.hop_count)
    # Per-overlay hotspot statistics over the *whole* stationary
    # population (zero-filled), from this network's private detour tally.
    loads = np.zeros(pt.num_stationary, dtype=np.float64)
    index = {k: i for i, k in enumerate(net.stationary_keys)}
    for holder, count in net.resolution_load.items():
        loads[index[holder]] = count
    stats = imbalance_stats(loads)
    return {
        "detours": stats["total"],
        "max_mean": stats["max_mean"],
        "gini": stats["gini"],
        "top_share": (loads.max() / stats["total"]) if stats["total"] else 0.0,
        "hops_p50": hop_sketch.quantile(50),
        "hops_p99": hop_sketch.quantile(99),
    }


def run_hotspot_load(params: Optional[HotspotParams] = None) -> ResultTable:
    """Hotspot load vs stationary-overlay choice under Zipf lookups."""
    p = params if params is not None else HotspotParams()
    table = ResultTable(
        title="Extension — hotspot load under Zipf-skewed discovery",
        columns=[
            "overlay",
            "detours",
            "max/mean",
            "gini",
            "top-1 share (%)",
            "hops p50",
            "hops p99",
        ],
        notes=[
            f"{p.num_stationary}+{p.num_mobile} nodes, {p.lookups} Zipf "
            f"(s={p.zipf_s}) discoveries per substrate; load = resolution "
            "detours served per stationary holder; hop tail via streaming "
            "quantile sketch",
        ],
    )
    sweep = active_sweep()
    underlay_seed = derive_seed(p.seed, "underlay")
    seeds = derive_point_seeds(p.seed, list(OVERLAY_NAMES))
    if sweep.reuse_underlay:
        shared_underlay_cache().get(underlay_seed, p.router_count)
    points = [
        _HotspotPoint(
            overlay=overlay,
            num_stationary=p.num_stationary,
            num_mobile=p.num_mobile,
            lookups=p.lookups,
            zipf_s=p.zipf_s,
            router_count=p.router_count,
            underlay_seed=underlay_seed,
            seed=seeds[(overlay, "")],
            reuse_underlay=sweep.reuse_underlay,
        )
        for overlay in OVERLAY_NAMES
    ]
    results = sweep_map(_hotspot_point, points)
    for overlay, r in zip(OVERLAY_NAMES, results):
        table.add_row(
            **{
                "overlay": overlay,
                "detours": int(r["detours"]),
                "max/mean": r["max_mean"],
                "gini": r["gini"],
                "top-1 share (%)": 100.0 * r["top_share"],
                "hops p50": r["hops_p50"],
                "hops p99": r["hops_p99"],
            }
        )
    maybe_add_phase_footer(table, ("build", "measure"))
    maybe_add_nodeload_footer(table, ("detour", "registrations"))
    return table

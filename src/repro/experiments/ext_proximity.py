"""Extension experiment: §3 optimisation (1) — proximity-aware next hops.

"Reduce the routing overhead of each hop by exploiting the network
proximity ... forwarding the route to a neighboring node whose hash key
is closer to the destination and the cost of the network link to the
neighbor is minimal.  Although this optimization still needs O(log N)
hops ... each hop can greedily follow the network link with the minimal
cost."

The experiment builds a Tornado overlay twice over the same membership —
once proximity-blind, once with network-distance slot selection — and
routes the same sample both ways with both next-hop rules, reporting
hop counts (should stay ~equal: still O(log N)) and total path cost
(should drop: each hop follows a cheaper link).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..net.shortest_path import PathOracle
from ..net.transit_stub import generate_transit_stub, params_for_router_count
from ..net.placement import Placement
from ..overlay.keyspace import KeySpace
from ..overlay.tornado import TornadoOverlay
from ..sim.rng import RngStreams
from .common import ResultTable

__all__ = ["ProximityRoutingParams", "run_proximity_routing"]


@dataclasses.dataclass(frozen=True)
class ProximityRoutingParams:
    num_nodes: int = 300
    router_count: int = 400
    routes: int = 400
    seed: int = 39


def run_proximity_routing(
    params: Optional[ProximityRoutingParams] = None,
) -> ResultTable:
    """Hop count and path cost: proximity-blind vs proximity-aware."""
    p = params if params is not None else ProximityRoutingParams()
    rng = RngStreams(p.seed)
    space = KeySpace()
    topo = generate_transit_stub(params_for_router_count(p.router_count), rng)
    oracle = PathOracle(topo.graph)
    placement = Placement(topo, rng)
    keys = [int(k) for k in space.random_keys(rng, "keys", p.num_nodes)]
    for k in keys:
        placement.attach(k)
    # Pre-warm with the attachment routers — the only sources any hop of
    # this sweep can query — via one batched multi-source Dijkstra.
    oracle.prewarm(placement.router_of(k) for k in keys)

    def distance(a: int, b: int) -> float:
        if a == b:
            return 0.0
        return oracle.distance(placement.router_of(a), placement.router_of(b))

    def hop_costs(hops) -> float:
        """Total underlay cost of a hop sequence, batched per route."""
        pairs = [
            (placement.router_of(a), placement.router_of(b))
            for a, b in zip(hops, hops[1:])
        ]
        return float(oracle.route_costs(pairs).sum())

    blind = TornadoOverlay(space)
    blind.build(keys)
    aware = TornadoOverlay(space, proximity=distance)
    aware.build(keys)

    gen = rng.stream("routes")
    variants = {
        "blind": [],
        "aware": [],
        "aware+greedy-link": [],
    }
    hop_counts = {name: [] for name in variants}
    for _ in range(p.routes):
        s = keys[int(gen.integers(p.num_nodes))]
        t = int(gen.integers(space.size))
        # Proximity-blind table, standard rule.
        r = blind.route(s, t)
        variants["blind"].append(hop_costs(r.hops))
        hop_counts["blind"].append(r.hop_count)
        # Proximity-aware table, standard rule.
        r = aware.route(s, t)
        variants["aware"].append(hop_costs(r.hops))
        hop_counts["aware"].append(r.hop_count)
        # Proximity-aware table + §3's greedy minimal-cost link per hop.
        owner = aware.owner_of(t)
        greedy_hops = [s]
        current = s
        while current != owner:
            nxt = aware.next_hop_proximal(current, t)
            if nxt is None:
                break
            greedy_hops.append(nxt)
            current = nxt
        variants["aware+greedy-link"].append(hop_costs(greedy_hops))
        hop_counts["aware+greedy-link"].append(len(greedy_hops) - 1)

    table = ResultTable(
        title="Extension — §3 optimisation (1): proximity-aware routing",
        columns=["variant", "mean hops", "mean path cost", "cost vs blind (x)"],
        notes=[
            f"{p.num_nodes}-node Tornado overlay on ~{p.router_count} routers, "
            f"{p.routes} routes; cost = summed shortest-path weights",
        ],
    )
    base = float(np.mean(variants["blind"]))
    for name in ("blind", "aware", "aware+greedy-link"):
        mean_cost = float(np.mean(variants[name]))
        table.add_row(
            **{
                "variant": name,
                "mean hops": float(np.mean(hop_counts[name])),
                "mean path cost": mean_cost,
                "cost vs blind (x)": mean_cost / base if base else float("nan"),
            }
        )
    table.add_cache_footer(oracle.cache_stats())
    return table

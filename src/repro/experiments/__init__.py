"""Experiment harnesses — one module per table/figure of the paper.

Each ``run_*`` function returns a :class:`~repro.experiments.common.ResultTable`
that the benchmarks print and the tests assert against.
"""

from .audit import CLAIMS, Claim, ClaimResult, render_audit, run_audit
from .bounds import run_eq1_check, run_hop_scaling, run_ldt_depth_scaling
from .common import ResultTable, format_float
from .io import table_from_json, table_to_csv, table_to_json, write_table
from .plots import ascii_bars, ascii_chart
from .ext_advertisement import AdvertisementLatencyParams, run_advertisement_latency
from .ext_batch import BatchUpdateParams, run_batch_update
from .ext_churn import ChurnOverheadParams, run_churn_overhead
from .ext_data import DataAvailabilityParams, run_data_availability
from .ext_naming import BandPlacementParams, run_band_placement
from .ext_overlay_choice import (
    Ipv6Params,
    OverlayChoiceParams,
    run_ipv6_route_optimisation,
    run_overlay_choice,
)
from .ext_proximity import ProximityRoutingParams, run_proximity_routing
from .ext_scaling import (
    ColumnarScaleParams,
    ScalingParams,
    TrafficMixScaleParams,
    run_columnar_scale,
    run_scaling,
    run_traffic_mix,
)
from .ext_binding import (
    BindingCostParams,
    StalenessParams,
    run_binding_cost,
    run_staleness_sweep,
)
from .ext_reliability import (
    AdaptiveRoutingParams,
    ReliabilityParams,
    run_adaptive_routing_reliability,
    run_replication_reliability,
)
from .fig3_responsibility import run_fig3, run_fig3_empirical, run_fig3_tree_sizes
from .fig7_naming import Fig7Params, measure_naming_scheme, run_fig7
from .fig8_ldt import (
    Fig8Params,
    build_random_ldt,
    run_fig8a,
    run_fig8b,
    run_fig8_workload,
    sample_tree_profiles,
)
from .fig9_locality import Fig9Params, measure_ldt_costs, run_fig9
from .table1_comparison import Table1Params, run_table1

__all__ = [
    "CLAIMS",
    "Claim",
    "ClaimResult",
    "render_audit",
    "run_audit",
    "run_eq1_check",
    "run_hop_scaling",
    "run_ldt_depth_scaling",
    "ResultTable",
    "format_float",
    "table_from_json",
    "table_to_csv",
    "table_to_json",
    "write_table",
    "ascii_bars",
    "ascii_chart",
    "AdvertisementLatencyParams",
    "run_advertisement_latency",
    "BatchUpdateParams",
    "run_batch_update",
    "ChurnOverheadParams",
    "run_churn_overhead",
    "DataAvailabilityParams",
    "run_data_availability",
    "ProximityRoutingParams",
    "run_proximity_routing",
    "ColumnarScaleParams",
    "ScalingParams",
    "TrafficMixScaleParams",
    "run_columnar_scale",
    "run_scaling",
    "run_traffic_mix",
    "BandPlacementParams",
    "run_band_placement",
    "Ipv6Params",
    "OverlayChoiceParams",
    "run_ipv6_route_optimisation",
    "run_overlay_choice",
    "BindingCostParams",
    "StalenessParams",
    "run_binding_cost",
    "run_staleness_sweep",
    "ReliabilityParams",
    "AdaptiveRoutingParams",
    "run_adaptive_routing_reliability",
    "run_replication_reliability",
    "run_fig3",
    "run_fig3_empirical",
    "run_fig3_tree_sizes",
    "Fig7Params",
    "measure_naming_scheme",
    "run_fig7",
    "Fig8Params",
    "build_random_ldt",
    "run_fig8a",
    "run_fig8b",
    "run_fig8_workload",
    "sample_tree_profiles",
    "Fig9Params",
    "measure_ldt_costs",
    "run_fig9",
    "Table1Params",
    "run_table1",
]

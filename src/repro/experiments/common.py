"""Shared experiment infrastructure: result tables and text rendering.

Every experiment returns a :class:`ResultTable` — named columns plus rows —
which the benchmark harness prints in the same shape as the paper's
figures/tables, and which tests assert against.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping

__all__ = ["ResultTable", "format_float"]


def format_float(x: Any, precision: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(x, float):
        if x != x:  # NaN
            return "nan"
        if x == int(x) and abs(x) < 1e15:
            return str(int(x))
        return f"{x:.{precision}f}"
    return str(x)


@dataclasses.dataclass
class ResultTable:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        The table/figure it reproduces, e.g. ``"Figure 7(a)"``.
    columns:
        Column names, in display order.
    rows:
        One dict per row; missing cells render as ``""``.
    notes:
        Free-form caption lines (setup parameters, caveats).
    footers:
        Free-form lines rendered *after* the body — run observability
        (oracle cache counters, timings) as opposed to setup captions.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    notes: List[str] = dataclasses.field(default_factory=list)
    footers: List[str] = dataclasses.field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        """Append a row; unknown column names are rejected."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; declared {self.columns}")
        self.rows.append(dict(cells))

    def add_footer(self, line: str) -> None:
        """Append one observability line below the table body."""
        self.footers.append(line)

    def add_cache_footer(
        self, stats: Mapping[str, float], label: str = "oracle cache"
    ) -> None:
        """Append a :meth:`PathOracle.cache_stats` snapshot as a footer.

        Renders hits / misses (with the hit rate), evictions, and the
        number of Dijkstra runs with how many batched calls computed them.
        """
        hit_rate = stats.get("hit_rate", float("nan"))
        rate = "" if hit_rate != hit_rate else f" ({100.0 * hit_rate:.1f}% hit)"
        self.footers.append(
            f"{label}: {int(stats['hits'])} hits / {int(stats['misses'])} misses"
            f"{rate}, {int(stats['evictions'])} evictions, "
            f"{int(stats['dijkstra_runs'])} Dijkstra runs "
            f"({int(stats['batch_calls'])} batched calls)"
        )

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become ``None``)."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r}")
        return [r.get(name) for r in self.rows]

    def row_where(self, column: str, value: Any) -> Dict[str, Any]:
        """The first row whose ``column`` equals ``value``."""
        for r in self.rows:
            if r.get(column) == value:
                return r
        raise KeyError(f"no row with {column}={value!r}")

    def render(self, precision: int = 3) -> str:
        """Fixed-width text rendering (what the benches print)."""
        header = [str(c) for c in self.columns]
        body = [
            [format_float(r.get(c, ""), precision) for c in self.columns]
            for r in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.extend("   " + note for note in self.notes)
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        lines.extend("   " + footer for footer in self.footers)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

"""Shared experiment infrastructure: result tables, text rendering, and
the drivers' hooks into the active telemetry session.

Every experiment returns a :class:`ResultTable` — named columns plus rows —
which the benchmark harness prints in the same shape as the paper's
figures/tables, and which tests assert against.

Telemetry rides along ambiently: drivers call :func:`driver_profiler` to
time their build/warmup/route phases (a no-op profiler outside a session)
and :func:`maybe_add_phase_footer` to report those wall-times under the
table when the CLI ran with ``--profile`` — no experiment signature ever
grows a telemetry parameter.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..sim.nodestats import KINDS
from ..sim.profile import PhaseProfiler
from ..sim.telemetry import active_telemetry

__all__ = [
    "ResultTable",
    "format_float",
    "driver_profiler",
    "maybe_add_phase_footer",
    "maybe_add_nodeload_footer",
]

#: Shared disabled profiler handed to drivers outside a telemetry session
#: (``phase`` blocks cost one attribute check).
_NULL_PROFILER = PhaseProfiler(enabled=False)


def driver_profiler() -> PhaseProfiler:
    """The active session's phase profiler, or a shared disabled one.

    Drivers wrap their stages unconditionally::

        prof = driver_profiler()
        with prof.phase("build"):
            net = BristleNetwork(...)
    """
    tel = active_telemetry()
    return tel.profiler if tel is not None else _NULL_PROFILER


def maybe_add_phase_footer(
    table: "ResultTable", phases: Optional[Iterable[str]] = None
) -> None:
    """Append the session's phase wall-times as a table footer.

    Only acts when a telemetry session is active *and* asked for footers
    (the CLI's ``--profile``); silent otherwise so drivers call it
    unconditionally.
    """
    tel = active_telemetry()
    if tel is not None and tel.show_phase_footers:
        table.add_footer(tel.profiler.footer_line(phases))


def maybe_add_nodeload_footer(
    table: "ResultTable", kinds: Optional[Iterable[str]] = None
) -> None:
    """Append the session's per-node load imbalance as a table footer.

    One line per requested load kind (default: every kind with recorded
    load), e.g. ``node load [detour]: 421 over 64 nodes, max/mean 3.2x,
    gini 0.41, top [0x1f=87, ...]``.  Gated exactly like
    :func:`maybe_add_phase_footer` (the CLI's ``--profile``), so default
    result tables stay byte-identical with the ledger always on.
    """
    tel = active_telemetry()
    if tel is None or not tel.show_phase_footers:
        return
    ledger = tel.nodeload
    for kind in kinds if kinds is not None else KINDS:
        stats = ledger.imbalance(kind)
        if stats["total"] <= 0:
            continue
        top = ", ".join(
            f"{key:#x}={count}" for key, count in ledger.hotspots(kind, 3)
        )
        table.add_footer(
            f"node load [{kind}]: {int(stats['total'])} over "
            f"{int(stats['nodes'])} nodes, max/mean {stats['max_mean']:.1f}x, "
            f"gini {stats['gini']:.2f}, top [{top}]"
        )


def format_float(x: Any, precision: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(x, float):
        if x != x:  # NaN
            return "nan"
        if x == int(x) and abs(x) < 1e15:
            return str(int(x))
        return f"{x:.{precision}f}"
    return str(x)


@dataclasses.dataclass
class ResultTable:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        The table/figure it reproduces, e.g. ``"Figure 7(a)"``.
    columns:
        Column names, in display order.
    rows:
        One dict per row; missing cells render as ``""``.
    notes:
        Free-form caption lines (setup parameters, caveats).
    footers:
        Free-form lines rendered *after* the body — run observability
        (oracle cache counters, timings) as opposed to setup captions.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    notes: List[str] = dataclasses.field(default_factory=list)
    footers: List[str] = dataclasses.field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        """Append a row; unknown column names are rejected."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; declared {self.columns}")
        self.rows.append(dict(cells))

    def add_footer(self, line: str) -> None:
        """Append one observability line below the table body."""
        self.footers.append(line)

    def add_cache_footer(
        self, stats: Mapping[str, float], label: str = "oracle cache"
    ) -> None:
        """Append a :meth:`PathOracle.cache_stats` snapshot as a footer.

        Renders hits / misses (with the hit rate), evictions, and the
        number of Dijkstra runs with how many batched calls computed them.
        """
        hit_rate = stats.get("hit_rate", float("nan"))
        rate = "" if hit_rate != hit_rate else f" ({100.0 * hit_rate:.1f}% hit)"
        self.footers.append(
            f"{label}: {int(stats['hits'])} hits / {int(stats['misses'])} misses"
            f"{rate}, {int(stats['evictions'])} evictions, "
            f"{int(stats['dijkstra_runs'])} Dijkstra runs "
            f"({int(stats['batch_calls'])} batched calls)"
        )

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become ``None``)."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r}")
        return [r.get(name) for r in self.rows]

    def row_where(self, column: str, value: Any) -> Dict[str, Any]:
        """The first row whose ``column`` equals ``value``."""
        for r in self.rows:
            if r.get(column) == value:
                return r
        raise KeyError(f"no row with {column}={value!r}")

    def render(self, precision: int = 3) -> str:
        """Fixed-width text rendering (what the benches print)."""
        header = [str(c) for c in self.columns]
        body = [
            [format_float(r.get(c, ""), precision) for c in self.columns]
            for r in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.extend("   " + note for note in self.notes)
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        lines.extend("   " + footer for footer in self.footers)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

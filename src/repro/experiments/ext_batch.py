"""Extension experiment: batched multi-resource location updates.

ROADMAP item 3: a mobile host carrying K resource keys changes attachment
point once, but the per-key update path (§2.3.1 run once per resource)
charges K publishes and K dissemination waves — O(K · log N) messages.
The batched path (:meth:`BristleNetwork.move_many`) groups the K records
by responsible stationary holder (one message per *distinct* holder) and
coalesces the K dissemination waves into one multicast over the union of
the registries, for O(K + log N) total.

The registration model mirrors the co-hosting that motivates batching: a
host-level audience of ``⌈log₂ N⌉`` nodes is interested in *every*
resource the host carries (they follow the host), and each resource also
has ``private_registrants`` interested in it alone.  The per-key baseline
re-visits the shared audience K times; the batched wave visits every
registrant exactly once.

Each row sweeps one batch size K and reports the analytic per-key cost,
the measured batched cost, their ratio, and the batched cost normalised
by ``K + log₂ N`` (bounded by a constant when the claimed complexity
holds — the CI gate asserts both numbers).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from .common import ResultTable, driver_profiler, maybe_add_phase_footer

__all__ = ["BatchUpdateParams", "run_batch_update"]


@dataclasses.dataclass(frozen=True)
class BatchUpdateParams:
    num_stationary: int = 512
    batch_sizes: Sequence[int] = (1, 10, 100, 1000)
    router_count: int = 200
    #: per-resource registrants interested in just that resource (the
    #: host-level audience of ⌈log₂ N⌉ is added on top and shared).
    private_registrants: int = 1
    seed: int = 51


def setup_cohost_registrations(
    net: BristleNetwork,
    group: Sequence[int],
    *,
    private_registrants: int = 1,
) -> int:
    """Install the co-hosted registration model on ``group``.

    A shared audience of ``⌈log₂ N⌉`` stationary nodes registers to every
    key of the group; each key additionally receives
    ``private_registrants`` registrants of its own, drawn round-robin from
    the remaining stationary population (capped by its size).  Returns the
    number of distinct registrants installed.
    """
    shared_size = net.registry_size_for(0)
    pool = list(net.stationary_keys)
    shared = net.rng.sample("batch.shared", pool, min(shared_size, len(pool)))
    for s in shared:
        for mk in group:
            net.registrations.register(s, mk, now=net.now)
    private_pool = [k for k in pool if k not in set(shared)]
    used = set(shared)
    if private_pool and private_registrants > 0:
        cursor = 0
        for mk in group:
            for _ in range(private_registrants):
                p = private_pool[cursor % len(private_pool)]
                cursor += 1
                net.registrations.register(p, mk, now=net.now)
                used.add(p)
    return len(used)


def run_batch_update(params: Optional[BatchUpdateParams] = None) -> ResultTable:
    """Per-key vs batched update cost across batch sizes K."""
    p = params if params is not None else BatchUpdateParams()
    max_k = max(p.batch_sizes)
    table = ResultTable(
        title="Extension — batched multi-resource location updates",
        columns=[
            "K",
            "per-key msgs",
            "batched msgs",
            "reduction",
            "distinct holders",
            "union registrants",
            "batched/(K+log2 N)",
        ],
        notes=[
            f"{p.num_stationary} stationary nodes, {max_k} co-hosted mobile "
            f"keys; shared audience ⌈log₂ N⌉ plus {p.private_registrants} "
            "private registrant(s) per key; per-key cost is the analytic "
            "sum of each key's own publish fan-out and dissemination tree",
        ],
    )
    prof = driver_profiler()
    with prof.phase("build"):
        cfg = BristleConfig(seed=p.seed, naming="scrambled")
        net = BristleNetwork(
            cfg,
            num_stationary=p.num_stationary,
            num_mobile=max_k,
            router_count=p.router_count,
        )
    log2n = math.log2(net.num_nodes)
    with prof.phase("register"):
        setup_cohost_registrations(
            net, net.mobile_keys, private_registrants=p.private_registrants
        )
    with prof.phase("sweep"):
        for k in p.batch_sizes:
            group = net.mobile_keys[:k]
            # Per-key baseline at the same instant: every key pays its own
            # holder fan-out plus its own Fig-4 tree.
            holders_map = net.directory.holders_for_many(group)
            per_key = sum(
                len(holders_map[mk]) + net.build_ldt_for(mk).message_count
                for mk in group
            )
            report = net.move_many(group)
            batched = report.total_messages
            union = report.ldt.num_members if report.ldt is not None else 0
            table.add_row(
                **{
                    "K": k,
                    "per-key msgs": per_key,
                    "batched msgs": batched,
                    "reduction": per_key / batched if batched else float("nan"),
                    "distinct holders": report.publish_messages,
                    "union registrants": union,
                    "batched/(K+log2 N)": batched / (k + log2n),
                }
            )
    maybe_add_phase_footer(table)
    return table

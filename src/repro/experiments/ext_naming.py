"""Extension experiment: where should the stationary band sit? (§3)

The paper fixes only the band *width* (``U − L = ∇·ρ``) and leaves its
*position* open ("L and U are the pre-defined system parameters").  The
position matters: greedy ring routing wraps past key 0, so a band pushed
against the ring origin (L ≈ 1, all mobile keys above U) exposes a
different wrap geometry than a centred band (mobile keys split across
both ends).  This ablation measures Figure-7-style stationary→stationary
routes for both placements.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.mobility import shuffle_all_mobile
from ..core.naming import ClusteredNaming
from ..core.routing import route_with_resolution
from ..overlay.keyspace import KeySpace
from ..workloads.routes import sample_stationary_pairs
from .common import ResultTable

__all__ = ["BandPlacementParams", "run_band_placement"]


@dataclasses.dataclass(frozen=True)
class BandPlacementParams:
    num_stationary: int = 250
    fractions: Sequence[float] = (0.3, 0.5, 0.7)
    routes: int = 400
    router_count: int = 300
    seed: int = 41


def run_band_placement(params: Optional[BandPlacementParams] = None) -> ResultTable:
    """Centred vs origin-anchored stationary bands under clustered naming."""
    p = params if params is not None else BandPlacementParams()
    table = ResultTable(
        title="Extension — clustered-band placement ablation",
        columns=[
            "M/N (%)",
            "centred hops",
            "origin hops",
            "centred res",
            "origin res",
        ],
        notes=[
            f"{p.num_stationary} stationary nodes, {p.routes} routes per "
            "point; 'centred' puts the band mid-ring (mobile keys at both "
            "ends), 'origin' anchors L ≈ 1 (all mobile keys above U)",
        ],
    )
    for frac in p.fractions:
        num_mobile = int(round(p.num_stationary * frac / (1 - frac)))
        results = {}
        for placement in ("centred", "origin"):
            cfg = BristleConfig(seed=p.seed, naming="clustered", p_stale=1.0)
            space = KeySpace(bits=cfg.key_bits, digit_bits=cfg.digit_bits)
            nabla = p.num_stationary / (p.num_stationary + num_mobile)
            low = None if placement == "centred" else 1
            scheme = ClusteredNaming(space, nabla=nabla, low=low)
            net = BristleNetwork(
                cfg,
                p.num_stationary,
                num_mobile,
                router_count=p.router_count,
                naming_scheme=scheme,
            )
            shuffle_all_mobile(net)
            pairs = sample_stationary_pairs(net.stationary_keys, p.routes, net.rng)
            hops, res = [], []
            for s, t in pairs:
                trace = route_with_resolution(net, s, t)
                hops.append(trace.app_hops)
                res.append(trace.resolutions)
            results[placement] = (float(np.mean(hops)), float(np.mean(res)))
        table.add_row(
            **{
                "M/N (%)": round(100 * frac, 1),
                "centred hops": results["centred"][0],
                "origin hops": results["origin"][0],
                "centred res": results["centred"][1],
                "origin res": results["origin"][1],
            }
        )
    return table

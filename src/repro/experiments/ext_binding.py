"""Extension experiment: early vs late binding, and the cache-staleness
sweep (§2.3.2).

Two questions the paper raises but does not quantify:

* **p_stale sweep** — how does route cost degrade as cached mobile
  addresses go stale?  ``p_stale = 0`` is the ideal early-binding steady
  state (every cache warm), ``p_stale = 1`` the cold-cache worst case of
  Figure 7.  The curve between them is the payoff of proactive LDT
  advertisement.
* **binding policy cost** — message budget of early binding (periodic
  advertisement + re-registration for everyone) vs late binding (one
  discovery per cache miss), across lookup rates: early binding wins
  when state is consulted often, late when rarely.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.mobility import shuffle_all_mobile
from ..core.routing import route_with_resolution
from ..core.statebinding import EarlyBinding, LateBinding
from ..sim.engine import Engine
from ..workloads.routes import sample_stationary_pairs
from .common import ResultTable

__all__ = [
    "StalenessParams",
    "run_staleness_sweep",
    "BindingCostParams",
    "run_binding_cost",
]


@dataclasses.dataclass(frozen=True)
class StalenessParams:
    num_stationary: int = 200
    num_mobile: int = 200
    routes: int = 600
    p_stale_values: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)
    router_count: int = 250
    seed: int = 27


def run_staleness_sweep(params: Optional[StalenessParams] = None) -> ResultTable:
    """Route hops/cost as a function of cache staleness probability."""
    p = params if params is not None else StalenessParams()
    cfg = BristleConfig(seed=p.seed, naming="scrambled")
    net = BristleNetwork(
        cfg, p.num_stationary, p.num_mobile, router_count=p.router_count
    )
    shuffle_all_mobile(net)
    pairs = sample_stationary_pairs(net.stationary_keys, p.routes, net.rng)
    table = ResultTable(
        title="Extension — route cost vs cache staleness (early-binding payoff)",
        columns=["p_stale", "mean hops", "mean cost", "mean resolutions", "cost vs warm (x)"],
        notes=[
            f"{p.num_stationary}+{p.num_mobile} nodes, {p.routes} "
            "stationary→stationary routes per point",
        ],
    )
    warm_cost = None
    for p_stale in p.p_stale_values:
        hops, costs, res = [], [], []
        for i, (s, t) in enumerate(pairs):
            trace = route_with_resolution(
                net, s, t, p_stale=p_stale, stale_stream=f"stale.{p_stale}"
            )
            hops.append(trace.app_hops)
            costs.append(trace.path_cost)
            res.append(trace.resolutions)
        mean_cost = float(np.mean(costs))
        if warm_cost is None:
            warm_cost = mean_cost
        table.add_row(
            **{
                "p_stale": p_stale,
                "mean hops": float(np.mean(hops)),
                "mean cost": mean_cost,
                "mean resolutions": float(np.mean(res)),
                "cost vs warm (x)": mean_cost / warm_cost if warm_cost else float("nan"),
            }
        )
    return table


@dataclasses.dataclass(frozen=True)
class BindingCostParams:
    num_stationary: int = 60
    num_mobile: int = 40
    registry_size: int = 6
    horizon: float = 100.0
    #: total lookups issued over the horizon, per sweep point
    lookup_counts: Sequence[int] = (50, 500, 2000)
    #: per-mobile-node moves per unit time (staleness driver)
    move_rate: float = 0.05
    seed: int = 28


def run_binding_cost(params: Optional[BindingCostParams] = None) -> ResultTable:
    """Early vs late binding under mobility: message budget *and*
    address correctness.

    Mobile nodes move throughout the horizon.  Early binding pays a
    workload-independent refresh budget but keeps cached addresses at
    most ``refresh_period`` old; late binding pays one discovery per
    lease miss but serves addresses up to ``state_ttl`` stale between
    misses.  The table reports both costs and the fraction of lookups
    that returned the node's *current* address — the two-sided trade-off
    §2.3.2's dual design acknowledges.
    """
    p = params if params is not None else BindingCostParams()
    table = ResultTable(
        title="Extension — early vs late binding: messages and correctness",
        columns=[
            "lookups",
            "early msgs",
            "late msgs",
            "early current-addr rate",
            "late current-addr rate",
            "cheaper policy",
        ],
        notes=[
            f"{p.num_stationary}+{p.num_mobile} nodes, registry "
            f"{p.registry_size}, horizon {p.horizon}, per-node move rate "
            f"{p.move_rate}",
        ],
    )
    for n_lookups in p.lookup_counts:
        results = {}
        for policy_name in ("early", "late"):
            cfg = BristleConfig(
                seed=p.seed, naming="scrambled", state_ttl=30.0, refresh_period=10.0
            )
            net = BristleNetwork(
                cfg, p.num_stationary, p.num_mobile, router_count=120
            )
            net.setup_random_registrations(registry_size=p.registry_size)
            engine = Engine()
            policy = (
                EarlyBinding(net, engine)
                if policy_name == "early"
                else LateBinding(net, engine)
            )
            policy.start()
            from ..core.mobility import MobilityProcess
            from ..core.protocol import BristleProtocol

            # Early binding includes the paper's *update* operation: every
            # move is multicast down the LDT (a timed wave that refreshes
            # registrants' caches).  Late binding relies purely on
            # reactive discovery.
            # Latency scaled so a wave completes in ≪ the mean inter-move
            # gap (raw path weights are O(100) vs a horizon of O(100)).
            proto = BristleProtocol(net, engine, latency_scale=1e-3)
            # Counter registries may be shared across experiments (ambient
            # telemetry session), so measure advertisement traffic as a
            # delta from here rather than an absolute value.
            advert_base = proto.metrics.counter("messages.advertise").value
            on_move = None
            if policy_name == "early":
                on_move = lambda rep: proto.advertise(rep.key)  # noqa: E731
            mobility = MobilityProcess(
                net=net, engine=engine, rate=p.move_rate, advertise=False,
                on_move=on_move,
            )
            mobility.start()
            pairs = [
                (entry.key, mk)
                for mk in net.mobile_keys
                for entry in net.nodes[mk].registry_entries()
            ]
            # Registration replicates the state-pair (§2.3.1), so every
            # registrant starts with the mobile node's initial address.
            from ..overlay.state import StatePair as _StatePair

            for registrant, mk in pairs:
                net.nodes[registrant].state.insert(
                    _StatePair(
                        key=mk,
                        addr=net.nodes[mk].address,
                        ttl=net.config.state_ttl,
                        refreshed_at=0.0,
                    )
                )
            gen = net.rng.stream("binding.lookups")
            times = sorted(float(gen.uniform(0, p.horizon)) for _ in range(n_lookups))
            idx = gen.integers(0, len(pairs), size=n_lookups)
            current = 0
            for t, i in zip(times, idx):
                engine.run(until=t)
                net.now = engine.now
                registrant, mk = pairs[int(i)]
                policy.lookup(registrant, mk)
                cached = net.nodes[registrant].state.get(mk)
                if cached is not None and cached.addr == net.nodes[mk].address:
                    current += 1
            engine.run(until=p.horizon)
            advert_msgs = (
                proto.metrics.counter("messages.advertise").value - advert_base
            )
            results[policy_name] = {
                "messages": policy.stats.total_messages + advert_msgs,
                "current": current / n_lookups,
            }
        early = results["early"]
        late = results["late"]
        table.add_row(
            **{
                "lookups": n_lookups,
                "early msgs": early["messages"],
                "late msgs": late["messages"],
                "early current-addr rate": early["current"],
                "late current-addr rate": late["current"],
                "cheaper policy": "late" if late["messages"] < early["messages"] else "early",
            }
        )
    return table

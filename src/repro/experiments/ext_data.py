"""Extension experiment: stored-data availability under mobility.

The introduction's motivation for Bristle: in a Type A system "the
mobility of nodes also incurs extra maintenance overhead and
unavailability of stored data".  This experiment stores a corpus in the
DHT, moves a growing fraction of the mobile population, and measures the
fraction of items still retrievable:

* **Bristle** — keys survive movement, so placement is untouched; every
  item stays where it was put (availability 1.0 by construction, verified
  end-to-end through routed ``get``\\ s).
* **Type A** — a mover re-joins under a fresh key; items the mover held
  are no longer at the key-space position lookups route to, and items
  whose key space shifted onto the mover's new identity are missing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..core.storage import DataStore
from ..workloads.scenarios import build_comparison_scenario
from .common import ResultTable

__all__ = ["DataAvailabilityParams", "run_data_availability"]


@dataclasses.dataclass(frozen=True)
class DataAvailabilityParams:
    num_stationary: int = 80
    num_mobile: int = 80
    num_items: int = 400
    moved_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)
    replication: int = 1  # single-copy: isolates the placement effect
    seed: int = 57


def run_data_availability(
    params: Optional[DataAvailabilityParams] = None,
) -> ResultTable:
    """Item availability vs fraction of mobile nodes that moved."""
    p = params if params is not None else DataAvailabilityParams()
    table = ResultTable(
        title="Extension — stored-data availability under mobility",
        columns=[
            "moved (%)",
            "Bristle availability",
            "Type A availability",
            "Type A misplaced (%)",
        ],
        notes=[
            f"{p.num_items} items, replication {p.replication}, "
            f"{p.num_stationary}+{p.num_mobile} nodes; Type A movers "
            "re-join under fresh keys",
        ],
    )
    for frac in p.moved_fractions:
        scenario = build_comparison_scenario(
            p.num_stationary, p.num_mobile, seed=p.seed
        )
        net = scenario.bristle
        store = DataStore(net, replication=p.replication)
        item_keys = [
            int(k)
            for k in net.space.random_keys(net.rng, "data", p.num_items, unique=False)
        ]
        for k in item_keys:
            store.put(k, f"item-{k}")

        # Type A: record who stores what at t0 (host of the owning key).
        ta = scenario.type_a
        ta_holder_host: Dict[int, int] = {
            k: ta.host_of[ta.overlay.owner_of(k)] for k in item_keys
        }

        movers = sorted(scenario.mobile_hosts)[: int(round(frac * p.num_mobile))]
        for host in movers:
            net.move(host, advertise=False)
            ta.move(host)

        # Bristle: items retrievable through actual routed gets.
        src = net.stationary_keys[0]
        bristle_ok = sum(
            1 for k in item_keys if store.get(src, k).found
        )
        # Type A: an item is reachable iff routing by its key still lands
        # on the host that stored it.
        ta_ok = 0
        for k in item_keys:
            current_owner_host = ta.host_of[ta.overlay.owner_of(k)]
            if current_owner_host == ta_holder_host[k]:
                ta_ok += 1
        table.add_row(
            **{
                "moved (%)": round(100 * frac, 1),
                "Bristle availability": bristle_ok / p.num_items,
                "Type A availability": ta_ok / p.num_items,
                "Type A misplaced (%)": 100.0 * (p.num_items - ta_ok) / p.num_items,
            }
        )
    return table

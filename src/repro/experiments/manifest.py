"""Machine-readable run manifests: what ran, with what, and where time went.

Every ``repro run`` can emit one JSON manifest describing the run as a
reproducible artifact: which experiments ran at which scale, the seed and
full config of every network built, the git revision, per-phase wall-clock
times, per-operation counters (``op.*``), oracle cache statistics, and the
complete metrics snapshot.  Downstream tooling (CI schema checks, result
archives, regression dashboards) consumes the manifest instead of parsing
printed tables.

The schema is validated by :func:`validate_manifest` — a hand-rolled
required-keys/type check so the dependency footprint stays at the
standard library.
"""

from __future__ import annotations

import math
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence

from ..sim.telemetry import Telemetry

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_SCHEMA_VERSION",
    "ManifestError",
    "build_manifest",
    "validate_manifest",
    "git_revision",
    "peak_rss_kb",
]

#: Discriminator so tooling can reject unrelated JSON files early.
MANIFEST_KIND = "repro-run-manifest"

#: Bumped on incompatible manifest layout changes.
#: v2 added the parallel-sweep fields ``jobs`` and ``underlay_reuse``.
#: v3 added the per-node ``node_load`` section (imbalance stats + top-k
#: hotspots per load kind) and ``tail_latency`` (per-histogram
#: p50/p95/p99/p999 sketch estimates).
#: v4 added ``peak_rss_kb`` — the process's peak resident set in KiB — so
#: memory regressions surface in the same pipeline as timing.
MANIFEST_SCHEMA_VERSION = 4


class ManifestError(ValueError):
    """A manifest failed schema validation; ``str()`` lists every problem."""


def git_revision() -> Optional[str]:
    """The repository's current commit hash, or ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _finite(value: float) -> Optional[float]:
    """NaN/inf → ``None`` so the manifest stays strict JSON."""
    v = float(value)
    return v if math.isfinite(v) else None


def peak_rss_kb() -> Optional[int]:
    """Peak resident-set size of this process in KiB, or ``None``.

    ``getrusage(RUSAGE_SELF).ru_maxrss`` is kibibytes on Linux but *bytes*
    on macOS; normalised here so manifests compare across platforms.
    Returns ``None`` on platforms without :mod:`resource` (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return peak


def build_manifest(
    *,
    experiments: Sequence[str],
    scale: str,
    telemetry: Telemetry,
    argv: Optional[Iterable[str]] = None,
    trace_file: Optional[str] = None,
    jobs: int = 1,
    underlay_reuse: bool = True,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest for one finished run.

    Seed and config come from the first network the session built (the
    ``networks`` list keeps every build, so multi-network sweeps lose
    nothing); counters prefixed ``op.`` surface as ``operation_counters``
    and ``oracle.*`` snapshot entries as ``cache_stats``.  All metric
    values are sanitised to finite-or-null so the output is strict JSON.

    ``jobs`` and ``underlay_reuse`` record how the sweep engine ran;
    because worker telemetry is merged back into the parent session, the
    counters and cache stats here are totals over every worker — identical
    in shape (and, per point, in value) whatever ``jobs`` was.
    """
    snapshot = {k: _finite(v) for k, v in telemetry.metrics.snapshot().items()}
    counters = {
        name: int(c.value) for name, c in telemetry.metrics.counters.items()
    }
    networks = [dict(n) for n in telemetry.networks]
    payload: Dict[str, Any] = {
        "kind": MANIFEST_KIND,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        # repro-lint: disable=BRS002 run-provenance timestamp, not simulation time
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "experiments": list(experiments),
        "scale": scale,
        "seed": networks[0]["seed"] if networks else None,
        "config": networks[0].get("config") if networks else None,
        "networks": networks,
        "network_count": telemetry.network_count,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "argv": list(argv) if argv is not None else None,
        "trace_file": trace_file,
        "jobs": int(jobs),
        "underlay_reuse": bool(underlay_reuse),
        # Peak resident set of the parent process (fork workers' arenas are
        # their own; the parent's peak is what a box must provision for).
        "peak_rss_kb": peak_rss_kb(),
        "phase_wall_times": {
            k: round(v, 6) for k, v in telemetry.profiler.wall_times().items()
        },
        "operation_counters": {
            k: v for k, v in counters.items() if k.startswith("op.")
        },
        "cache_stats": {
            k[len("oracle."):]: v
            for k, v in snapshot.items()
            if k.startswith("oracle.")
        },
        "node_load": telemetry.nodeload.manifest_section(),
        "tail_latency": telemetry.metrics.tail_latency_section(),
        "metrics": snapshot,
    }
    if extra:
        payload.update(dict(extra))
    return payload


def _type_name(value: Any) -> str:
    return type(value).__name__


def validate_manifest(payload: Any) -> Dict[str, Any]:
    """Check a manifest against the schema; returns it when valid.

    Raises :class:`ManifestError` listing *every* violation (not just the
    first) so CI logs point at all problems at once.
    """
    problems = []
    if not isinstance(payload, dict):
        raise ManifestError(f"manifest must be a JSON object, got {_type_name(payload)}")
    if payload.get("kind") != MANIFEST_KIND:
        problems.append(f"kind must be {MANIFEST_KIND!r}, got {payload.get('kind')!r}")
    version = payload.get("schema_version")
    if not isinstance(version, int) or version < 1:
        problems.append(f"schema_version must be a positive int, got {version!r}")
    exps = payload.get("experiments")
    if (
        not isinstance(exps, list)
        or not exps
        or not all(isinstance(e, str) for e in exps)
    ):
        problems.append("experiments must be a non-empty list of strings")
    if not isinstance(payload.get("scale"), str):
        problems.append("scale must be a string")
    if "seed" not in payload:
        problems.append("seed is required (int or null)")
    elif payload["seed"] is not None and not isinstance(payload["seed"], int):
        problems.append(f"seed must be int or null, got {_type_name(payload['seed'])}")
    if "config" not in payload:
        problems.append("config is required (object or null)")
    elif payload["config"] is not None and not isinstance(payload["config"], dict):
        problems.append("config must be an object or null")
    if isinstance(version, int) and version >= 2:
        jobs = payload.get("jobs")
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            problems.append(f"jobs must be a positive int, got {jobs!r}")
        if not isinstance(payload.get("underlay_reuse"), bool):
            problems.append("underlay_reuse must be a bool")
    for field in ("phase_wall_times", "operation_counters", "cache_stats", "metrics"):
        mapping = payload.get(field)
        if not isinstance(mapping, dict):
            problems.append(f"{field} must be an object")
            continue
        for k, v in mapping.items():
            if not isinstance(k, str):
                problems.append(f"{field} key {k!r} is not a string")
            if v is not None and not isinstance(v, (int, float)):
                problems.append(f"{field}[{k!r}] must be numeric or null, got {_type_name(v)}")
            if isinstance(v, float) and not math.isfinite(v):
                problems.append(f"{field}[{k!r}] must be finite or null")
    if isinstance(version, int) and version >= 3:
        problems.extend(_check_node_load(payload.get("node_load")))
        problems.extend(_check_tail_latency(payload.get("tail_latency")))
    if isinstance(version, int) and version >= 4:
        rss = payload.get("peak_rss_kb")
        if rss is not None and (
            not isinstance(rss, int) or isinstance(rss, bool) or rss < 0
        ):
            problems.append(
                f"peak_rss_kb must be a non-negative int or null, got {rss!r}"
            )
    if "created_utc" in payload and not isinstance(payload["created_utc"], str):
        problems.append("created_utc must be an ISO-8601 string")
    if problems:
        raise ManifestError("; ".join(problems))
    return payload


#: Imbalance statistics every ``node_load`` kind entry must carry.
_NODE_LOAD_STATS = ("nodes", "total", "mean", "max", "max_mean", "gini")


def _check_node_load(section: Any) -> list:
    """Schema-v3 check for the ``node_load`` section; returns problems."""
    problems = []
    if not isinstance(section, dict):
        return [f"node_load must be an object, got {_type_name(section)}"]
    for kind, entry in section.items():
        if not isinstance(entry, dict):
            problems.append(f"node_load[{kind!r}] must be an object")
            continue
        for stat in _NODE_LOAD_STATS:
            v = entry.get(stat)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                problems.append(f"node_load[{kind!r}].{stat} must be numeric")
            elif isinstance(v, float) and not math.isfinite(v):
                problems.append(f"node_load[{kind!r}].{stat} must be finite")
        top = entry.get("top")
        if not isinstance(top, list) or not all(
            isinstance(row, list)
            and len(row) == 2
            and all(isinstance(x, int) and not isinstance(x, bool) for x in row)
            for row in top
        ):
            problems.append(
                f"node_load[{kind!r}].top must be a list of [key, count] int pairs"
            )
    return problems


def _check_tail_latency(section: Any) -> list:
    """Schema-v3 check for the ``tail_latency`` section; returns problems."""
    problems = []
    if not isinstance(section, dict):
        return [f"tail_latency must be an object, got {_type_name(section)}"]
    for name, entry in section.items():
        if not isinstance(entry, dict):
            problems.append(f"tail_latency[{name!r}] must be an object")
            continue
        for q in ("p50", "p95", "p99", "p999"):
            if q not in entry:
                problems.append(f"tail_latency[{name!r}] missing {q}")
                continue
            v = entry[q]
            if v is not None and (
                not isinstance(v, (int, float)) or isinstance(v, bool)
            ):
                problems.append(f"tail_latency[{name!r}].{q} must be numeric or null")
            elif isinstance(v, float) and not math.isfinite(v):
                problems.append(f"tail_latency[{name!r}].{q} must be finite or null")
    return problems

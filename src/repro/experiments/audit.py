"""Claims audit: every checkable statement in the paper, verified in one run.

Each :class:`Claim` couples a quotation (or paraphrase) from the paper
with a predicate over freshly-run experiment tables.  ``run_audit()``
executes the minimal set of experiments, evaluates every claim and
returns a PASS/FAIL report — the repository's one-command answer to
"does the reproduction actually support what the paper says?".

Exposed on the CLI as ``python -m repro audit``.
"""

from __future__ import annotations

import dataclasses
import traceback
from typing import Callable, Dict, List, Optional

from .common import ResultTable
from .report import run_all

__all__ = ["Claim", "ClaimResult", "CLAIMS", "run_audit", "render_audit"]

@dataclasses.dataclass(frozen=True)
class Claim:
    """One checkable statement."""

    section: str
    text: str
    #: experiment names the predicate reads
    needs: List[str]
    check: Callable[[Dict[str, ResultTable]], bool]


@dataclasses.dataclass
class ClaimResult:
    claim: Claim
    passed: bool
    error: Optional[str] = None


def _c(section: str, text: str, needs: List[str]):
    def wrap(fn: Callable[[Dict[str, ResultTable]], bool]) -> Claim:
        return Claim(section=section, text=text, needs=needs, check=fn)

    return wrap


CLAIMS: List[Claim] = [
    _c("§1/Table 1", "Type A cannot guarantee end-to-end semantics", ["table1"])(
        lambda t: t["table1"].row_where("architecture", "Type A")["end-to-end delivery"]
        == 0.0
    ),
    _c("§1/Table 1", "Bristle guarantees end-to-end semantics transparently", ["table1"])(
        lambda t: t["table1"].row_where("architecture", "Bristle")["end-to-end delivery"]
        == 1.0
    ),
    _c(
        "§1/Table 1",
        "Type B (Mobile IP) reliability is poor: home agents are critical "
        "points of failure",
        ["table1"],
    )(
        lambda t: t["table1"].row_where("architecture", "Type B")[
            "delivery w/ 20% infra failure"
        ]
        < t["table1"].row_where("architecture", "Bristle")["delivery w/ 20% infra failure"]
    ),
    _c(
        "§1/Table 1",
        "Mobile IP's triangular route makes Type B performance poor; Bristle "
        "routes directly once resolved",
        ["table1"],
    )(
        lambda t: t["table1"].row_where("architecture", "Bristle")["warm path cost"]
        < t["table1"].row_where("architecture", "Type B")["warm path cost"]
    ),
    _c(
        "§2.3/Fig 3",
        "Non-member-only LDTs cost (log N)× the member-only responsibility",
        ["fig3"],
    )(lambda t: all(15 <= r["ratio"] <= 25 for r in t["fig3"].rows)),
    _c(
        "§2.3/Fig 3",
        "Member-only LDTs drastically reduce responsibility (measured on "
        "real trees)",
        ["fig3-trees"],
    )(lambda t: all(r["resp ratio"] > 1.5 for r in t["fig3-trees"].rows)),
    _c(
        "§2.3.1",
        "A LDT has O(log N) members",
        ["fig3-trees"],
    )(lambda t: all(r["member tree size"] <= 2 * 12 for r in t["fig3-trees"].rows)),
    _c(
        "§2.3.2",
        "Lookup takes O(log N) hops and O(log N) state per node",
        ["bounds-hops"],
    )(
        lambda t: max(t["bounds-hops"].column("hops/log2 N"))
        / min(t["bounds-hops"].column("hops/log2 N"))
        < 2.0
    ),
    _c(
        "§2.3.2",
        "State advertisement completes in O(log_k log N) hops",
        ["bounds-ldt"],
    )(
        lambda t: all(
            r["mean depth"] <= r["bound log_k(log N)"] + 2.0 for r in t["bounds-ldt"].rows
        )
    ),
    _c(
        "§2.3.2",
        "Routes stay adaptive under failures via multiple neighbour paths",
        ["ext-adaptive"],
    )(
        lambda t: all(
            r["adaptive delivery"] > r["greedy delivery"] for r in t["ext-adaptive"].rows
        )
    ),
    _c(
        "§3/Fig 7",
        "The clustered naming scheme is superior to the scrambled scheme",
        ["fig7"],
    )(
        lambda t: all(
            r["hops clustered"] <= r["hops scrambled"] + 1e-9
            for r in t["fig7"].rows
            if r["M/N (%)"] > 0
        )
    ),
    _c(
        "§3/Fig 7",
        "RDP grows with the mobile fraction",
        ["fig7"],
    )(lambda t: t["fig7"].rows[-1]["RDP hops"] > t["fig7"].rows[0]["RDP hops"] + 0.2),
    _c(
        "§4.1/Fig 7",
        "Hop-RDP and cost-RDP are close",
        ["fig7"],
    )(
        lambda t: all(
            abs(r["RDP hops"] - r["RDP cost"]) / r["RDP cost"] < 0.35
            for r in t["fig7"].rows
            if r["M/N (%)"] > 0
        )
    ),
    _c(
        "§3 eq. (1)",
        "With stationary nodes >= mobile nodes, stationary routes can avoid "
        "address resolution (knee at M/N = 50%)",
        ["bounds-eq1"],
    )(
        lambda t: t["bounds-eq1"].rows[0]["routes w/ resolution (%)"] < 15.0
        and t["bounds-eq1"].rows[-1]["routes w/ resolution (%)"]
        > 2 * t["bounds-eq1"].rows[0]["routes w/ resolution (%)"]
    ),
    _c(
        "§4.2/Fig 8",
        "LDT depth adapts to capacity: homogeneous weak nodes form chains, "
        "capable mixes flatten the tree",
        ["fig8a"],
    )(
        lambda t: t["fig8a"].row_where("MAX", 1)["mean depth"]
        > 3 * t["fig8a"].row_where("MAX", 15)["mean depth"]
    ),
    _c(
        "§4.2/Fig 8",
        "A LDT is dynamically structured based on the participating nodes' "
        "workloads (heavy load lengthens the tree)",
        ["fig8-workload"],
    )(
        lambda t: t["fig8-workload"].rows[-1]["mean depth"]
        > 2 * t["fig8-workload"].rows[0]["mean depth"]
    ),
    _c(
        "§2.1",
        "Clustered naming keeps routes O(log N) end-to-end as N grows",
        ["ext-scaling"],
    )(
        lambda t: max(t["ext-scaling"].column("clustered / log2 N"))
        / min(t["ext-scaling"].column("clustered / log2 N"))
        < 1.3
    ),
    _c(
        "§1",
        "Node mobility causes unavailability of stored data in Type A; "
        "Bristle retains the old state",
        ["ext-data"],
    )(
        lambda t: all(r["Bristle availability"] == 1.0 for r in t["ext-data"].rows)
        and t["ext-data"].rows[-1]["Type A availability"] < 0.7
    ),
    _c(
        "§4.3/Fig 9",
        "Locality-aware LDTs are cheaper and improve as nodes are added; "
        "random trees stay expensive",
        ["fig9"],
    )(
        lambda t: all(
            r["with locality"] < r["without locality"] for r in t["fig9"].rows
        )
        and t["fig9"].column("with locality")[-1] < t["fig9"].column("with locality")[0]
    ),
]


def run_audit(
    scale: str = "quick", claims: Optional[List[Claim]] = None
) -> List[ClaimResult]:
    """Run the needed experiments once and evaluate every claim."""
    selected = claims if claims is not None else CLAIMS
    needed = sorted({name for c in selected for name in c.needs})
    tables = run_all(scale=scale, names=needed)
    results: List[ClaimResult] = []
    for claim in selected:
        try:
            passed = bool(claim.check(tables))
            results.append(ClaimResult(claim=claim, passed=passed))
        except Exception:
            results.append(
                ClaimResult(claim=claim, passed=False, error=traceback.format_exc(limit=2))
            )
    return results


def render_audit(results: List[ClaimResult]) -> str:
    """Human-readable PASS/FAIL report."""
    lines = ["== Paper claims audit =="]
    passed = sum(1 for r in results if r.passed)
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"[{mark}] {r.claim.section}: {r.claim.text}")
        if r.error:
            lines.append(f"       error: {r.error.splitlines()[-1]}")
    lines.append(f"-- {passed}/{len(results)} claims supported --")
    return "\n".join(lines)

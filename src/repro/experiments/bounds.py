"""Complexity-claim validation (§2.3, §3): measured scaling vs the
analytic bounds.

Three checks back the paper's asymptotic statements with measurements:

* **lookup hops** grow like ``O(log N)`` in every overlay;
* **state size** per node grows like ``O(log N)``;
* **LDT advertisement depth** grows like ``O(log_k log N)``;
* **eq. (1)**: under clustered naming with ∇ ≥ 1/2, stationary →
  stationary routes need (almost) no address resolutions.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.analysis import advertisement_hops, clustered_route_is_stationary
from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.ldt import LDTMember, build_ldt
from ..core.mobility import shuffle_all_mobile
from ..core.routing import route_preferring_resolved
from ..overlay.factory import make_overlay
from ..overlay.keyspace import KeySpace
from ..sim.rng import RngStreams
from ..workloads.routes import sample_stationary_pairs
from .common import ResultTable

__all__ = ["run_hop_scaling", "run_ldt_depth_scaling", "run_eq1_check"]


def run_hop_scaling(
    overlay_name: str = "chord",
    sizes: Sequence[int] = (128, 256, 512, 1024, 2048),
    routes_per_size: int = 300,
    seed: int = 13,
) -> ResultTable:
    """Mean lookup hops and state size across network sizes."""
    table = ResultTable(
        title=f"Bound check — {overlay_name} lookup/state scaling",
        columns=["N", "mean hops", "log2 N", "hops/log2 N", "mean state", "state/log2 N"],
        notes=[f"{routes_per_size} random routes per size"],
    )
    space = KeySpace()
    for n in sizes:
        rng = RngStreams(seed + n)
        keys = [int(k) for k in space.random_keys(rng, "keys", n)]
        ov = make_overlay(overlay_name, space)
        ov.build(keys)
        gen = rng.stream("routes")
        hops = []
        for _ in range(routes_per_size):
            s = keys[int(gen.integers(n))]
            t = int(gen.integers(space.size))
            hops.append(ov.route(s, t).hop_count)
        state = ov.state_size_stats()
        log_n = math.log2(n)
        table.add_row(
            **{
                "N": n,
                "mean hops": float(np.mean(hops)),
                "log2 N": log_n,
                "hops/log2 N": float(np.mean(hops)) / log_n,
                "mean state": state["mean"],
                "state/log2 N": state["mean"] / log_n,
            }
        )
    return table


def run_ldt_depth_scaling(
    sizes: Sequence[int] = (256, 1024, 4096, 16384, 65536),
    branching_capacity: int = 4,
    trees_per_size: int = 100,
    seed: int = 14,
) -> ResultTable:
    """Measured LDT depth vs the ``O(log_k log N)`` bound (§2.3.2)."""
    table = ResultTable(
        title="Bound check — LDT advertisement depth",
        columns=["N", "registry", "mean depth", "bound log_k(log N)"],
        notes=[f"uniform capacity {branching_capacity} (k = {branching_capacity}), "
               f"{trees_per_size} trees per size"],
    )
    for n in sizes:
        registry = max(1, math.ceil(math.log2(n)))
        depths = []
        for t in range(trees_per_size):
            members = [
                LDTMember(key=i + 1, capacity=float(branching_capacity))
                for i in range(registry)
            ]
            root = LDTMember(key=0, capacity=float(branching_capacity))
            depths.append(build_ldt(root, members).depth)
        table.add_row(
            **{
                "N": n,
                "registry": registry,
                "mean depth": float(np.mean(depths)),
                "bound log_k(log N)": advertisement_hops(n, branching_capacity),
            }
        )
    return table


def run_eq1_check(
    num_stationary: int = 300,
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.6, 0.8),
    routes: int = 500,
    seed: int = 15,
) -> ResultTable:
    """Equation (1): resolutions on stationary→stationary routes under
    clustered naming, measured against the analytic predicate.

    Eq. (1) is an existence claim — "if the route *can* be forwarded by
    stationary nodes" — so routing uses the §3 prefer-resolved policy,
    which takes a stationary next hop whenever one makes progress.  With
    ∇ ≥ 1/2 (M/N ≤ 50%) essentially no route should need a resolution;
    past 50% the mobile key region exceeds the largest finger span
    (ρ/2), every wrapping route must land in it, and resolutions appear.
    """
    table = ResultTable(
        title="Bound check — §3 eq. (1), clustered naming",
        columns=[
            "M/N (%)",
            "nabla",
            "routes w/ resolution (%)",
            "predicted unsafe (%)",
        ],
        notes=[f"{num_stationary} stationary nodes, {routes} routes per point"],
    )
    for frac in fractions:
        num_mobile = int(round(num_stationary * frac / (1 - frac)))
        cfg = BristleConfig(seed=seed, naming="clustered", p_stale=1.0)
        net = BristleNetwork(cfg, num_stationary, num_mobile, router_count=200)
        shuffle_all_mobile(net)
        pairs = sample_stationary_pairs(net.stationary_keys, routes, net.rng)
        with_res = 0
        predicted_unsafe = 0
        naming = net.naming
        for s, t in pairs:
            trace = route_preferring_resolved(net, s, t)
            if trace.resolutions > 0:
                with_res += 1
            if not clustered_route_is_stationary(
                s, t, naming.low, naming.high, net.space.size
            ):
                predicted_unsafe += 1
        table.add_row(
            **{
                "M/N (%)": round(100 * frac, 1),
                "nabla": (num_stationary) / (num_stationary + num_mobile),
                "routes w/ resolution (%)": 100.0 * with_res / routes,
                "predicted unsafe (%)": 100.0 * predicted_unsafe / routes,
            }
        )
    return table

"""Complexity-claim validation (§2.3, §3): measured scaling vs the
analytic bounds.

Three checks back the paper's asymptotic statements with measurements:

* **lookup hops** grow like ``O(log N)`` in every overlay;
* **state size** per node grows like ``O(log N)``;
* **LDT advertisement depth** grows like ``O(log_k log N)``;
* **eq. (1)**: under clustered naming with ∇ ≥ 1/2, stationary →
  stationary routes need (almost) no address resolutions.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Sequence

import numpy as np

from ..core.analysis import advertisement_hops, clustered_route_is_stationary
from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.ldt import LDTMember, build_ldt
from ..core.mobility import shuffle_all_mobile
from ..core.routing import route_preferring_resolved
from ..net.underlay import build_underlay, shared_underlay_cache
from ..overlay.factory import make_overlay
from ..overlay.keyspace import KeySpace
from ..sim.rng import RngStreams, derive_seed
from ..workloads.routes import sample_stationary_pairs
from .common import ResultTable
from .parallel import active_sweep, derive_point_seeds, sweep_map

__all__ = ["run_hop_scaling", "run_ldt_depth_scaling", "run_eq1_check"]


@dataclasses.dataclass(frozen=True)
class _HopScalingPoint:
    """One network size of the lookup/state-scaling sweep."""

    overlay_name: str
    n: int
    routes_per_size: int
    seed: int  # derived per-point child seed (not ``seed + n``)


def _hop_scaling_point(pt: _HopScalingPoint) -> Dict[str, float]:
    """Module-level (picklable) per-size worker for :func:`sweep_map`."""
    space = KeySpace()
    rng = RngStreams(pt.seed)
    keys = [int(k) for k in space.random_keys(rng, "keys", pt.n)]
    ov = make_overlay(pt.overlay_name, space)
    ov.build(keys)
    gen = rng.stream("routes")
    hops = []
    for _ in range(pt.routes_per_size):
        s = keys[int(gen.integers(pt.n))]
        t = int(gen.integers(space.size))
        hops.append(ov.route(s, t).hop_count)
    state = ov.state_size_stats()
    return {"mean_hops": float(np.mean(hops)), "mean_state": state["mean"]}


def run_hop_scaling(
    overlay_name: str = "chord",
    sizes: Sequence[int] = (128, 256, 512, 1024, 2048),
    routes_per_size: int = 300,
    seed: int = 13,
) -> ResultTable:
    """Mean lookup hops and state size across network sizes.

    Per-size seeds derive through the sweep helper (the former ``seed + n``
    formula produced correlated adjacent seeds and collided whenever two
    sweeps' ``seed + n`` grids overlapped).
    """
    table = ResultTable(
        title=f"Bound check — {overlay_name} lookup/state scaling",
        columns=["N", "mean hops", "log2 N", "hops/log2 N", "mean state", "state/log2 N"],
        notes=[f"{routes_per_size} random routes per size"],
    )
    seeds = derive_point_seeds(seed, list(sizes), variants=(overlay_name,))
    points = [
        _HopScalingPoint(
            overlay_name=overlay_name,
            n=n,
            routes_per_size=routes_per_size,
            seed=seeds[(n, overlay_name)],
        )
        for n in sizes
    ]
    results = sweep_map(_hop_scaling_point, points)
    for n, res in zip(sizes, results):
        log_n = math.log2(n)
        table.add_row(
            **{
                "N": n,
                "mean hops": res["mean_hops"],
                "log2 N": log_n,
                "hops/log2 N": res["mean_hops"] / log_n,
                "mean state": res["mean_state"],
                "state/log2 N": res["mean_state"] / log_n,
            }
        )
    return table


@dataclasses.dataclass(frozen=True)
class _LDTDepthPoint:
    """One population size of the LDT-depth sweep (pure computation)."""

    n: int
    branching_capacity: int
    trees_per_size: int


def _ldt_depth_point(pt: _LDTDepthPoint) -> float:
    """Module-level (picklable) per-size worker for :func:`sweep_map`."""
    registry = max(1, math.ceil(math.log2(pt.n)))
    depths = []
    for _ in range(pt.trees_per_size):
        members = [
            LDTMember(key=i + 1, capacity=float(pt.branching_capacity))
            for i in range(registry)
        ]
        root = LDTMember(key=0, capacity=float(pt.branching_capacity))
        depths.append(build_ldt(root, members).depth)
    return float(np.mean(depths))


def run_ldt_depth_scaling(
    sizes: Sequence[int] = (256, 1024, 4096, 16384, 65536),
    branching_capacity: int = 4,
    trees_per_size: int = 100,
    seed: int = 14,
) -> ResultTable:
    """Measured LDT depth vs the ``O(log_k log N)`` bound (§2.3.2)."""
    table = ResultTable(
        title="Bound check — LDT advertisement depth",
        columns=["N", "registry", "mean depth", "bound log_k(log N)"],
        notes=[f"uniform capacity {branching_capacity} (k = {branching_capacity}), "
               f"{trees_per_size} trees per size"],
    )
    points = [
        _LDTDepthPoint(
            n=n,
            branching_capacity=branching_capacity,
            trees_per_size=trees_per_size,
        )
        for n in sizes
    ]
    results = sweep_map(_ldt_depth_point, points)
    for n, mean_depth in zip(sizes, results):
        registry = max(1, math.ceil(math.log2(n)))
        table.add_row(
            **{
                "N": n,
                "registry": registry,
                "mean depth": mean_depth,
                "bound log_k(log N)": advertisement_hops(n, branching_capacity),
            }
        )
    return table


#: Underlay size for the eq. (1) sweep (all fractions share one bundle).
_EQ1_ROUTER_COUNT = 200


@dataclasses.dataclass(frozen=True)
class _Eq1Point:
    """One mobility fraction of the eq. (1) resolution check."""

    fraction: float
    num_stationary: int
    num_mobile: int
    routes: int
    underlay_seed: int
    seed: int
    reuse_underlay: bool


def _eq1_point(pt: _Eq1Point) -> Dict[str, int]:
    """Module-level (picklable) per-fraction worker for :func:`sweep_map`."""
    bundle = (
        shared_underlay_cache().get(pt.underlay_seed, _EQ1_ROUTER_COUNT)
        if pt.reuse_underlay
        else build_underlay(pt.underlay_seed, _EQ1_ROUTER_COUNT)
    )
    cfg = BristleConfig(seed=pt.seed, naming="clustered", p_stale=1.0)
    net = BristleNetwork(cfg, pt.num_stationary, pt.num_mobile, underlay=bundle)
    shuffle_all_mobile(net)
    pairs = sample_stationary_pairs(net.stationary_keys, pt.routes, net.rng)
    with_res = 0
    predicted_unsafe = 0
    naming = net.naming
    for s, t in pairs:
        trace = route_preferring_resolved(net, s, t)
        if trace.resolutions > 0:
            with_res += 1
        if not clustered_route_is_stationary(
            s, t, naming.low, naming.high, net.space.size
        ):
            predicted_unsafe += 1
    return {"with_res": with_res, "predicted_unsafe": predicted_unsafe}


def run_eq1_check(
    num_stationary: int = 300,
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.6, 0.8),
    routes: int = 500,
    seed: int = 15,
) -> ResultTable:
    """Equation (1): resolutions on stationary→stationary routes under
    clustered naming, measured against the analytic predicate.

    Eq. (1) is an existence claim — "if the route *can* be forwarded by
    stationary nodes" — so routing uses the §3 prefer-resolved policy,
    which takes a stationary next hop whenever one makes progress.  With
    ∇ ≥ 1/2 (M/N ≤ 50%) essentially no route should need a resolution;
    past 50% the mobile key region exceeds the largest finger span
    (ρ/2), every wrapping route must land in it, and resolutions appear.
    """
    table = ResultTable(
        title="Bound check — §3 eq. (1), clustered naming",
        columns=[
            "M/N (%)",
            "nabla",
            "routes w/ resolution (%)",
            "predicted unsafe (%)",
        ],
        notes=[f"{num_stationary} stationary nodes, {routes} routes per point"],
    )
    sweep = active_sweep()
    underlay_seed = derive_seed(seed, "underlay")
    seeds = derive_point_seeds(seed, list(fractions))
    points = [
        _Eq1Point(
            fraction=frac,
            num_stationary=num_stationary,
            num_mobile=int(round(num_stationary * frac / (1 - frac))),
            routes=routes,
            underlay_seed=underlay_seed,
            seed=seeds[(frac, "")],
            reuse_underlay=sweep.reuse_underlay,
        )
        for frac in fractions
    ]
    results = sweep_map(_eq1_point, points)
    for pt, res in zip(points, results):
        table.add_row(
            **{
                "M/N (%)": round(100 * pt.fraction, 1),
                "nabla": pt.num_stationary / (pt.num_stationary + pt.num_mobile),
                "routes w/ resolution (%)": 100.0 * res["with_res"] / pt.routes,
                "predicted unsafe (%)": 100.0 * res["predicted_unsafe"] / pt.routes,
            }
        )
    return table

"""Aggregate experiment runner: regenerate every table and figure at once.

Used by the command-line interface (``python -m repro``) and by anyone who
wants the full evaluation as a single text report::

    from repro.experiments.report import run_all, render_report
    print(render_report(run_all(scale="quick")))
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .bounds import run_eq1_check, run_hop_scaling, run_ldt_depth_scaling
from .common import ResultTable
from .ext_advertisement import run_advertisement_latency
from .ext_batch import BatchUpdateParams, run_batch_update
from .ext_binding import run_binding_cost, run_staleness_sweep
from .ext_churn import run_churn_overhead, run_membership_churn
from .ext_data import run_data_availability
from .ext_hotspot import HotspotParams, run_hotspot_load
from .ext_naming import run_band_placement
from .ext_overlay_choice import run_ipv6_route_optimisation, run_overlay_choice
from .ext_proximity import run_proximity_routing
from .ext_scaling import (
    ColumnarScaleParams,
    TrafficMixScaleParams,
    run_columnar_scale,
    run_scaling,
    run_traffic_mix,
)
from .ext_reliability import run_adaptive_routing_reliability, run_replication_reliability
from .fig3_responsibility import run_fig3, run_fig3_empirical, run_fig3_tree_sizes
from .fig7_naming import Fig7Params, run_fig7
from .fig8_ldt import Fig8Params, run_fig8a, run_fig8b, run_fig8_workload
from .fig9_locality import Fig9Params, run_fig9
from .table1_comparison import Table1Params, run_table1
from ..sim.telemetry import active_telemetry

__all__ = [
    "EXPERIMENTS",
    "resolve_experiment_name",
    "run_all",
    "run_one",
    "render_report",
]


def _fig7(scale: str) -> ResultTable:
    if scale == "paper":
        return run_fig7(Fig7Params.paper_scale())
    if scale == "quick":
        return run_fig7(
            Fig7Params(
                num_stationary=250,
                routes=500,
                router_count=300,
                fractions=(0.0, 0.2, 0.4, 0.6, 0.8),
            )
        )
    return run_fig7()


def _fig8a(scale: str) -> ResultTable:
    if scale == "paper":
        return run_fig8a(Fig8Params.paper_scale())
    if scale == "quick":
        return run_fig8a(Fig8Params(trees_per_max=60, max_values=(1, 2, 4, 8, 15)))
    return run_fig8a()


def _fig9(scale: str) -> ResultTable:
    if scale == "paper":
        return run_fig9(Fig9Params.paper_scale())
    if scale == "quick":
        return run_fig9(
            Fig9Params(
                num_stationary=80,
                router_count=300,
                fractions=(0.2, 0.5, 0.8),
                trees_sampled=80,
            )
        )
    return run_fig9()


def _ext_batch(scale: str) -> ResultTable:
    if scale == "paper":
        return run_batch_update(
            BatchUpdateParams(
                num_stationary=1024, batch_sizes=(1, 10, 100, 1000, 2000)
            )
        )
    if scale == "quick":
        return run_batch_update(
            BatchUpdateParams(
                num_stationary=128,
                batch_sizes=(1, 8, 64, 512),
                router_count=120,
            )
        )
    return run_batch_update()


def _table1(scale: str) -> ResultTable:
    if scale == "paper":
        return run_table1(Table1Params(num_stationary=500, num_mobile=500, lookups=2000))
    if scale == "quick":
        return run_table1(Table1Params(num_stationary=100, num_mobile=100, lookups=300))
    return run_table1()


def _fig3_empirical(scale: str) -> ResultTable:
    return run_fig3_empirical(num_stationary=120 if scale == "quick" else 400)


def _fig3_trees(scale: str) -> ResultTable:
    return run_fig3_tree_sizes(num_stationary=120 if scale == "quick" else 300)


def _ext_scale_columnar(scale: str) -> ResultTable:
    if scale == "paper":
        return run_columnar_scale(
            ColumnarScaleParams(
                num_stationary=100_000, num_mobile=40_000, lookups=50_000, shards=8
            )
        )
    if scale == "quick":
        return run_columnar_scale(ColumnarScaleParams.quick_scale())
    return run_columnar_scale()


def _ext_scale_traffic(scale: str) -> ResultTable:
    if scale == "paper":
        return run_traffic_mix(
            TrafficMixScaleParams(
                num_stationary=100_000, num_mobile=40_000, lookups=50_000, shards=8
            )
        )
    if scale == "quick":
        return run_traffic_mix(TrafficMixScaleParams.quick_scale())
    return run_traffic_mix()


def _ext_hotspot(scale: str) -> ResultTable:
    if scale == "paper":
        return run_hotspot_load(
            HotspotParams(num_stationary=512, num_mobile=256, lookups=5000)
        )
    if scale == "quick":
        return run_hotspot_load(HotspotParams.quick_scale())
    return run_hotspot_load()


#: name → (description, runner).  Runner takes scale in
#: {"quick", "default", "paper"}.
EXPERIMENTS: Dict[str, Tuple[str, Callable[[str], ResultTable]]] = {
    "table1": ("Table 1 — Type A / Type B / Bristle, measured", _table1),
    "fig3": ("Figure 3 — responsibility curves (analytic)", lambda s: run_fig3()),
    "fig3-empirical": ("Figure 3 — member-only responsibility, measured", _fig3_empirical),
    "fig3-trees": ("Figure 3 — both tree kinds built and measured", _fig3_trees),
    "fig7": ("Figure 7 — scrambled vs clustered naming", _fig7),
    "fig8a": ("Figure 8(a) — LDT structure vs capacity", _fig8a),
    "fig8b": ("Figure 8(b) — heterogeneity / load balance", lambda s: run_fig8b()),
    "fig8-workload": (
        "Figure 8 (workload sweep) — depth vs node load (§4.2)",
        lambda s: run_fig8_workload(),
    ),
    "fig9": ("Figure 9 — LDT locality", _fig9),
    "bounds-hops": ("§2.3 — lookup/state scaling", lambda s: run_hop_scaling()),
    "bounds-ldt": ("§2.3.2 — advertisement depth", lambda s: run_ldt_depth_scaling()),
    "bounds-eq1": ("§3 eq. (1) — clustered-naming knee", lambda s: run_eq1_check()),
    "ext-latency": (
        "Extension — timed LDT advertisement makespan",
        lambda s: run_advertisement_latency(),
    ),
    "ext-reliability": (
        "Extension — availability vs replication factor",
        lambda s: run_replication_reliability(),
    ),
    "ext-staleness": (
        "Extension — route cost vs cache staleness",
        lambda s: run_staleness_sweep(),
    ),
    "ext-binding": (
        "Extension — early vs late binding trade-off",
        lambda s: run_binding_cost(),
    ),
    "ext-batch-update": (
        "Extension — batched multi-resource location updates",
        _ext_batch,
    ),
    "ext-churn": (
        "Extension — maintenance overhead vs mobility rate",
        lambda s: run_churn_overhead(),
    ),
    "ext-churn-repair": (
        "Extension — incremental repair cost under membership churn",
        lambda s: run_membership_churn(),
    ),
    "ext-adaptive": (
        "Extension — greedy vs adaptive routing under failures",
        lambda s: run_adaptive_routing_reliability(),
    ),
    "ext-data": (
        "Extension — stored-data availability under mobility",
        lambda s: run_data_availability(),
    ),
    "ext-proximity": (
        "Extension — §3 optimisation (1): proximity-aware routing",
        lambda s: run_proximity_routing(),
    ),
    "ext-band": (
        "Extension — clustered-band placement ablation",
        lambda s: run_band_placement(),
    ),
    "ext-overlays": (
        "Extension — stationary-layer substrate comparison",
        lambda s: run_overlay_choice(),
    ),
    "ext-ipv6": (
        "Extension — Mobile IPv6 route optimisation (Type B)",
        lambda s: run_ipv6_route_optimisation(),
    ),
    "ext-scaling": (
        "Extension — end-to-end scaling in N",
        lambda s: run_scaling(),
    ),
    "ext-hotspot": (
        "Extension — hotspot load under Zipf-skewed discovery",
        _ext_hotspot,
    ),
    "ext-scale-columnar": (
        "Extension — columnar engine scale scenario, keyspace-sharded",
        _ext_scale_columnar,
    ),
    "ext-scale-traffic": (
        "Extension — Zipf traffic mix on the columnar LDT forest",
        _ext_scale_traffic,
    ),
}


#: Driver-module spellings accepted as experiment names (``repro run
#: fig7_naming`` works like ``repro run fig7``).
NAME_ALIASES: Dict[str, str] = {
    "fig3_responsibility": "fig3",
    "fig7_naming": "fig7",
    "fig8_ldt": "fig8a",
    "fig9_locality": "fig9",
    "table1_comparison": "table1",
}


def resolve_experiment_name(name: str) -> str:
    """Canonical experiment name for ``name`` (KeyError when unknown).

    Accepts the registry key itself (``fig7``), underscore spellings of
    hyphenated keys (``ext_staleness`` → ``ext-staleness``) and the
    driver-module aliases of :data:`NAME_ALIASES`.
    """
    if name in EXPERIMENTS:
        return name
    dashed = name.replace("_", "-")
    if dashed in EXPERIMENTS:
        return dashed
    if name in NAME_ALIASES:
        return NAME_ALIASES[name]
    raise KeyError(
        f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
    )


def run_one(name: str, scale: str = "default") -> ResultTable:
    """Run a single named experiment (see :data:`EXPERIMENTS`).

    Inside a telemetry session the run is wrapped in an
    ``experiment:<name>`` profiler phase and an ``experiment`` span, so
    the manifest records where each experiment's wall-clock went.
    """
    if scale not in ("quick", "default", "paper"):
        raise ValueError(f"scale must be quick/default/paper, got {scale!r}")
    name = resolve_experiment_name(name)
    _, runner = EXPERIMENTS[name]
    tel = active_telemetry()
    if tel is None:
        return runner(scale)
    with tel.profiler.phase(f"experiment:{name}"):
        with tel.tracer.span("experiment", experiment=name, scale=scale):
            return runner(scale)


def run_all(
    scale: str = "default", names: Optional[List[str]] = None
) -> Dict[str, ResultTable]:
    """Run every (or the named) experiments; returns name → table."""
    selected = (
        [resolve_experiment_name(n) for n in names]
        if names is not None
        else list(EXPERIMENTS)
    )
    return {name: run_one(name, scale) for name in selected}


def render_report(tables: Dict[str, ResultTable], precision: int = 3) -> str:
    """One text document with every table, in EXPERIMENTS order."""
    order = [n for n in EXPERIMENTS if n in tables]
    order += [n for n in tables if n not in EXPERIMENTS]
    parts = []
    for name in order:
        desc = EXPERIMENTS.get(name, ("", None))[0]
        if desc:
            parts.append(f"# {name}: {desc}")
        parts.append(tables[name].render(precision))
        parts.append("")
    return "\n".join(parts)

"""Extension experiment: directory availability under stationary failures.

§2.3.2's availability argument: "a data item published to a HS-P2P can
simply be replicated to k nodes clustered with the hash keys closest to
the one represented the data item.  Once one of these nodes fails, the
requested data item can be rapidly accessed in the remaining k − 1
nodes."

The sweep publishes every mobile node's location with replication factor
``k``, fails a fraction ``f`` of stationary holders, and measures the
fraction of mobile nodes whose location is still resolvable — compared
against the analytic survival probability ``1 − f^k`` (independent
failures, records lost only when every holder is down).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from .common import ResultTable
from .parallel import derive_point_seed

__all__ = ["ReliabilityParams", "run_replication_reliability"]


@dataclasses.dataclass(frozen=True)
class ReliabilityParams:
    num_stationary: int = 150
    num_mobile: int = 150
    replication_factors: Sequence[int] = (1, 2, 3, 5)
    failure_fraction: float = 0.3
    trials: int = 5
    seed: int = 20


def run_replication_reliability(
    params: Optional[ReliabilityParams] = None,
) -> ResultTable:
    """Measured vs analytic record survival under holder failures."""
    p = params if params is not None else ReliabilityParams()
    if not 0.0 < p.failure_fraction < 1.0:
        raise ValueError("failure_fraction must be in (0, 1)")
    table = ResultTable(
        title="Extension — location availability vs replication factor",
        columns=[
            "replication k",
            "measured survival",
            "analytic 1 - f^k",
            "records/holder (mean)",
        ],
        notes=[
            f"{p.num_stationary}+{p.num_mobile} nodes, fail "
            f"{p.failure_fraction:.0%} of stationary holders, "
            f"{p.trials} trials per point",
        ],
    )
    for k in p.replication_factors:
        survivals = []
        load_means = []
        for trial in range(p.trials):
            cfg = BristleConfig(
                seed=derive_point_seed(p.seed, (k, trial)),
                naming="scrambled",
                replication=k,
            )
            net = BristleNetwork(
                cfg, p.num_stationary, p.num_mobile, router_count=150
            )
            holders = sorted(net.stationary_keys)
            n_fail = int(len(holders) * p.failure_fraction)
            failed = set(net.rng.sample("reliability.failures", holders, n_fail))
            alive = 0
            for mk in net.mobile_keys:
                if any(h not in failed for h in net.directory.holders_for(mk)):
                    alive += 1
            survivals.append(alive / len(net.mobile_keys))
            load = net.directory.holder_load()
            load_means.append(np.mean(list(load.values())) if load else 0.0)
        analytic = 1.0 - p.failure_fraction**k
        table.add_row(
            **{
                "replication k": k,
                "measured survival": float(np.mean(survivals)),
                "analytic 1 - f^k": analytic,
                "records/holder (mean)": float(np.mean(load_means)),
            }
        )
    return table


@dataclasses.dataclass(frozen=True)
class AdaptiveRoutingParams:
    num_nodes: int = 300
    failed_fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4)
    routes: int = 300
    overlay: str = "chord"
    seed: int = 22


def run_adaptive_routing_reliability(
    params: Optional[AdaptiveRoutingParams] = None,
) -> ResultTable:
    """Delivery under node failures: plain greedy vs adaptive routing.

    §2.3.2: "a route towards its destination can be adaptive by
    maintaining multiple paths to the neighbors."  Plain greedy fails as
    soon as its single preferred next hop is down; the adaptive walker
    (``Overlay.route_avoiding``) detours through any live progressing
    neighbour.
    """
    from ..overlay.factory import make_overlay
    from ..overlay.keyspace import KeySpace
    from ..sim.rng import RngStreams

    p = params if params is not None else AdaptiveRoutingParams()
    table = ResultTable(
        title="Extension — delivery under failures: greedy vs adaptive routing",
        columns=[
            "failed (%)",
            "greedy delivery",
            "adaptive delivery",
            "adaptive extra hops",
        ],
        notes=[
            f"{p.num_nodes}-node {p.overlay} overlay, {p.routes} routes to "
            "live owners per point",
        ],
    )
    space = KeySpace()
    rng = RngStreams(p.seed)
    keys = [int(k) for k in space.random_keys(rng, "keys", p.num_nodes)]
    overlay = make_overlay(p.overlay, space)
    overlay.build(keys)
    for frac in p.failed_fractions:
        failed = set(rng.sample(f"failed.{frac}", keys, int(frac * len(keys))))
        live = [k for k in keys if k not in failed]
        gen = rng.stream(f"routes.{frac}")
        greedy_ok = adaptive_ok = 0
        extra_hops = []
        attempts = 0
        for _ in range(p.routes):
            src = live[int(gen.integers(len(live)))]
            dst = live[int(gen.integers(len(live)))]
            if src == dst:
                continue
            attempts += 1
            plain = overlay.route(src, dst)
            if plain.success and not (set(plain.hops[1:-1]) & failed):
                greedy_ok += 1
            adaptive = overlay.route_avoiding(src, dst, avoid=failed)
            if adaptive.success:
                adaptive_ok += 1
                extra_hops.append(adaptive.hop_count - plain.hop_count)
        table.add_row(
            **{
                "failed (%)": round(100 * frac, 1),
                "greedy delivery": greedy_ok / attempts,
                "adaptive delivery": adaptive_ok / attempts,
                "adaptive extra hops": float(np.mean(extra_hops)) if extra_hops else 0.0,
            }
        )
    return table


__all__.append("AdaptiveRoutingParams")
__all__.append("run_adaptive_routing_reliability")

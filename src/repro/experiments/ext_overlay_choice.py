"""Extension experiments: substrate choice and Mobile IPv6 route
optimisation.

* **Stationary-layer choice** — §2.1 says the location-management layer
  "can be any HS-P2P".  This sweep runs the same discovery workload over
  every implemented substrate (Chord / Pastry / Tapestry / Tornado / CAN)
  and reports hops, path cost and per-node state — the trade-off a
  deployment actually picks between.
* **IPv6 route optimisation** — §1 notes mobile IPv6 removes the
  triangular route but "requires that the correspondent host be
  mobile-IPv6 capable" and still depends on the home agent for first
  contact.  The sweep varies the capable fraction and measures the
  residual triangular traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..overlay.factory import OVERLAY_NAMES
from ..workloads.scenarios import build_comparison_scenario
from .common import ResultTable

__all__ = [
    "OverlayChoiceParams",
    "run_overlay_choice",
    "Ipv6Params",
    "run_ipv6_route_optimisation",
]


@dataclasses.dataclass(frozen=True)
class OverlayChoiceParams:
    num_stationary: int = 200
    num_mobile: int = 100
    discoveries: int = 300
    router_count: int = 250
    seed: int = 43


def run_overlay_choice(params: Optional[OverlayChoiceParams] = None) -> ResultTable:
    """Discovery performance per stationary-layer substrate."""
    p = params if params is not None else OverlayChoiceParams()
    table = ResultTable(
        title="Extension — stationary-layer substrate comparison",
        columns=[
            "overlay",
            "mean discovery hops",
            "mean discovery cost",
            "mean state/node",
        ],
        notes=[
            f"{p.num_stationary}+{p.num_mobile} nodes, {p.discoveries} "
            "discoveries of moved mobile nodes per substrate; same seed — "
            "identical keys, placement and workload",
        ],
    )
    for overlay in OVERLAY_NAMES:
        cfg = BristleConfig(
            seed=p.seed, naming="scrambled", stationary_layer_overlay=overlay
        )
        net = BristleNetwork(
            cfg, p.num_stationary, p.num_mobile, router_count=p.router_count
        )
        for mk in net.mobile_keys:
            net.move(mk, advertise=False)
        gen = net.rng.stream("overlay_choice")
        hops, costs = [], []
        for _ in range(p.discoveries):
            src = net.stationary_keys[int(gen.integers(p.num_stationary))]
            tgt = net.mobile_keys[int(gen.integers(p.num_mobile))]
            d = net.discover(src, tgt)
            assert d.found
            hops.append(d.hop_count)
            costs.append(
                sum(
                    net.network_distance_between_keys(a, b)
                    for a, b in zip(d.hops, d.hops[1:])
                )
            )
        state = net.stationary_layer.state_size_stats()
        table.add_row(
            **{
                "overlay": overlay,
                "mean discovery hops": float(np.mean(hops)),
                "mean discovery cost": float(np.mean(costs)),
                "mean state/node": state["mean"],
            }
        )
    return table


@dataclasses.dataclass(frozen=True)
class Ipv6Params:
    num_stationary: int = 100
    num_mobile: int = 100
    lookups: int = 400
    capable_fractions: Sequence[float] = (0.0, 0.5, 1.0)
    repeats_per_pair: int = 3
    seed: int = 45


def run_ipv6_route_optimisation(params: Optional[Ipv6Params] = None) -> ResultTable:
    """Type B with a growing fraction of mobile-IPv6-capable hosts.

    Lookups repeat per (source, target) pair so binding caches matter:
    capable sources pay the triangle once and then go direct; incapable
    ones pay it every time.
    """
    p = params if params is not None else Ipv6Params()
    table = ResultTable(
        title="Extension — Mobile IPv6 route optimisation (Type B variant)",
        columns=[
            "capable (%)",
            "mean path cost",
            "triangular detours/lookup",
            "agent max load",
        ],
        notes=[
            f"{p.num_stationary}+{p.num_mobile} nodes; every mobile node "
            f"moved; {p.lookups} lookups with {p.repeats_per_pair} repeats "
            "per pair (bindings amortise)",
        ],
    )
    for frac in p.capable_fractions:
        scenario = build_comparison_scenario(
            p.num_stationary, p.num_mobile, seed=p.seed
        )
        tb = scenario.type_b
        stationary_hosts = sorted(set(tb.key_of) - scenario.mobile_hosts)
        n_capable = int(round(frac * len(stationary_hosts)))
        tb.set_ipv6_capable(stationary_hosts[:n_capable])
        for host in sorted(scenario.mobile_hosts):
            tb.move(host)
        gen = tb.rng.stream("ipv6.lookups")
        mobile_hosts = sorted(scenario.mobile_hosts)
        costs, detours = [], []
        n_pairs = max(1, p.lookups // p.repeats_per_pair)
        for _ in range(n_pairs):
            src = stationary_hosts[int(gen.integers(len(stationary_hosts)))]
            tgt = mobile_hosts[int(gen.integers(len(mobile_hosts)))]
            for _ in range(p.repeats_per_pair):
                result = tb.lookup(src, tb.key_of[tgt])
                if result.delivered:
                    costs.append(result.path_cost)
                    detours.append(result.triangular_detours)
        table.add_row(
            **{
                "capable (%)": round(100 * frac, 1),
                "mean path cost": float(np.mean(costs)),
                "triangular detours/lookup": float(np.mean(detours)),
                "agent max load": tb.agent_load_stats()["max"],
            }
        )
    return table

"""Result-table and run-manifest serialization: CSV and JSON round-trips.

The benchmark harness stores rendered text; downstream analysis usually
wants machine-readable series.  These helpers keep the dependency
footprint at the standard library.  Run manifests (see
:mod:`repro.experiments.manifest`) are written here too, so every saved
result table can carry its provenance JSON next to it.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any, Dict, Mapping

from .. import sanitize as _sanitize
from .common import ResultTable
from .manifest import validate_manifest

__all__ = [
    "table_to_csv",
    "table_to_json",
    "table_from_json",
    "write_table",
    "write_manifest",
    "manifest_path_for",
]


def table_to_csv(table: ResultTable) -> str:
    """Render a table as CSV (header row = column names)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow([row.get(c, "") for c in table.columns])
    return buf.getvalue()


def table_to_json(table: ResultTable, indent: int = 2) -> str:
    """Render a table (title, notes, columns, rows) as JSON."""
    payload: Dict[str, Any] = {
        "title": table.title,
        "notes": list(table.notes),
        "columns": list(table.columns),
        "rows": [dict(r) for r in table.rows],
    }
    return json.dumps(payload, indent=indent, default=_jsonify)


def _jsonify(value: Any) -> Any:
    # NumPy scalars sneak into rows; coerce to plain Python.
    try:
        return value.item()
    except AttributeError:
        raise TypeError(f"cannot serialise {type(value).__name__}") from None


def table_from_json(text: str) -> ResultTable:
    """Reconstruct a :class:`ResultTable` from :func:`table_to_json` output."""
    payload = json.loads(text)
    for field in ("title", "columns", "rows"):
        if field not in payload:
            raise ValueError(f"missing field {field!r} in table JSON")
    table = ResultTable(
        title=payload["title"],
        columns=list(payload["columns"]),
        notes=list(payload.get("notes", [])),
    )
    for row in payload["rows"]:
        table.add_row(**row)
    return table


def write_table(table: ResultTable, path: str, fmt: str = "auto") -> None:
    """Write a table to ``path`` as txt, csv or json.

    ``fmt="auto"`` picks by extension (.csv / .json / anything-else→txt).
    """
    if fmt == "auto":
        lowered = path.lower()
        if lowered.endswith(".csv"):
            fmt = "csv"
        elif lowered.endswith(".json"):
            fmt = "json"
        else:
            fmt = "txt"
    if fmt == "csv":
        text = table_to_csv(table)
    elif fmt == "json":
        text = table_to_json(table)
    elif fmt == "txt":
        text = table.render() + "\n"
    else:
        raise ValueError(f"unknown format {fmt!r} (txt/csv/json)")
    with open(path, "w") as fh:
        fh.write(text)


def manifest_path_for(table_path: str) -> str:
    """The manifest filename conventionally paired with a result file.

    ``results/fig7.txt`` → ``results/fig7.manifest.json`` — next to the
    table, unambiguous, and never colliding with a ``.json`` table dump.
    """
    root, _ = os.path.splitext(table_path)
    return root + ".manifest.json"


def write_manifest(payload: Mapping[str, Any], path: str) -> None:
    """Validate and write a run manifest as strict JSON.

    Raises :class:`repro.experiments.manifest.ManifestError` instead of
    writing an artifact that downstream schema checks would reject.
    """
    validate_manifest(dict(payload))
    if _sanitize.ACTIVE:
        _sanitize.check_manifest_roundtrip(payload)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, allow_nan=False, default=_jsonify)
        fh.write("\n")

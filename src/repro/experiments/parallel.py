"""Parallel sweep engine: deterministic fan-out over independent points.

Every figure in the paper is a sweep of *independent* points (Fig 7 is
9 mobility fractions × 2 naming schemes; Fig 9, Table 1 and the ext_*
drivers are the same shape).  :func:`sweep_map` fans those points out over
a fork-based process pool while keeping three invariants (see
docs/performance.md):

**Determinism** — results are collected in point order and every source of
randomness derives from the point itself, never from scheduling.  Drivers
obtain per-point seeds through :func:`derive_point_seed`, which feeds a
structured label through :func:`repro.sim.rng.derive_seed` (splitmix64
name-mixing).  The scheme is *positional-independence by construction*:
``seed + i`` style derivations are banned because adjacent integer seeds
produce correlated low-entropy labels and silently collide when two sweeps
overlap; the label mix gives 64-bit-avalanched child seeds that are unique
per ``(master, point, variant)`` (checked by :func:`derive_point_seeds`).

**Telemetry parity** — each worker runs its point inside a fresh
:func:`~repro.sim.telemetry.telemetry_session` whose tracer is disabled
(the parent's JSONL sink fd must not be written from two processes) and
ships the session back via ``Telemetry.export_state``; the parent merges
counters (summed), histograms (samples extended), phase wall-times
(attributed additively) and network provenance, so ``--profile`` output
and the run manifest have identical shape at ``jobs=1`` and ``jobs=8``.

**Graceful fallback** — ``jobs=1``, platforms without ``fork`` and pool
start-up failures all degrade to an in-process loop with the same
ordering and telemetry behaviour.

The ambient :func:`sweep_session` mirrors ``telemetry_session``: the CLI
opens one around a run and drivers pick the job count and underlay-reuse
policy up via :func:`active_sweep` without growing their signatures.
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..sim.rng import derive_seed
from ..sim.telemetry import Telemetry, active_telemetry, telemetry_session
from ..sim.trace import Tracer

__all__ = [
    "SweepConfig",
    "sweep_session",
    "active_sweep",
    "resolve_jobs",
    "derive_point_seed",
    "derive_point_seeds",
    "sweep_map",
]


@dataclasses.dataclass(frozen=True)
class SweepConfig:
    """Ambient sweep policy: worker count and underlay-cache usage.

    Parameters
    ----------
    jobs:
        Process-pool width for :func:`sweep_map`; ``1`` runs in-process.
    reuse_underlay:
        When ``True`` (default), drivers fetch prebuilt underlays from
        :func:`repro.net.underlay.shared_underlay_cache`; ``False`` makes
        every point build its own bundle (same derivation, so results are
        byte-identical — only wall-clock differs).
    """

    jobs: int = 1
    reuse_underlay: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")


_ACTIVE: List[SweepConfig] = []


def active_sweep() -> SweepConfig:
    """The innermost open sweep config (default: serial, reuse on)."""
    return _ACTIVE[-1] if _ACTIVE else SweepConfig()


@contextlib.contextmanager
def sweep_session(config: Optional[SweepConfig] = None) -> Iterator[SweepConfig]:
    """Make ``config`` (or the default) the ambient sweep policy.

    Sessions nest; the innermost wins — mirroring ``telemetry_session``.
    """
    cfg = config if config is not None else SweepConfig()
    _ACTIVE.append(cfg)
    try:
        yield cfg
    finally:
        _ACTIVE.pop()


def resolve_jobs(jobs: Optional[int]) -> int:
    """An explicit ``jobs`` argument, else the ambient session's."""
    if jobs is None:
        return active_sweep().jobs
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# ----------------------------------------------------------------------
# Deterministic per-point seed derivation
# ----------------------------------------------------------------------
def _point_token(point: Any) -> str:
    """A stable, platform-independent text token for a sweep point.

    ``repr`` is stable for the types sweeps use as points (ints, floats,
    strings, tuples of those, dataclasses with such fields); floats repr
    round-trip exactly in Python 3.
    """
    return repr(point)


def derive_point_seed(master_seed: int, point: Any, variant: str = "") -> int:
    """Child seed for one ``(point, variant)`` of a sweep.

    The label ``sweep|<variant>|<point>`` is folded into ``master_seed``
    with the same splitmix64 mix that names RNG streams, so the child seed
    is a pure function of *what* the point is — never of its position in
    the sweep or of which process runs it.  Distinct variants of the same
    point (e.g. Fig 7's scrambled vs clustered schemes) therefore get
    decoupled RNG streams, fixing the seed-reuse bug where both schemes
    consumed identical draws.
    """
    return derive_seed(int(master_seed), f"sweep|{variant}|{_point_token(point)}")


def derive_point_seeds(
    master_seed: int,
    points: Sequence[Any],
    variants: Sequence[str] = ("",),
) -> Dict[Tuple[Any, str], int]:
    """Seeds for the full ``points × variants`` grid, collision-checked.

    Raises ``ValueError`` if any two grid cells map to the same child seed
    (astronomically unlikely under the 64-bit avalanche, but the check is
    cheap and turns a silent statistics bug into a loud failure).
    """
    seeds: Dict[Tuple[Any, str], int] = {}
    for point in points:
        for variant in variants:
            seeds[(point, variant)] = derive_point_seed(master_seed, point, variant)
    values = list(seeds.values())
    if len(set(values)) != len(values):
        dupes = {s for s in values if values.count(s) > 1}
        cells = [k for k, s in seeds.items() if s in dupes]
        raise ValueError(f"per-point seed collision across grid cells: {cells}")
    return seeds


# ----------------------------------------------------------------------
# The fan-out itself
# ----------------------------------------------------------------------
def _fork_available() -> bool:
    return hasattr(os, "fork") and "fork" in multiprocessing.get_all_start_methods()


def _run_point(fn: Callable[[Any], Any], point: Any, footers: bool) -> Tuple[Any, Dict]:
    """Worker-side wrapper: run one point under a fresh telemetry session.

    The worker inherited the parent's ambient ``_ACTIVE`` telemetry stack
    via fork; pushing an innermost session with a *disabled* tracer keeps
    the point's instrumentation out of the parent's (shared, open) JSONL
    sink while still capturing metrics/phases/network notes for the merge.
    """
    tel = Telemetry(tracer=Tracer(enabled=False), show_phase_footers=footers)
    with telemetry_session(tel):
        result = fn(point)
    return result, tel.export_state()


def sweep_map(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Apply ``fn`` to every point, in order, optionally across processes.

    Parameters
    ----------
    fn:
        The per-point measurement.  Must be a module-level callable (and
        ``points`` picklable) when ``jobs > 1``; workers are forked, so
        ``fn`` sees the parent's warm underlay cache copy-on-write.
    points:
        The sweep grid.  Results come back in this order regardless of
        completion order.
    jobs:
        Pool width; ``None`` uses the ambient :func:`sweep_session`.

    Worker telemetry is merged into the ambient parent session after all
    points complete (summed counters, extended histograms, attributed
    phases); at ``jobs=1`` the points record into the session directly.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    if points:
        jobs = min(jobs, len(points))
    if jobs <= 1 or not points or not _fork_available():
        return [fn(p) for p in points]

    from concurrent.futures import ProcessPoolExecutor

    parent = active_telemetry()
    footers = parent.show_phase_footers if parent is not None else False
    ctx = multiprocessing.get_context("fork")
    try:
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
    except OSError:
        # Resource limits / sandboxing: degrade to the in-process loop.
        return [fn(p) for p in points]
    with pool:
        futures = [pool.submit(_run_point, fn, p, footers) for p in points]
        results: List[Any] = []
        states: List[Dict] = []
        for fut in futures:  # submission order == point order
            result, state = fut.result()
            results.append(result)
            states.append(state)
    if parent is not None:
        for state in states:
            parent.merge_state(state)
    return results

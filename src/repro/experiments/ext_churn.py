"""Extension experiment: maintenance overhead vs mobility rate.

Table 1's maintenance row, swept: as the per-node move rate grows, what
does each architecture pay to keep its state consistent?

* **Type A** — every move is a leave + re-join: ``2·⌈log₂N⌉`` messages,
  and the old key is orphaned until freshness timers expire.
* **Type B** — one care-of registration per move, but every subsequent
  data packet to the mover pays the triangular detour (deferred cost).
* **Bristle** — one publish (``replication`` messages) plus one LDT
  advertisement (``|R(i)|`` messages) per move; data packets then route
  directly after at most one discovery.

The experiment drives all three with the same Poisson move schedule and
reports messages per virtual-time unit plus the post-churn lookup cost.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.routing import route_with_resolution
from ..overlay.factory import OVERLAY_NAMES, make_overlay
from ..overlay.keyspace import KeySpace
from ..sim.metrics import MetricsRegistry
from ..sim.rng import RngStreams
from ..workloads.churn import ChurnEventType, poisson_churn
from ..workloads.scenarios import build_comparison_scenario
from .common import ResultTable

__all__ = [
    "ChurnOverheadParams",
    "MembershipChurnParams",
    "run_churn_overhead",
    "run_membership_churn",
]


@dataclasses.dataclass(frozen=True)
class ChurnOverheadParams:
    num_stationary: int = 100
    num_mobile: int = 100
    duration: float = 50.0
    move_rates: Sequence[float] = (0.01, 0.05, 0.2)
    lookups: int = 200
    seed: int = 35


def run_churn_overhead(params: Optional[ChurnOverheadParams] = None) -> ResultTable:
    """Maintenance messages and lookup cost across move rates."""
    p = params if params is not None else ChurnOverheadParams()
    table = ResultTable(
        title="Extension — maintenance overhead vs mobility rate",
        columns=[
            "move rate",
            "moves",
            "Type A msgs/unit",
            "Type B msgs/unit",
            "Bristle msgs/unit",
            "Type A delivery",
            "Type B cost",
            "Bristle cost",
        ],
        notes=[
            f"{p.num_stationary}+{p.num_mobile} nodes over {p.duration} time "
            f"units; delivery/cost measured on {p.lookups} post-churn lookups "
            "to pre-churn keys",
        ],
    )
    for rate in p.move_rates:
        scenario = build_comparison_scenario(
            p.num_stationary, p.num_mobile, seed=p.seed
        )
        bristle = scenario.bristle
        bristle.setup_random_registrations()
        schedule = poisson_churn(
            sorted(scenario.mobile_hosts),
            duration=p.duration,
            rng=bristle.rng.spawn(f"churn.{rate}"),
            move_rate=rate,
        )
        known_keys = dict(scenario.type_a.key_of)

        bristle_msgs = 0
        type_a_msgs = 0
        type_b_msgs = 0
        moves = 0
        for event in schedule:
            if event.kind is not ChurnEventType.MOVE:
                continue
            moves += 1
            bristle.now = event.time
            report = bristle.move(event.host, advertise=True)
            bristle_msgs += report.total_messages
            type_a_msgs += scenario.type_a.move(event.host).join_messages
            scenario.type_b.move(event.host)
            type_b_msgs += 1

        # Post-churn lookups (to the keys correspondents learned at t=0).
        gen = bristle.rng.stream("churn.lookups")
        stationary_hosts = sorted(set(known_keys) - scenario.mobile_hosts)
        mobile_hosts = sorted(scenario.mobile_hosts)
        a_ok = 0
        b_costs = []
        bristle_costs = []
        for _ in range(p.lookups):
            src = stationary_hosts[int(gen.integers(len(stationary_hosts)))]
            host = mobile_hosts[int(gen.integers(len(mobile_hosts)))]
            if scenario.type_a.lookup(src, known_keys[host]).reached_intended:
                a_ok += 1
            rb = scenario.type_b.lookup(src, scenario.type_b.key_of[host])
            if rb.delivered:
                b_costs.append(rb.path_cost)
            tr = route_with_resolution(bristle, src, host)
            if tr.success:
                bristle_costs.append(tr.path_cost)
        table.add_row(
            **{
                "move rate": rate,
                "moves": moves,
                "Type A msgs/unit": type_a_msgs / p.duration,
                "Type B msgs/unit": type_b_msgs / p.duration,
                "Bristle msgs/unit": bristle_msgs / p.duration,
                "Type A delivery": a_ok / p.lookups,
                "Type B cost": float(np.mean(b_costs)) if b_costs else float("nan"),
                "Bristle cost": float(np.mean(bristle_costs))
                if bristle_costs
                else float("nan"),
            }
        )
    return table


@dataclasses.dataclass(frozen=True)
class MembershipChurnParams:
    num_nodes: int = 256
    events: int = 200
    seed: int = 47
    overlays: Sequence[str] = OVERLAY_NAMES


def run_membership_churn(
    params: Optional[MembershipChurnParams] = None,
) -> ResultTable:
    """Incremental repair cost of overlay membership churn, per substrate.

    Each overlay absorbs the same seeded join/leave schedule through its
    incremental ``add_node``/``remove_node`` path; the table reports the
    ``overlay.repaired_nodes`` counter — how many members' routing state one
    membership event touches — against the membership size ``N``.  The
    §2.3.3 expectation is an ``O(log N)`` (CAN: ``O(d)``) fraction of the
    overlay, which is what makes per-event repair beat a full rebuild.
    """
    p = params if params is not None else MembershipChurnParams()
    table = ResultTable(
        title="Extension — incremental repair cost under membership churn",
        columns=[
            "overlay",
            "N",
            "events",
            "repairs",
            "repaired nodes",
            "repaired/event",
            "repaired/event/N",
        ],
        notes=[
            f"{p.num_nodes} initial members, {p.events} alternating "
            "leave/join events per overlay; identical key schedule "
            f"(seed {p.seed}) for every substrate",
        ],
    )
    space = KeySpace(bits=32, digit_bits=4)
    for name in p.overlays:
        rng = RngStreams(p.seed)
        keys = space.random_keys(rng, "membership.initial", p.num_nodes)
        extra = space.random_keys(rng, "membership.joiners", p.events)
        joiners = [int(k) for k in extra if int(k) not in set(keys.tolist())]
        overlay = make_overlay(name, space)
        metrics = MetricsRegistry()
        overlay.bind_metrics(metrics)
        overlay.build([int(k) for k in keys])
        gen = rng.stream("membership.schedule")
        members = sorted(int(k) for k in keys)
        performed = 0
        for i in range(p.events):
            if i % 2 == 0 and len(members) > 2:
                victim = members.pop(int(gen.integers(len(members))))
                overlay.remove_node(victim)
                performed += 1
            elif joiners:
                newcomer = joiners.pop()
                overlay.add_node(newcomer)
                members.append(newcomer)
                members.sort()
                performed += 1
        repairs = metrics.counter("overlay.repairs").value
        repaired = metrics.counter("overlay.repaired_nodes").value
        per_event = repaired / performed if performed else 0.0
        table.add_row(
            **{
                "overlay": name,
                "N": p.num_nodes,
                "events": performed,
                "repairs": repairs,
                "repaired nodes": repaired,
                "repaired/event": per_event,
                "repaired/event/N": per_event / p.num_nodes,
            }
        )
    return table

"""Figure 3: per-stationary-node responsibility, member-only vs
non-member-only LDTs.

The paper plots the analytic responsibility values for ``N = 1,048,576``
as M/N grows: ``O((M/(N−M))·(log N)²)`` for the non-member-only protocol
versus ``O((M/(N−M))·log N)`` for Bristle's member-only choice, showing
the non-member-only load "increases exponentially" while member-only
"drastically reduces the responsibility".

Besides the analytic curves this module cross-checks the claim
empirically: it builds actual member-only LDTs over a simulated
population, measures how many location-handling duties land on each
stationary node, and verifies the measured member-only load tracks the
analytic curve's shape.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from ..core.analysis import (
    responsibility_curves,
    responsibility_member_only,
    responsibility_non_member_only,
)
from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.ldt_nonmember import build_non_member_tree
from .common import ResultTable

__all__ = ["run_fig3", "run_fig3_empirical", "run_fig3_tree_sizes", "DEFAULT_FRACTIONS"]

#: The Figure-3 x-axis: M/N stepped linearly.
DEFAULT_FRACTIONS = tuple(round(0.05 * i, 2) for i in range(1, 20))  # 5%..95%


def run_fig3(
    num_nodes: int = 1_048_576,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> ResultTable:
    """The analytic Figure-3 curves (the paper's N = 1,048,576)."""
    curves = responsibility_curves(num_nodes, fractions)
    table = ResultTable(
        title="Figure 3 — responsibility vs M/N (analytic)",
        columns=["M/N (%)", "member-only", "non-member-only", "ratio"],
        notes=[f"N = {num_nodes} (paper: 1,048,576); responsibility = avg location "
               "entries handled per stationary node"],
    )
    for frac, mem, non in zip(fractions, curves["member_only"], curves["non_member_only"]):
        table.add_row(
            **{
                "M/N (%)": round(100 * frac, 1),
                "member-only": float(mem),
                "non-member-only": float(non),
                "ratio": float(non / mem) if mem else math.nan,
            }
        )
    return table


def run_fig3_empirical(
    num_stationary: int = 400,
    mobile_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
    seed: int = 11,
) -> ResultTable:
    """Measured member-only responsibility on real LDTs.

    For each M/N the network is built, registrations derive from the
    mobile layer's state replication, and each stationary node's
    *responsibility* is counted as the number of (mobile-node, duty)
    pairs it carries: location records it stores plus LDT memberships it
    holds.  The analytic member-only value is printed alongside.
    """
    table = ResultTable(
        title="Figure 3 — member-only responsibility (measured)",
        columns=[
            "M/N (%)",
            "measured/node",
            "analytic member-only",
            "analytic non-member-only",
        ],
        notes=[f"{num_stationary} stationary nodes; registrations from overlay state"],
    )
    for frac in mobile_fractions:
        num_mobile = int(round(num_stationary * frac / (1 - frac)))
        n = num_stationary + num_mobile
        cfg = BristleConfig(seed=seed, naming="scrambled", replication=1)
        net = BristleNetwork(cfg, num_stationary, num_mobile, router_count=120)
        net.setup_registrations_from_overlay()
        # Count duties per stationary node: directory records + LDT slots.
        duties: Dict[int, int] = {k: 0 for k in net.stationary_keys}
        for holder, count in net.directory.holder_load().items():
            duties[holder] = duties.get(holder, 0) + count
        for mk in net.mobile_keys:
            for entry in net.nodes[mk].registry_entries():
                if not net.is_mobile(entry.key):
                    duties[entry.key] = duties.get(entry.key, 0) + 1
        measured = float(np.mean(list(duties.values())))
        table.add_row(
            **{
                "M/N (%)": round(100 * frac, 1),
                "measured/node": measured,
                "analytic member-only": responsibility_member_only(n, num_mobile),
                "analytic non-member-only": responsibility_non_member_only(n, num_mobile),
            }
        )
    return table


def run_fig3_tree_sizes(
    num_stationary: int = 300,
    mobile_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
    seed: int = 12,
) -> ResultTable:
    """Member-only vs non-member-only trees, actually built and measured.

    For each M/N both tree kinds are constructed over the same population
    and registries; the table reports the mean participating-node count
    per tree (the paper's ``S(τ)``) and the resulting per-stationary-node
    responsibility (tree slots landing on stationary nodes / stationary
    population) — the measured counterpart of Figure 3's two curves.
    """
    table = ResultTable(
        title="Figure 3 — tree sizes and responsibility (measured, both kinds)",
        columns=[
            "M/N (%)",
            "member tree size",
            "non-member tree size",
            "forwarders/tree",
            "member resp/node",
            "non-member resp/node",
            "resp ratio",
        ],
        notes=[
            f"{num_stationary} stationary nodes; registry = ceil(log2 N); "
            "responsibility = stationary tree slots per stationary node",
        ],
    )
    for frac in mobile_fractions:
        num_mobile = int(round(num_stationary * frac / (1 - frac)))
        cfg = BristleConfig(seed=seed, naming="scrambled", replication=1)
        net = BristleNetwork(cfg, num_stationary, num_mobile, router_count=150)
        net.setup_random_registrations()

        member_sizes: List[int] = []
        non_member_sizes: List[int] = []
        forwarder_counts: List[int] = []
        member_duty: Dict[int, int] = {}
        non_member_duty: Dict[int, int] = {}

        for mk in net.mobile_keys:
            registry_keys = [e.key for e in net.nodes[mk].registry_entries()]
            if not registry_keys:
                continue
            # Member-only tree (Fig 4).
            tree = net.build_ldt_for(mk)
            member_sizes.append(tree.num_members)
            for node in tree.nodes.values():
                if node.level > 0 and not net.is_mobile(node.key):
                    member_duty[node.key] = member_duty.get(node.key, 0) + 1
            # Non-member-only (Scribe-style) tree over the stationary layer.
            nm = build_non_member_tree(mk, registry_keys, net.stationary_layer)
            non_member_sizes.append(nm.size)
            forwarder_counts.append(len(nm.forwarders))
            for key in nm.all_nodes:
                if not net.is_mobile(key):
                    non_member_duty[key] = non_member_duty.get(key, 0) + 1

        member_resp = sum(member_duty.values()) / num_stationary
        non_member_resp = sum(non_member_duty.values()) / num_stationary
        table.add_row(
            **{
                "M/N (%)": round(100 * frac, 1),
                "member tree size": float(np.mean(member_sizes)),
                "non-member tree size": float(np.mean(non_member_sizes)),
                "forwarders/tree": float(np.mean(forwarder_counts)),
                "member resp/node": member_resp,
                "non-member resp/node": non_member_resp,
                "resp ratio": non_member_resp / member_resp if member_resp else math.nan,
            }
        )
    return table

"""Extension experiment: timed LDT advertisement latency.

Figure 8 reports LDT *structure*; this extension measures what the
structure buys in the time domain.  Using the message-level protocol
driver, each mobile node's address update is multicast down its LDT with
per-message latency equal to the underlay shortest-path weight, and the
**makespan** (time until the last registrant holds the new address) is
recorded across capacity mixes — the timed counterpart of the paper's
``O(log_k log N)`` dissemination claim, and the cost of the degenerate
MAX = 1 chains.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..core.protocol import BristleProtocol
from ..sim.engine import Engine
from ..sim.metrics import summarize
from .common import ResultTable

__all__ = ["AdvertisementLatencyParams", "run_advertisement_latency"]


@dataclasses.dataclass(frozen=True)
class AdvertisementLatencyParams:
    num_stationary: int = 60
    num_mobile: int = 40
    registry_size: int = 12
    router_count: int = 150
    max_values: Sequence[int] = (1, 2, 4, 8, 15)
    seed: int = 19


def run_advertisement_latency(
    params: Optional[AdvertisementLatencyParams] = None,
) -> ResultTable:
    """Makespan and per-registrant delay of timed LDT multicasts."""
    p = params if params is not None else AdvertisementLatencyParams()
    table = ResultTable(
        title="Extension — timed LDT advertisement latency vs capacity mix",
        columns=[
            "MAX",
            "mean makespan",
            "p95 makespan",
            "mean depth",
            "messages/wave",
            "makespan vs MAX=15 (x)",
        ],
        notes=[
            f"{p.num_stationary}+{p.num_mobile} nodes, registry "
            f"{p.registry_size}, latency = underlay shortest-path weight",
        ],
    )
    baselines = {}
    for max_cap in p.max_values:
        cfg = BristleConfig(seed=p.seed, naming="scrambled")
        net = BristleNetwork(
            cfg,
            p.num_stationary,
            p.num_mobile,
            router_count=p.router_count,
            max_capacity=max_cap,
        )
        net.setup_random_registrations(registry_size=p.registry_size)
        engine = Engine()
        proto = BristleProtocol(net, engine)
        makespans = []
        depths = []
        messages = []
        for mk in net.mobile_keys:
            tree = net.build_ldt_for(mk)
            wave = proto.advertise(mk, tree=tree)
            engine.run()
            assert wave.complete
            makespans.append(wave.makespan)
            depths.append(tree.depth)
            messages.append(tree.message_count)
        # All percentile/mean reporting flows through the shared summary
        # helper (same NumPy conventions, one code path repo-wide).
        makespan_summary = summarize(makespans)
        baselines[max_cap] = makespan_summary.mean
        table.add_row(
            **{
                "MAX": max_cap,
                "mean makespan": makespan_summary.mean,
                "p95 makespan": makespan_summary.p95,
                "mean depth": summarize(depths).mean,
                "messages/wave": summarize(messages).mean,
                "makespan vs MAX=15 (x)": 0.0,  # filled below
            }
        )
    reference = baselines.get(max(p.max_values), 1.0) or 1.0
    for row in table.rows:
        row["makespan vs MAX=15 (x)"] = row["mean makespan"] / reference
    return table

"""Figure 9: LDT advertisement cost with and without network locality
(§4.3).

Paper setup: Bristle nodes dynamically join a 10,000-router network;
capacities uniform 1..15; for every LDT the per-edge cost is the shortest-
path weight between the edge's endpoints, and the metric is the **average
per-tree per-edge cost** over all trees.  With locality-aware
registration, a mobile node's registrants are network-close, so tree
edges are short; without locality they scatter across the topology and
stay expensive regardless of M/N.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.bristle import BristleNetwork
from ..core.config import BristleConfig
from ..net.underlay import (
    build_underlay,
    cache_stats_delta,
    shared_underlay_cache,
)
from ..sim.metrics import record_cache_stats
from ..sim.rng import derive_seed
from ..sim.telemetry import active_telemetry
from .common import ResultTable, driver_profiler, maybe_add_phase_footer
from .parallel import active_sweep, derive_point_seeds, sweep_map

__all__ = ["Fig9Params", "measure_ldt_costs", "run_fig9"]


@dataclasses.dataclass(frozen=True)
class Fig9Params:
    """Sizing for the Figure-9 sweep.

    The paper grows the Bristle population *into* a fixed 10,000-router
    network ("Bristle nodes are dynamically increased and randomly
    assigned to a network comprising of 10,000 nodes"), so the x-axis
    M/N also increases host density — which is exactly why the
    locality-aware curve improves: a denser pool gives each tree closer
    candidates ("the greater alternative in picking those nodes it is
    interested in").  We therefore keep ``num_stationary`` fixed and add
    mobile nodes to reach each M/N point.
    """

    num_stationary: int = 150
    router_count: int = 1200
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    max_capacity: int = 15
    trees_sampled: Optional[int] = 300  # None → measure every LDT
    seed: int = 9

    @staticmethod
    def paper_scale() -> "Fig9Params":
        """The paper's 10,000-router network (slower; run explicitly)."""
        return Fig9Params(num_stationary=1000, router_count=10000, trees_sampled=500)


def measure_ldt_costs(
    net: BristleNetwork,
    *,
    with_locality: bool,
    trees_sampled: Optional[int] = None,
) -> Dict[str, float]:
    """Average per-tree per-edge cost over the network's LDTs.

    ``with_locality`` selects the registration strategy: the
    network-closest candidates (§4.3's steady state after periodic
    re-joins) versus uniformly random registrants.
    """
    prof = driver_profiler()
    mobile = list(net.mobile_keys)
    if trees_sampled is not None and trees_sampled < len(mobile):
        mobile = net.rng.sample("fig9.trees", mobile, trees_sampled)
    # Every edge endpoint is a member, so the attachment routers of the
    # membership are the exact oracle source set this sweep can touch —
    # batch-compute them once, then registration setup and edge costs are
    # pure cache gathers.
    with prof.phase("warmup"):
        net.prewarm_oracle()
        if with_locality:
            net.setup_local_registrations(only_keys=mobile)
        else:
            net.setup_random_registrations(only_keys=mobile)
    per_tree_means: List[float] = []
    total_edges = 0
    with prof.phase("measure"):
        oracle = net.ldt_cost_oracle
        for mk in mobile:
            if not net.nodes[mk].registry:
                continue
            tree = net.build_ldt_for(mk, locality_tie_break=with_locality)
            costs = tree.edge_costs(oracle)
            if costs:
                per_tree_means.append(float(np.mean(costs)))
                total_edges += len(costs)
    return {
        "per_tree_per_edge_cost": float(np.mean(per_tree_means)) if per_tree_means else math.nan,
        "trees": float(len(per_tree_means)),
        "edges": float(total_edges),
        "cache_stats": net.oracle.cache_stats(),
    }


@dataclasses.dataclass(frozen=True)
class _Fig9Point:
    """One mobility fraction of the Fig-9 sweep.

    Both registration strategies live in the *same* point: the paper's
    paired design builds two networks from one seed (identical topology,
    keys and placement — only registration differs), so the with/without
    variants must share the per-fraction child seed rather than get
    decoupled ones.
    """

    fraction: float
    num_stationary: int
    num_mobile: int
    router_count: int
    max_capacity: int
    trees_sampled: Optional[int]
    underlay_seed: int
    seed: int
    reuse_underlay: bool


def _fig9_point(pt: _Fig9Point) -> Dict[str, object]:
    """Module-level (picklable) per-point worker for :func:`sweep_map`."""
    bundle = (
        shared_underlay_cache().get(pt.underlay_seed, pt.router_count)
        if pt.reuse_underlay
        else build_underlay(pt.underlay_seed, pt.router_count)
    )
    before = bundle.oracle.cache_stats()
    prof = driver_profiler()
    cfg = BristleConfig(seed=pt.seed, naming="scrambled")
    results: Dict[str, object] = {}
    for label, with_locality in (("loc", True), ("rand", False)):
        with prof.phase("build"):
            net = BristleNetwork(
                cfg,
                pt.num_stationary,
                pt.num_mobile,
                underlay=bundle,
                max_capacity=pt.max_capacity,
            )
        results[label] = measure_ldt_costs(
            net, with_locality=with_locality, trees_sampled=pt.trees_sampled
        )
    # One delta for the whole point: the bundle oracle outlives the two
    # networks (and, with reuse, the point itself).
    results["cache_stats"] = cache_stats_delta(before, bundle.oracle.cache_stats())
    return results


def run_fig9(params: Optional[Fig9Params] = None) -> ResultTable:
    """The Figure-9 sweep: cost with vs without locality across M/N.

    Fractions are independent points fanned out via :func:`sweep_map`; the
    underlay bundle is shared across all of them (keyed on
    ``(derive_seed(p.seed, "underlay"), router_count)``) and each fraction
    derives its own child seed, shared by the paired loc/rand builds.
    """
    p = params if params is not None else Fig9Params()
    table = ResultTable(
        title="Figure 9 — LDT cost with / without network locality",
        columns=[
            "M/N (%)",
            "N",
            "with locality",
            "without locality",
            "penalty (x)",
            "trees measured",
        ],
        notes=[
            f"{p.num_stationary} stationary nodes, mobile nodes added per point, "
            f"~{p.router_count}-router transit-stub underlay (paper: 10,000 "
            "routers); cost = mean shortest-path weight per LDT edge, averaged "
            "over trees",
        ],
    )
    cache_totals = {
        "hits": 0.0, "misses": 0.0, "evictions": 0.0,
        "dijkstra_runs": 0.0, "batch_calls": 0.0,
    }
    for frac in p.fractions:
        if not 0.0 < frac < 1.0:
            raise ValueError("fractions must lie in (0, 1)")
    sweep = active_sweep()
    underlay_seed = derive_seed(p.seed, "underlay")
    seeds = derive_point_seeds(p.seed, list(p.fractions))
    if sweep.reuse_underlay:
        # Warm the shared oracle over every attachment point before any
        # fork, so each fraction sees an identical all-hits cache.
        bundle = shared_underlay_cache().get(underlay_seed, p.router_count)
        before = bundle.oracle.cache_stats()
        with driver_profiler().phase("warmup"):
            bundle.oracle.prewarm(bundle.topology.attachment_points())
        for k, v in cache_stats_delta(before, bundle.oracle.cache_stats()).items():
            if k in cache_totals:
                cache_totals[k] += v
    points = [
        _Fig9Point(
            fraction=frac,
            num_stationary=p.num_stationary,
            num_mobile=num_mobile,
            router_count=p.router_count,
            max_capacity=p.max_capacity,
            trees_sampled=p.trees_sampled,
            underlay_seed=underlay_seed,
            seed=seeds[(frac, "")],
            reuse_underlay=sweep.reuse_underlay,
        )
        for frac in p.fractions
        if (num_mobile := int(round(p.num_stationary * frac / (1.0 - frac)))) >= 1
    ]
    results = sweep_map(_fig9_point, points)
    for pt, res in zip(points, results):
        loc, rand = res["loc"], res["rand"]
        for k in cache_totals:
            cache_totals[k] += res["cache_stats"][k]
        cost_loc = loc["per_tree_per_edge_cost"]
        cost_rand = rand["per_tree_per_edge_cost"]
        table.add_row(
            **{
                "M/N (%)": round(100 * pt.fraction, 1),
                "N": pt.num_stationary + pt.num_mobile,
                "with locality": cost_loc,
                "without locality": cost_rand,
                "penalty (x)": cost_rand / cost_loc if cost_loc else math.nan,
                "trees measured": loc["trees"],
            }
        )
    lookups = cache_totals["hits"] + cache_totals["misses"]
    cache_totals["hit_rate"] = (
        cache_totals["hits"] / lookups if lookups else float("nan")
    )
    table.add_cache_footer(cache_totals, label="oracle cache (all points)")
    tel = active_telemetry()
    if tel is not None:
        record_cache_stats(tel.metrics, cache_totals, ratios=("hit_rate",))
    maybe_add_phase_footer(table, ("build", "warmup", "measure"))
    return table

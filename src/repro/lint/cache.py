"""Incremental analysis cache for lint v2.

Per-file analysis (parse + per-file rules + fact extraction) dominates a
lint run; the graph passes over extracted facts are cheap.  So the cache
stores exactly the per-file product — a serialised
:class:`~repro.lint.engine._FileEntry` — keyed by the file's **content
hash**, never its mtime: a rebuilt checkout with identical bytes stays
warm, a one-byte edit misses.

The whole store is additionally keyed by a *tool signature*: a digest of
every ``repro/lint/*.py`` source file plus the fact-schema version.  Any
change to the linter itself (a new rule, a fact-extractor fix) flips the
signature and invalidates everything at once, so stale entries can never
masquerade as fresh analysis.

The store is one JSON file (default ``.repro-lint-cache.json``, see the
CLI) — trivially persisted by ``actions/cache`` in CI.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Set

from .engine import Violation, _FileEntry
from .project import FACTS_VERSION

__all__ = ["CacheStore", "content_digest", "tool_signature", "DEFAULT_CACHE_PATH"]

DEFAULT_CACHE_PATH = ".repro-lint-cache.json"

#: Bumped on incompatible cache-entry layout changes.
CACHE_VERSION = 1


def content_digest(source: str) -> str:
    """Hex digest of one file's content (the per-entry cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def tool_signature() -> str:
    """Digest of the linter's own source — the store-wide invalidator."""
    h = hashlib.sha256()
    h.update(f"facts={FACTS_VERSION};cache={CACHE_VERSION};".encode())
    pkg_dir = os.path.dirname(os.path.abspath(__file__))
    for name in sorted(os.listdir(pkg_dir)):
        if not name.endswith(".py"):
            continue
        h.update(name.encode())
        with open(os.path.join(pkg_dir, name), "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()


def _violation_to_dict(v: Violation) -> Dict[str, object]:
    return v.as_dict()


def _violation_from_dict(data: Dict[str, object]) -> Violation:
    chain = data.get("chain")
    return Violation(
        rule=str(data["rule"]),
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[arg-type]
        col=int(data["col"]),  # type: ignore[arg-type]
        message=str(data["message"]),
        chain=tuple(str(c) for c in chain) if isinstance(chain, list) else None,
    )


def _entry_to_dict(entry: _FileEntry) -> Dict[str, object]:
    return {
        "path": entry.path,
        "violations_by_rule": {
            code: [_violation_to_dict(v) for v in vs]
            for code, vs in sorted(entry.violations_by_rule.items())
        },
        "problems": [_violation_to_dict(v) for v in entry.problems],
        "suppressions": {
            str(line): sorted(codes)
            for line, codes in sorted(entry.suppressions.items())
        },
        "facts": entry.facts,
    }


def _entry_from_dict(data: Dict[str, object]) -> _FileEntry:
    raw_rules = data["violations_by_rule"]
    assert isinstance(raw_rules, dict)
    raw_problems = data["problems"]
    assert isinstance(raw_problems, list)
    raw_supp = data["suppressions"]
    assert isinstance(raw_supp, dict)
    facts = data.get("facts")
    suppressions: Dict[int, Set[str]] = {
        int(line): {str(c) for c in codes} for line, codes in raw_supp.items()
    }
    return _FileEntry(
        path=str(data["path"]),
        violations_by_rule={
            str(code): [_violation_from_dict(v) for v in vs]
            for code, vs in raw_rules.items()
        },
        problems=[_violation_from_dict(v) for v in raw_problems],
        suppressions=suppressions,
        facts=facts if isinstance(facts, dict) else None,
    )


class CacheStore:
    """Content-hash-keyed store of per-file analysis entries."""

    def __init__(self, path: str, signature: str) -> None:
        self.path = path
        self.signature = signature
        #: file path → {"digest": ..., "entry": serialised _FileEntry}
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False

    @classmethod
    def load(cls, path: str) -> "CacheStore":
        """Load a store; a missing/corrupt file or a signature mismatch
        (the linter itself changed) yields an empty store."""
        signature = tool_signature()
        store = cls(path, signature)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return store
        if (
            not isinstance(data, dict)
            or data.get("signature") != signature
            or not isinstance(data.get("entries"), dict)
        ):
            store._dirty = True  # rewrite with the fresh signature
            return store
        store._entries = data["entries"]
        return store

    def get(self, path: str, digest: str) -> Optional[_FileEntry]:
        """The cached entry for ``path`` iff its content still matches."""
        slot = self._entries.get(path)
        if slot is None or slot.get("digest") != digest:
            return None
        entry = slot.get("entry")
        if not isinstance(entry, dict):
            return None
        try:
            return _entry_from_dict(entry)
        except (KeyError, TypeError, ValueError, AssertionError):
            return None

    def put(self, path: str, digest: str, entry: _FileEntry) -> None:
        """Record ``entry`` as the analysis of ``path`` at ``digest``."""
        self._entries[path] = {"digest": digest, "entry": _entry_to_dict(entry)}
        self._dirty = True

    def save(self) -> None:
        """Persist (atomically: temp file + rename) when anything changed."""
        if not self._dirty:
            return
        payload = {
            "kind": "repro-lint-cache",
            "version": CACHE_VERSION,
            "signature": self.signature,
            "entries": self._entries,
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        os.replace(tmp, self.path)
        self._dirty = False

"""The rule catalogue: nine repo-specific determinism/invariant checks.

Each rule is a small :class:`ast`-walking check with a stable ``BRS``
code.  The catalogue (with the paper-level rationale for every rule)
lives in docs/static-analysis.md; in brief:

========  ==========================================================
BRS001    no unseeded randomness (stdlib ``random``, legacy
          ``np.random.*``) — all draws flow through ``repro.sim.rng``
BRS002    no wall-clock reads inside virtual-time code
          (``repro.core|overlay|experiments``)
BRS003    telemetry spans: ``span_begin`` paired with ``span_end``
          and gated on ``tracer.enabled``
BRS004    fork-safety: ``sweep_map`` worker functions must not mutate
          process-global caches
BRS005    RNG populations must be order-stable (no sets / raw dict
          views fed to draw helpers)
BRS006    seed discipline: derive child seeds via
          ``derive_seed``/``derive_point_seed``, never arithmetic
BRS007    incremental repair hooks must not hide a full rebuild
          (no ``_reset_state()`` in ``_on_add``/``_on_remove``)
BRS008    no unbounded per-sample lists in metric recording methods
BRS009    columnar kernel modules stay vectorised: no per-row Python
          ``for`` loops over membership arrays
========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .engine import FileContext, Violation

__all__ = ["Rule", "RULES"]


class Rule:
    """Base: one code, one name, one ``check`` generator."""

    code: str = ""
    name: str = ""
    summary: str = ""
    #: Per-file rules see one :class:`FileContext`; the whole-program
    #: rules (scope ``"project"``) live in :mod:`repro.lint.wholeprogram`.
    scope: str = "file"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield every violation of this rule in ``ctx``'s tree."""
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute chain rooted at a Name, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_function_body(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _ImportTable:
    """What the file binds its randomness/clock modules to."""

    def __init__(self, tree: ast.Module) -> None:
        self.random_modules: Set[str] = set()  # import random [as r]
        self.random_functions: Set[str] = set()  # from random import shuffle
        self.numpy_modules: Set[str] = set()  # import numpy [as np]
        self.np_random_modules: Set[str] = set()  # from numpy import random
        #: bound name → original: from numpy.random import default_rng [as x]
        self.np_random_functions: Dict[str, str] = {}
        self.time_modules: Set[str] = set()
        self.time_functions: Set[str] = set()  # from time import time, ...
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()  # from datetime import datetime
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(bound)
                    elif alias.name == "numpy":
                        self.numpy_modules.add(bound)
                    elif alias.name == "numpy.random":
                        # ``import numpy.random`` binds ``numpy``.
                        self.numpy_modules.add(bound)
                    elif alias.name == "time":
                        self.time_modules.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "random":
                        self.random_functions.add(bound)
                    elif node.module == "numpy" and alias.name == "random":
                        self.np_random_modules.add(bound)
                    elif node.module == "numpy.random":
                        self.np_random_functions[bound] = alias.name
                    elif node.module == "time":
                        self.time_functions.add(bound)
                    elif node.module == "datetime" and alias.name in (
                        "datetime",
                        "date",
                    ):
                        self.datetime_classes.add(bound)


# ----------------------------------------------------------------------
# BRS001 — unseeded randomness
# ----------------------------------------------------------------------
#: Legacy ``numpy.random`` module-level API (global, implicitly seeded).
_NP_LEGACY = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "exponential",
    "poisson",
    "binomial",
}


class UnseededRandomness(Rule):
    """BRS001: stdlib ``random`` / legacy ``np.random`` calls are banned —
    every draw flows through the named, seeded ``RngStreams``."""

    code = "BRS001"
    name = "unseeded-randomness"
    summary = (
        "stdlib random / legacy np.random draws bypass the shared seeded "
        "streams in repro.sim.rng"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag stdlib/legacy-numpy draws and seedless ``default_rng()``."""
        imports = _ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in imports.random_functions:
                yield self.violation(
                    ctx,
                    node,
                    f"call to stdlib random.{func.id}: draw through a named "
                    "RngStreams stream instead",
                )
                continue
            if isinstance(func, ast.Name) and func.id in imports.np_random_functions:
                original = imports.np_random_functions[func.id]
                if original in _NP_LEGACY:
                    yield self.violation(
                        ctx,
                        node,
                        f"legacy numpy.random.{original} uses hidden global "
                        "state: use RngStreams (PCG64 Generator) streams",
                    )
                elif original == "default_rng" and not (node.args or node.keywords):
                    yield self.violation(
                        ctx,
                        node,
                        "default_rng() without a seed is nondeterministic: "
                        "derive the seed via repro.sim.rng.derive_seed",
                    )
                continue
            dotted = dotted_name(func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] in imports.random_modules and len(parts) == 2:
                yield self.violation(
                    ctx,
                    node,
                    f"call to stdlib {dotted}: draw through a named "
                    "RngStreams stream instead",
                )
            elif (
                len(parts) == 3
                and parts[0] in imports.numpy_modules
                and parts[1] == "random"
            ) or (len(parts) == 2 and parts[0] in imports.np_random_modules):
                attr = parts[-1]
                if attr in _NP_LEGACY:
                    yield self.violation(
                        ctx,
                        node,
                        f"legacy numpy.random.{attr} uses hidden global "
                        "state: use RngStreams (PCG64 Generator) streams",
                    )
                elif attr == "default_rng" and not (node.args or node.keywords):
                    yield self.violation(
                        ctx,
                        node,
                        "default_rng() without a seed is nondeterministic: "
                        "derive the seed via repro.sim.rng.derive_seed",
                    )


# ----------------------------------------------------------------------
# BRS002 — wall-clock reads in virtual-time code
# ----------------------------------------------------------------------
#: Modules whose whole point is wall-clock measurement.
_WALLCLOCK_ALLOWED_MODULES = (
    ("repro", "sim", "profile"),
    ("repro", "sim", "trace"),
)

_TIME_FUNCS = {"time", "monotonic", "perf_counter", "process_time", "time_ns"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}


class WallClockInVirtualTime(Rule):
    """BRS002: no host-clock reads inside the virtual-time packages
    (``repro.core`` / ``repro.overlay`` / ``repro.experiments``)."""

    code = "BRS002"
    name = "wall-clock-in-virtual-time"
    summary = (
        "core/overlay/experiments code must use virtual time (net.now / "
        "engine.now), not the host clock"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag ``time.*``/``datetime.*`` clock reads in scoped packages."""
        if not ctx.in_packages("core", "overlay", "experiments"):
            return
        if any(ctx.is_module(*m) for m in _WALLCLOCK_ALLOWED_MODULES):
            return
        imports = _ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in imports.time_functions:
                if func.id in _TIME_FUNCS:
                    yield self.violation(
                        ctx,
                        node,
                        f"wall-clock read time.{func.id}() in virtual-time "
                        "code: use the simulation clock",
                    )
                continue
            dotted = dotted_name(func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) == 2
                and parts[0] in imports.time_modules
                and parts[1] in _TIME_FUNCS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {dotted}() in virtual-time code: use "
                    "the simulation clock",
                )
            elif parts[-1] in _DATETIME_FUNCS and (
                parts[0] in imports.datetime_modules
                or parts[0] in imports.datetime_classes
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {dotted}() in virtual-time code: use "
                    "the simulation clock",
                )


# ----------------------------------------------------------------------
# BRS003 — telemetry span pairing and gating
# ----------------------------------------------------------------------
def _contains_span_begin(node: ast.AST) -> bool:
    return any(
        isinstance(c, ast.Call)
        and isinstance(c.func, ast.Attribute)
        and c.func.attr == "span_begin"
        for c in ast.walk(node)
    )


def _span_id_escapes(fn: ast.AST, span_vars: Set[str]) -> bool:
    """True when a span-id variable is returned or handed to another call
    (the ``_record_route_telemetry(net, trace, span_id)`` pattern) —
    closing the span became that callee's responsibility."""
    if not span_vars:
        return False
    for child in ast.walk(fn):
        if isinstance(child, ast.Return) and child.value is not None:
            if any(
                isinstance(n, ast.Name) and n.id in span_vars
                for n in ast.walk(child.value)
            ):
                return True
        if isinstance(child, ast.Call):
            callee = (
                child.func.attr
                if isinstance(child.func, ast.Attribute)
                else getattr(child.func, "id", None)
            )
            if callee in ("span_begin", "span_end"):
                continue
            for arg in list(child.args) + [kw.value for kw in child.keywords]:
                if isinstance(arg, ast.Name) and arg.id in span_vars:
                    return True
    return False


class SpanDiscipline(Rule):
    """BRS003: every ``span_begin`` pairs with a ``span_end`` (or hands
    its span id off) and is gated on ``tracer.enabled``."""

    code = "BRS003"
    name = "span-discipline"
    summary = (
        "raw span_begin must be paired with span_end in the same function "
        "and gated on tracer.enabled"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag unpaired or ungated ``span_begin`` calls per function."""
        # The convention binds library code; the tracer's implementation
        # and its direct unit tests exercise the raw primitives on purpose.
        if not ctx.module or ctx.module[0] != "repro":
            return
        if ctx.is_module("repro", "sim", "trace"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            begins: List[ast.Call] = []
            gated = False
            span_vars: Set[str] = set()
            for child in _walk_function_body(node):
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    if child.func.attr == "span_begin":
                        begins.append(child)
                if isinstance(child, ast.Attribute) and child.attr in (
                    "enabled",
                    "tracing",
                ):
                    gated = True
                if isinstance(child, ast.Assign) and _contains_span_begin(
                    child.value
                ):
                    for tgt in child.targets:
                        if isinstance(tgt, ast.Name):
                            span_vars.add(tgt.id)
            if not begins:
                continue
            # span_end may live in a nested completion callback (async
            # spans), so the full subtree counts as "same function" here.
            ends = sum(
                1
                for child in ast.walk(node)
                if isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "span_end"
            )
            if ends == 0 and not _span_id_escapes(node, span_vars):
                yield self.violation(
                    ctx,
                    begins[0],
                    f"span_begin in {node.name}() has no matching span_end "
                    "in the same function (span leaks open)",
                )
            if not gated:
                yield self.violation(
                    ctx,
                    begins[0],
                    f"span_begin in {node.name}() is not gated on "
                    "tracer.enabled/telemetry.tracing (PR-2 convention: "
                    "expensive accounting only when tracing)",
                )


# ----------------------------------------------------------------------
# BRS004 — fork-safety of sweep workers
# ----------------------------------------------------------------------
#: Mutating attribute calls on shared caches that a forked worker's
#: copy-on-write memory silently swallows (or that skew jobs-invariant
#: cache accounting).
_WORKER_MUTATORS = {"clear", "prewarm", "prewarm_oracle"}


class ForkUnsafeWorker(Rule):
    """BRS004: functions dispatched through ``sweep_map`` must not mutate
    process-global caches (fork gives workers copy-on-write snapshots)."""

    code = "BRS004"
    name = "fork-unsafe-worker"
    summary = (
        "sweep_map workers must not mutate process-global caches; fork "
        "gives them a copy-on-write snapshot (prewarm in the parent)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag global-state mutation inside ``sweep_map`` worker bodies."""
        worker_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                callee = dotted_name(node.func)
                if callee is not None and callee.split(".")[-1] == "sweep_map":
                    worker_names.add(node.args[0].id)
        if not worker_names:
            return
        functions: Dict[str, ast.FunctionDef] = {
            n.name: n
            for n in ctx.tree.body
            if isinstance(n, ast.FunctionDef)
        }
        for name in sorted(worker_names):
            fn = functions.get(name)
            if fn is None:
                continue
            for child in _walk_function_body(fn):
                if isinstance(child, ast.Global):
                    yield self.violation(
                        ctx,
                        child,
                        f"worker {name}() mutates module globals "
                        f"({', '.join(child.names)}): lost on fork, racy "
                        "in-process",
                    )
                elif (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in _WORKER_MUTATORS
                ):
                    yield self.violation(
                        ctx,
                        child,
                        f"worker {name}() calls .{child.func.attr}() — "
                        "mutate shared caches in the parent before the "
                        "fork, not per worker",
                    )


# ----------------------------------------------------------------------
# BRS005 — unordered populations feeding seeded draws
# ----------------------------------------------------------------------
#: Draw helpers whose *population argument* ordering determines which
#: element a given seeded draw lands on.
_DRAW_METHODS = {"choice", "sample", "shuffled", "shuffle", "permutation"}
_DICT_VIEWS = {"keys", "values", "items"}


class UnorderedDrawPopulation(Rule):
    """BRS005: populations handed to RNG draw helpers must have a
    deterministic iteration order (no sets / raw dict views)."""

    code = "BRS005"
    name = "unordered-draw-population"
    summary = (
        "sets / raw dict views fed to RNG draw helpers make seeded draws "
        "order-dependent: wrap the population in sorted(...)"
    )

    def _unordered_reason(self, arg: ast.AST) -> Optional[str]:
        """Why ``arg`` is an unordered population, or ``None`` if it isn't."""
        if isinstance(arg, (ast.Set, ast.SetComp)):
            return "a set expression"
        if isinstance(arg, ast.Call):
            if isinstance(arg.func, ast.Name) and arg.func.id in (
                "set",
                "frozenset",
            ):
                return f"a {arg.func.id}(...) value"
            if (
                isinstance(arg.func, ast.Attribute)
                and arg.func.attr in _DICT_VIEWS
            ):
                return f"a raw .{arg.func.attr}() view"
        return None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag unordered populations in draw-helper arguments."""
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DRAW_METHODS
            ):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                reason = self._unordered_reason(arg)
                if reason is not None:
                    yield self.violation(
                        ctx,
                        arg,
                        f"{reason} is passed to .{node.func.attr}(): "
                        "iteration order is not deterministic input — "
                        "sort the population first",
                    )


# ----------------------------------------------------------------------
# BRS006 — seed arithmetic
# ----------------------------------------------------------------------
#: Modules that implement the blessed derivation (splitmix64 mixing).
_SEED_ALLOWED_MODULES = (
    ("repro", "sim", "rng"),
    ("repro", "experiments", "parallel"),
)

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Mod, ast.FloorDiv)


def _mentions_seed(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "seed" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "seed" in node.attr.lower()
    if isinstance(node, ast.BinOp):
        return _mentions_seed(node.left) or _mentions_seed(node.right)
    if isinstance(node, ast.Call):
        # ``int(seed)``-style coercions keep the taint.
        return any(_mentions_seed(a) for a in node.args)
    return False


def _is_string_expr(node: ast.AST) -> bool:
    """Heuristic for text building (``"seed serial (" + SEED_REV``):
    string constants and f-strings are labels, not seed values."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp):
        return _is_string_expr(node.left) or _is_string_expr(node.right)
    return False


class SeedArithmetic(Rule):
    """BRS006: child seeds come from ``derive_seed``/``derive_point_seed``
    (splitmix64 mixing), never from raw arithmetic on a seed."""

    code = "BRS006"
    name = "seed-arithmetic"
    summary = (
        "raw seed+i / seed*k derivations collide across overlapping "
        "sweeps: use derive_seed / derive_point_seed (splitmix64 mixing)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag the outermost arithmetic expression over a seed value."""
        if any(ctx.is_module(*m) for m in _SEED_ALLOWED_MODULES):
            return
        # Recurse manually so only the outermost offending expression is
        # reported (not every sub-BinOp of it).
        def visit(node: ast.AST) -> Iterator[Violation]:
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, _ARITH_OPS)
                and not _is_string_expr(node)
                and (_mentions_seed(node.left) or _mentions_seed(node.right))
            ):
                yield self.violation(
                    ctx,
                    node,
                    "arithmetic on a seed value: child seeds from adjacent "
                    "integers correlate and collide — derive them with "
                    "derive_seed / derive_point_seed",
                )
                return
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        yield from visit(ctx.tree)


# ----------------------------------------------------------------------
# BRS007 — full rebuild hiding inside an incremental repair hook
# ----------------------------------------------------------------------
_REPAIR_HOOKS = {"_on_add", "_on_remove"}


class RebuildInRepairHook(Rule):
    """BRS007: overlay ``_on_add``/``_on_remove`` overrides must repair
    incrementally — calling ``_reset_state()`` there reintroduces the
    O(N) per-event rebuild the churn path was optimised away from.  Only
    the base-class fallback (``repro/overlay/base.py``) may do so."""

    code = "BRS007"
    name = "rebuild-in-repair-hook"
    summary = (
        "_on_add/_on_remove overrides must not call _reset_state(): that "
        "is a hidden full rebuild per churn event (base.py fallback only)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag ``self._reset_state()`` calls inside repair-hook bodies."""
        if ctx.is_module("repro", "overlay", "base"):
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _REPAIR_HOOKS
            ):
                continue
            for child in _walk_function_body(node):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "_reset_state"
                ):
                    yield self.violation(
                        ctx,
                        child,
                        f"{node.name}() calls _reset_state(): a full O(N) "
                        "rebuild per churn event — repair the affected "
                        "members in place (or defer to super() explicitly)",
                    )


# ----------------------------------------------------------------------
# BRS008 — unbounded per-sample accumulation in a metric class
# ----------------------------------------------------------------------
#: Method names that record one observation per event; a list growing
#: inside one of these grows with the event count, not the node count.
_RECORD_METHODS = {"observe", "observe_many", "record", "add_sample", "sample"}

#: The one allow-listed accumulator: ``Histogram``'s exact-percentile
#: oracle in :mod:`repro.sim.metrics` (kept deliberately, as the parity
#: reference for the O(1)-memory quantile sketch).
_SAMPLE_LIST_ALLOWED_MODULES = (("repro", "sim", "metrics"),)


def _empty_list_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attribute names bound to ``[]`` / ``list()`` in ``__init__``."""
    attrs: Set[str] = set()
    for fn in cls.body:
        if not (
            isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
            and fn.name == "__init__"
        ):
            continue
        for node in _walk_function_body(fn):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            is_empty_list = (
                isinstance(value, ast.List) and not value.elts
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list"
                and not value.args
                and not value.keywords
            )
            if not is_empty_list:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return attrs


class UnboundedSampleList(Rule):
    """BRS008: metric-style classes must not grow a per-sample list inside
    their recording methods — memory then scales with the event count.
    Use the fixed-memory :class:`repro.sim.metrics.QuantileSketch` (or a
    bounded ``deque(maxlen=...)``); the exact-oracle ``Histogram`` path in
    ``repro.sim.metrics`` is the single allow-listed exception."""

    code = "BRS008"
    name = "unbounded-sample-list"
    summary = (
        "per-sample list.append/extend inside observe/record methods grows "
        "without bound: use QuantileSketch or a bounded deque "
        "(repro/sim/metrics.py exact oracle only)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag ``self.<list-attr>.append/extend`` in recording methods."""
        if any(ctx.is_module(*m) for m in _SAMPLE_LIST_ALLOWED_MODULES):
            return
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            list_attrs = _empty_list_attrs(cls)
            if not list_attrs:
                continue
            for fn in cls.body:
                if not (
                    isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and fn.name in _RECORD_METHODS
                ):
                    continue
                for node in _walk_function_body(fn):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("append", "extend")
                    ):
                        continue
                    target = node.func.value
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in list_attrs
                    ):
                        yield self.violation(
                            ctx,
                            node,
                            f"{cls.name}.{fn.name}() grows self."
                            f"{target.attr} per sample: unbounded memory — "
                            "use QuantileSketch / a bounded deque(maxlen=...)",
                        )


# ----------------------------------------------------------------------
# BRS009 — per-row Python loops inside columnar kernel modules
# ----------------------------------------------------------------------
#: Modules that hold the struct-of-arrays kernels; per-row loops there
#: defeat the engine's whole point.
_COLUMNAR_KERNEL_MODULES = (
    ("repro", "sim", "columnar"),
    ("repro", "core", "ldt_forest"),
)

#: Iterable-name fragments that mean "one element per member": looping
#: such an array in Python scales the interpreter cost with N.
_MEMBERSHIP_NAME_TOKENS = ("keys", "holders", "members")


def _per_row_iter_reason(it: ast.AST) -> Optional[str]:
    """Why iterating ``it`` is a per-row walk, or ``None`` when it isn't.

    Flags ``range(len(...))`` index walks, ``.tolist()``
    materialisations, and direct iteration over membership-named
    arrays (``keys``, ``holders``, ``members``).
    """
    if (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Name)
        and it.func.id == "range"
        and any(
            isinstance(a, ast.Call)
            and isinstance(a.func, ast.Name)
            and a.func.id == "len"
            for a in it.args
        )
    ):
        return "a range(len(...)) index walk"
    if (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Attribute)
        and it.func.attr == "tolist"
    ):
        return "a .tolist() materialisation"
    name = None
    if isinstance(it, ast.Name):
        name = it.id
    elif isinstance(it, ast.Attribute):
        name = it.attr
    if name is not None and any(
        tok in name.lower() for tok in _MEMBERSHIP_NAME_TOKENS
    ):
        return f"iteration over membership array {name!r}"
    return None


class PerRowColumnarLoop(Rule):
    """BRS009: columnar kernel modules must stay vectorised.  A Python
    ``for`` statement walking a membership-scale array — a
    ``range(len(...))`` index walk, a ``.tolist()`` materialisation, or
    direct iteration over a ``*keys``/``*holders``/``*members`` iterable
    — reintroduces the O(N)-interpreter-ops-per-event cost the
    struct-of-arrays engine exists to remove.  Canonical row exports
    (object-model parity bridges) carry explicit suppressions."""

    code = "BRS009"
    name = "per-row-columnar-loop"
    summary = (
        "per-row Python for-loop over a membership array inside a "
        "columnar kernel module: express it as a numpy kernel "
        "(searchsorted / boolean masks / reductions) instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag per-row ``for`` statements in columnar kernel modules."""
        if not any(ctx.is_module(*m) for m in _COLUMNAR_KERNEL_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            reason = _per_row_iter_reason(node.iter)
            if reason is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"{reason} in a columnar kernel module runs O(N) "
                    "interpreter ops per event: vectorise it "
                    "(searchsorted / boolean masks / reductions)",
                )


#: Registry: code → rule instance, in code order.
RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        UnseededRandomness(),
        WallClockInVirtualTime(),
        SpanDiscipline(),
        ForkUnsafeWorker(),
        UnorderedDrawPopulation(),
        SeedArithmetic(),
        RebuildInRepairHook(),
        UnboundedSampleList(),
        PerRowColumnarLoop(),
    )
}

"""Baseline ratchet for lint v2.

A baseline file records the *known* violations of a tree at one moment,
as line-number-independent fingerprints ``(rule, path, message)``.  With
``--baseline`` the engine excuses exactly those — each fingerprint
forgives as many hits as it was recorded with, no more — so a new rule
can land enforcing-by-default while the existing debt is paid down
incrementally.  The ratchet works both ways:

* a violation **not** in the baseline still fails the run (no new debt);
* a baseline entry that no longer fires is reported as *stale* so the
  file shrinks monotonically (regenerate with ``--write-baseline``).

An empty baseline (``entries: []``) is the steady state this repo
commits: the tree lints clean, and any future ratchet starts from an
explicit, reviewed file.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from .engine import LintReport, Violation

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def load_baseline(path: str) -> List[Fingerprint]:
    """Fingerprints recorded in ``path``; a missing file is an empty
    baseline (nothing excused), a malformed one raises ``ValueError``."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise ValueError(f"{path}: not a repro-lint baseline file")
    out: List[Fingerprint] = []
    for entry in data["entries"]:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: malformed baseline entry: {entry!r}")
        out.append(
            (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
        )
    return out


def apply_baseline(report: LintReport, entries: List[Fingerprint]) -> None:
    """Split ``report.violations`` against the baseline, in place.

    Matched violations move to ``report.baselined``; baseline entries
    with no matching violation land in ``report.stale_baseline``.
    Multiplicity counts: a fingerprint recorded twice excuses two hits.
    """
    budget: Dict[Fingerprint, int] = {}
    for fp in entries:
        budget[fp] = budget.get(fp, 0) + 1
    kept: List[Violation] = []
    excused: List[Violation] = []
    for v in report.violations:
        fp = v.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            excused.append(v)
        else:
            kept.append(v)
    report.violations = kept
    report.baselined = excused
    report.stale_baseline = [
        {"rule": fp[0], "path": fp[1], "message": fp[2]}
        for fp, left in sorted(budget.items())
        for _ in range(left)
    ]


def write_baseline(path: str, report: LintReport) -> int:
    """Record the report's violations (current + already-baselined) as
    the new baseline; returns the entry count.  Creates parent dirs."""
    fingerprints = sorted(
        v.fingerprint() for v in (*report.violations, *report.baselined)
    )
    payload = {
        "kind": "repro-lint-baseline",
        "version": BASELINE_VERSION,
        "entries": [
            {"rule": fp[0], "path": fp[1], "message": fp[2]}
            for fp in fingerprints
        ],
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return len(fingerprints)

"""Repo-specific static analysis: the determinism & protocol-invariant linter.

``python -m repro.lint`` runs ~6 AST-based checks (stdlib :mod:`ast` only)
that encode the invariants this reproduction's results rest on — seeded
randomness, virtual-time discipline, telemetry span pairing, fork-safety
of sweep workers, order-stable RNG populations, and the per-point seed
derivation rules.  See docs/static-analysis.md for the rule catalogue and
the rationale tying each rule back to the paper.

Violations can be suppressed inline with a written reason::

    datetime.now(...)  # repro-lint: disable=BRS002 provenance timestamp

The suppression *must* carry a reason; a bare ``disable=`` comment is
itself reported (BRS000).
"""

from .engine import (
    LintReport,
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    report_as_dict,
)
from .rules import RULES, Rule

__all__ = [
    "LintReport",
    "Violation",
    "Rule",
    "RULES",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "report_as_dict",
]

"""Repo-specific static analysis: the determinism & protocol-invariant linter.

``python -m repro.lint`` runs thirteen AST-based checks (stdlib
:mod:`ast` only) that encode the invariants this reproduction's results
rest on — seeded randomness, virtual-time discipline, telemetry span
pairing, fork-safety of sweep workers, order-stable RNG populations, and
the per-point seed derivation rules.

v2 adds a whole-program layer: one pass over ``src/repro`` builds a
project model (symbol table, import graph, approximate call graph —
:mod:`repro.lint.project`) that powers four interprocedural rules
(:mod:`repro.lint.wholeprogram`): RNG-stream provenance against the
``repro.sim.rng.STREAMS`` registry (BRS010), call-graph-transitive
virtual-time purity with full offending chains (BRS011), metric-name
consistency against ``repro.sim.metrics.METRIC_NAMES`` (BRS012), and
columnar column ownership (BRS013).  Per-file analysis is cached by
content hash (:mod:`repro.lint.cache`) and known debt can be ratcheted
with a baseline file (:mod:`repro.lint.baseline`).

See docs/static-analysis.md for the rule catalogue and the rationale
tying each rule back to the paper.

Violations can be suppressed inline with a written reason::

    datetime.now(...)  # repro-lint: disable=BRS002 provenance timestamp

The suppression *must* carry a reason; a bare ``disable=`` comment is
itself reported (BRS000).
"""

from .engine import (
    REPORT_SCHEMA_VERSION,
    LintReport,
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    report_as_dict,
)
from .project import ModuleFacts, Project, extract_facts
from .rules import RULES, Rule
from .wholeprogram import PROJECT_RULES, ProjectRule

__all__ = [
    "LintReport",
    "Violation",
    "Rule",
    "RULES",
    "ProjectRule",
    "PROJECT_RULES",
    "ModuleFacts",
    "Project",
    "extract_facts",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "report_as_dict",
    "REPORT_SCHEMA_VERSION",
]

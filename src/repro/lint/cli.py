"""``python -m repro.lint`` — run the determinism linter over paths.

Exit codes: 0 clean, 1 violations found, 2 usage error.  ``--format
json`` prints the machine-readable report (the same payload ``--output``
writes for CI artifacts); the default text format prints one
editor-clickable line per violation (whole-program violations carry
their full call chain as indented hop lines) plus a summary.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .baseline import write_baseline
from .cache import DEFAULT_CACHE_PATH
from .engine import lint_paths, report_as_dict
from .rules import RULES
from .wholeprogram import PROJECT_RULES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST checks for the determinism and protocol "
        "invariants this reproduction depends on (see "
        "docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (json = the CI report payload; with "
        "--list-rules, the machine-readable catalogue)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact); parent "
        "directories are created",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE_PATH,
        metavar="FILE",
        help="incremental analysis cache file, keyed by content hash "
        f"(default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="excuse the violations fingerprinted in FILE (the ratchet); "
        "violations not in the baseline still fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the run's violations into --baseline FILE and exit 0 "
        "(requires --baseline)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit (honours --format json)",
    )
    return parser


def _codes(arg: Optional[str]) -> Optional[List[str]]:
    if arg is None:
        return None
    return [c.strip() for c in arg.split(",") if c.strip()]


def _list_rules(fmt: str) -> int:
    catalogue = [
        {
            "code": code,
            "name": rule.name,
            "scope": rule.scope,
            "summary": rule.summary,
        }
        for code, rule in sorted({**RULES, **PROJECT_RULES}.items())
    ]
    if fmt == "json":
        print(json.dumps({"kind": "repro-lint-rules", "rules": catalogue}, indent=2))
    else:
        for entry in catalogue:
            print(
                f"{entry['code']}  [{entry['scope']}] "
                f"{entry['name']}: {entry['summary']}"
            )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code (0/1/2)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules(args.format)
    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    try:
        report = lint_paths(
            args.paths,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            cache_path=None if args.no_cache else args.cache,
            baseline_path=None if args.write_baseline else args.baseline,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        count = write_baseline(args.baseline, report)
        print(f"repro.lint: wrote {count} baseline entr{'y' if count == 1 else 'ies'} to {args.baseline}")
        return 0
    payload = report_as_dict(report)
    if args.output:
        parent = os.path.dirname(os.path.abspath(args.output))
        os.makedirs(parent, exist_ok=True)
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for violation in report.violations:
            print(violation.render())
        counts = ", ".join(
            f"{code}×{n}" for code, n in report.counts().items()
        )
        status = "clean" if report.clean else counts
        extras = []
        if report.baselined:
            extras.append(f"{len(report.baselined)} baselined")
        if report.stale_baseline:
            extras.append(f"{len(report.stale_baseline)} stale baseline entries")
        suffix = f" ({'; '.join(extras)})" if extras else ""
        print(
            f"repro.lint: {report.files} files, "
            f"{len(report.violations)} violation(s) [{status}]{suffix} "
            f"[cache {report.cache_hits} hit / {report.cache_misses} miss]"
        )
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

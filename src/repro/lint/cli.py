"""``python -m repro.lint`` — run the determinism linter over paths.

Exit codes: 0 clean, 1 violations found, 2 usage error.  ``--format
json`` prints the machine-readable report (the same payload ``--output``
writes for CI artifacts); the default text format prints one
editor-clickable line per violation plus a summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .engine import lint_paths, report_as_dict
from .rules import RULES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST checks for the determinism and protocol "
        "invariants this reproduction depends on (see "
        "docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (json = the CI report payload)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _codes(arg: Optional[str]) -> Optional[List[str]]:
    if arg is None:
        return None
    return [c.strip() for c in arg.split(",") if c.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code (0/1/2)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            print(f"{code}  {rule.name}: {rule.summary}")
        return 0
    try:
        report = lint_paths(
            args.paths, select=_codes(args.select), ignore=_codes(args.ignore)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = report_as_dict(report)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for violation in report.violations:
            print(violation.render())
        counts = ", ".join(
            f"{code}×{n}" for code, n in report.counts().items()
        )
        status = "clean" if report.clean else counts
        print(
            f"repro.lint: {report.files} files, "
            f"{len(report.violations)} violation(s) [{status}]"
        )
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Whole-program project model for lint v2.

One pass of :func:`extract_facts` over each file distils the AST into a
JSON-serialisable :class:`ModuleFacts` record: the module's import
bindings, every function with its outgoing calls, wall-clock reads and
``global`` declarations, RNG-stream and metric-name literals, attribute
stores (for columnar-ownership checks), and the literal contents of the
in-source registries (``STREAMS``, ``METRIC_NAMES``, ``OWNED_COLUMNS``).

:class:`Project` then stitches the facts of every ``repro.*`` module into
a symbol table, an import graph, and a name-resolution-based call graph.
Method dispatch is approximated by attribute name: ``x.foo()`` links to
every project function *named* ``foo`` unless the receiver resolves
statically (``self.foo()``, an imported module, or a local binding).
That approximation is deliberately conservative-for-recall — see
"known false-negative classes" in docs/static-analysis.md — and is what
makes the interprocedural rules (BRS010–BRS013) whole-program rather
than per-file.

Because the facts are plain JSON, they cache per file keyed by content
hash (:mod:`repro.lint.cache`): a warm run re-parses nothing and only
re-runs the cheap graph passes.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "CallFact",
    "SinkFact",
    "FunctionFact",
    "StreamUse",
    "MetricUse",
    "AttrStore",
    "ModuleFacts",
    "Project",
    "extract_facts",
    "MODULE_FUNCTION",
    "FACTS_VERSION",
]

#: Bumped whenever the shape of the extracted facts changes, so stale
#: cache entries re-extract instead of deserialising garbage.
FACTS_VERSION = 1

#: Pseudo-function holding a module's top-level statements.
MODULE_FUNCTION = "<module>"

#: ``RngStreams`` methods whose first argument is a stream name.
RNG_NAME_METHODS = {
    "stream",
    "fresh",
    "spawn",
    "randint",
    "random",
    "choice",
    "sample",
    "shuffled",
}

#: Metric-registry factory methods whose first argument is a metric name.
METRIC_FACTORIES = {"counter", "histogram", "series"}

#: Methods on a metric object that *record* (emit) data.
METRIC_MUTATORS = {"inc", "set", "reset", "observe", "observe_many", "add", "append", "record"}

#: Wall-clock reading callables, as ``module.attr`` patterns.
_TIME_FUNCS = {"time", "monotonic", "perf_counter", "process_time", "time_ns"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}

#: Attribute names never used for call-graph dispatch (dunders and
#: ubiquitous container methods would connect everything to everything).
_DISPATCH_STOPLIST = {
    "append",
    "extend",
    "add",
    "get",
    "pop",
    "items",
    "keys",
    "values",
    "update",
    "join",
    "split",
    "strip",
    "format",
    "copy",
    "sort",
    "index",
    "count",
    "clear",
    "remove",
    "insert",
    "setdefault",
    "astype",
    "reshape",
    "tolist",
    "sum",
    "mean",
    "min",
    "max",
}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute chain rooted at a Name, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _literal_string(node: ast.AST) -> Optional[Tuple[str, bool]]:
    """``(value, is_pattern)`` for a string-ish expression, else ``None``.

    Plain string constants come back verbatim.  f-strings and ``+``
    concatenations with a constant head come back as ``"head*"`` with
    ``is_pattern=True`` (the dynamic tail is matched as a wildcard);
    fully dynamic expressions return ``None``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr):
        head = ""
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                head += part.value
            else:
                return head + "*", True
        return head, False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _literal_string(node.left)
        if left is not None:
            value, _ = left
            return value.rstrip("*") + "*", True
    return None


@dataclasses.dataclass
class CallFact:
    """One call expression inside a function body."""

    callee: str  # dotted text ("net.rng.stream") or bare name
    kind: str  # "name" | "attr"
    lineno: int
    col: int
    #: Literal-string positional args by index (non-strings are None).
    str_args: List[Optional[str]]
    #: Literal-string keyword args.
    str_kwargs: Dict[str, str]

    @property
    def attr(self) -> str:
        """The final component — the dispatched name."""
        return self.callee.rsplit(".", 1)[-1]


@dataclasses.dataclass
class SinkFact:
    """A determinism sink: a wall-clock read or a ``global`` declaration."""

    api: str  # e.g. "time.perf_counter" / "global _SHARED"
    lineno: int
    col: int


@dataclasses.dataclass
class FunctionFact:
    """One function or method, with everything the graph rules need."""

    qualname: str  # "repro.core.join.join_mobile_node" / "...Class.method"
    name: str
    lineno: int
    params: List[str]
    is_method: bool
    calls: List[CallFact] = dataclasses.field(default_factory=list)
    wallclock: List[SinkFact] = dataclasses.field(default_factory=list)
    globals_decl: List[SinkFact] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class StreamUse:
    """A literal RNG stream name observed at a draw/creation site."""

    name: str
    pattern: bool
    lineno: int
    col: int
    via: str  # "stream" | "randint" | ... | "default"


@dataclasses.dataclass
class MetricUse:
    """A literal metric name at a ``counter(...)``/``histogram(...)`` site."""

    name: str
    pattern: bool
    factory: str  # "counter" | "histogram" | "series"
    role: str  # "emit" | "consume" | "unknown"
    lineno: int
    col: int


@dataclasses.dataclass
class AttrStore:
    """An attribute mutation: ``<base>.<attr> = ...`` / ``+=`` / ``[...] =``."""

    base: str  # dotted receiver text ("self._store"), "" when unresolvable
    attr: str
    lineno: int
    col: int


@dataclasses.dataclass
class ModuleFacts:
    """Everything the whole-program rules need to know about one file."""

    path: str
    module: Tuple[str, ...]
    is_package: bool
    imports: Dict[str, str] = dataclasses.field(default_factory=dict)
    functions: List[FunctionFact] = dataclasses.field(default_factory=list)
    stream_uses: List[StreamUse] = dataclasses.field(default_factory=list)
    #: Function qualname → index of its ``stream`` parameter.
    stream_params: Dict[str, int] = dataclasses.field(default_factory=dict)
    metric_uses: List[MetricUse] = dataclasses.field(default_factory=list)
    attr_stores: List[AttrStore] = dataclasses.field(default_factory=list)
    #: Dotted receiver prefixes bound to columnar constructors.
    columnar_bases: List[str] = dataclasses.field(default_factory=list)
    #: Literal registries found in this module (STREAMS, METRIC_NAMES, ...).
    registries: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Names passed as the worker argument to ``sweep_map``.
    sweep_workers: List[str] = dataclasses.field(default_factory=list)

    @property
    def dotted(self) -> str:
        return ".".join(self.module)

    def subsystem(self) -> str:
        """The owning subsystem: the first two dotted components
        (``repro.core``), or the whole module path when shorter."""
        return ".".join(self.module[:2])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the cache entry payload)."""
        data = dataclasses.asdict(self)
        data["module"] = list(self.module)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleFacts":
        """Rebuild facts from :meth:`to_dict` output (cache hits)."""
        return cls(
            path=data["path"],
            module=tuple(data["module"]),
            is_package=data["is_package"],
            imports=dict(data["imports"]),
            functions=[
                FunctionFact(
                    qualname=f["qualname"],
                    name=f["name"],
                    lineno=f["lineno"],
                    params=list(f["params"]),
                    is_method=f["is_method"],
                    calls=[CallFact(**c) for c in f["calls"]],
                    wallclock=[SinkFact(**s) for s in f["wallclock"]],
                    globals_decl=[SinkFact(**s) for s in f["globals_decl"]],
                )
                for f in data["functions"]
            ],
            stream_uses=[StreamUse(**u) for u in data["stream_uses"]],
            stream_params=dict(data["stream_params"]),
            metric_uses=[MetricUse(**u) for u in data["metric_uses"]],
            attr_stores=[AttrStore(**s) for s in data["attr_stores"]],
            columnar_bases=list(data["columnar_bases"]),
            registries=dict(data["registries"]),
            sweep_workers=list(data["sweep_workers"]),
        )


# ----------------------------------------------------------------------
# Registry literal evaluation
# ----------------------------------------------------------------------
#: Module-level constants the analyzer reads out of the source tree.
REGISTRY_NAMES = {"STREAMS", "METRIC_NAMES", "OWNED_COLUMNS"}


def _eval_registry_value(node: ast.AST) -> Any:
    """Best-effort literal evaluation for registry right-hand sides.

    Supports constants, tuples/lists/sets/dicts of the same, and
    ``StreamSpec(...)``-style calls (folded to a dict of their literal
    keyword arguments).  Anything else raises ``ValueError``.
    """
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return [_eval_registry_value(e) for e in node.elts]
    if isinstance(node, ast.Dict):
        out: Dict[Any, Any] = {}
        for key, value in zip(node.keys, node.values):
            if key is None:
                raise ValueError("dict unpacking in registry literal")
            evaluated = _eval_registry_value(value)
            if isinstance(evaluated, dict):
                evaluated["lineno"] = value.lineno
            out[_eval_registry_value(key)] = evaluated
        return out
    if isinstance(node, ast.Call):
        if node.args:
            raise ValueError("registry spec calls must use keyword arguments")
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name in ("frozenset", "set", "tuple", "list") and not node.keywords:
            return []
        return {
            kw.arg: _eval_registry_value(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
    raise ValueError(f"unsupported registry literal: {ast.dump(node)[:60]}")


# ----------------------------------------------------------------------
# Fact extraction
# ----------------------------------------------------------------------
class _FactsVisitor:
    """One pass over a module tree filling a :class:`ModuleFacts`."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        self._time_modules: Set[str] = set()
        self._time_functions: Set[str] = set()
        self._datetime_names: Set[str] = set()
        self._columnar_ctors: Set[str] = set()

    # -- imports -------------------------------------------------------
    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted module for a (possibly relative) import-from."""
        if node.level == 0:
            return node.module
        package = list(self.facts.module)
        if not self.facts.is_package:
            package = package[:-1]
        hops = node.level - 1
        if hops > len(package):
            return None
        base = package[: len(package) - hops]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def visit_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.facts.imports[bound] = target
                    root = alias.name.split(".")[0]
                    if root == "time" and alias.name == "time":
                        self._time_modules.add(bound)
                    if alias.name == "datetime":
                        self._datetime_names.add(bound)
            elif isinstance(node, ast.ImportFrom):
                module = self._resolve_from(node)
                if module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.facts.imports[bound] = f"{module}.{alias.name}"
                    if module == "time":
                        self._time_functions.add(bound)
                    if module == "datetime" and alias.name in ("datetime", "date"):
                        self._datetime_names.add(bound)
                    if module.endswith("columnar") and alias.name in (
                        "ColumnarStore",
                        "StatePairColumns",
                        "ColumnarDirectory",
                    ):
                        self._columnar_ctors.add(bound)
        # ``import time as _time`` style aliases.
        for bound, target in self.facts.imports.items():
            if target == "time":
                self._time_modules.add(bound)

    # -- wall-clock reads ------------------------------------------------
    def _wallclock_api(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self._time_functions and func.id in _TIME_FUNCS:
                return f"time.{func.id}"
            bound = self.facts.imports.get(func.id)
            if bound is not None and bound.startswith("time.") and bound.split(".", 1)[1] in _TIME_FUNCS:
                return bound
            return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] in self._time_modules and parts[1] in _TIME_FUNCS:
            return f"time.{parts[1]}"
        if parts[-1] in _DATETIME_FUNCS and parts[0] in self._datetime_names:
            return dotted
        return None

    # -- stream / metric literals ----------------------------------------
    def _record_stream_use(self, call: ast.Call) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in RNG_NAME_METHODS):
            return
        if not call.args:
            return
        lit = _literal_string(call.args[0])
        if lit is None:
            return
        name, pattern = lit
        self.facts.stream_uses.append(
            StreamUse(
                name=name,
                pattern=pattern,
                lineno=call.lineno,
                col=call.col_offset,
                via=func.attr,
            )
        )

    def _metric_role(self, call: ast.Call, parents: Mapping[int, ast.AST]) -> str:
        """Classify a ``counter("x")`` call as emit or consume from its
        immediate syntactic context."""
        parent = parents.get(id(call))
        if isinstance(parent, ast.Attribute):
            grand = parents.get(id(parent))
            if isinstance(grand, ast.Call) and grand.func is parent:
                return "emit" if parent.attr in METRIC_MUTATORS else "consume"
            # ``counter("x").value`` — a plain attribute read.
            return "consume"
        return "unknown"

    def _record_metric_use(
        self, call: ast.Call, parents: Mapping[int, ast.AST]
    ) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in METRIC_FACTORIES):
            return
        if not call.args:
            return
        lit = _literal_string(call.args[0])
        if lit is None:
            return
        name, pattern = lit
        self.facts.metric_uses.append(
            MetricUse(
                name=name,
                pattern=pattern,
                factory=func.attr,
                role=self._metric_role(call, parents),
                lineno=call.lineno,
                col=call.col_offset,
            )
        )

    # -- function bodies --------------------------------------------------
    def _call_fact(self, call: ast.Call) -> Optional[CallFact]:
        func = call.func
        if isinstance(func, ast.Name):
            callee, kind = func.id, "name"
        elif isinstance(func, ast.Attribute):
            callee = _dotted(func) or func.attr
            kind = "attr"
        else:
            return None
        str_args: List[Optional[str]] = []
        for arg in call.args:
            lit = _literal_string(arg)
            str_args.append(lit[0] + ("*" if lit[1] and not lit[0].endswith("*") else "") if lit else None)
        str_kwargs: Dict[str, str] = {}
        for kw in call.keywords:
            if kw.arg is None:
                continue
            lit = _literal_string(kw.value)
            if lit is not None:
                str_kwargs[kw.arg] = lit[0] + ("*" if lit[1] and not lit[0].endswith("*") else "")
        return CallFact(
            callee=callee,
            kind=kind,
            lineno=call.lineno,
            col=call.col_offset,
            str_args=str_args,
            str_kwargs=str_kwargs,
        )

    def _attr_store(self, target: ast.AST, lineno: int, col: int) -> None:
        node = target
        # ``x.col[...] = v`` mutates the column in place too.
        if isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return
        base = _dotted(node.value) or ""
        self.facts.attr_stores.append(
            AttrStore(base=base, attr=node.attr, lineno=lineno, col=col)
        )

    def _scan_body(
        self,
        fact: FunctionFact,
        body: Sequence[ast.stmt],
        parents: Mapping[int, ast.AST],
    ) -> None:
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested functions get their own FunctionFact
            if isinstance(node, ast.Call):
                cf = self._call_fact(node)
                if cf is not None:
                    fact.calls.append(cf)
                api = self._wallclock_api(node)
                if api is not None:
                    fact.wallclock.append(
                        SinkFact(api=api, lineno=node.lineno, col=node.col_offset)
                    )
                self._record_stream_use(node)
                self._record_metric_use(node, parents)
                self._maybe_sweep_worker(node)
            elif isinstance(node, ast.Global):
                fact.globals_decl.append(
                    SinkFact(
                        api="global " + ", ".join(node.names),
                        lineno=node.lineno,
                        col=node.col_offset,
                    )
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._attr_store(target, node.lineno, node.col_offset)
                self._maybe_columnar_binding(node)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._attr_store(node.target, node.lineno, node.col_offset)
            stack.extend(ast.iter_child_nodes(node))

    def _maybe_sweep_worker(self, call: ast.Call) -> None:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name == "sweep_map" and call.args and isinstance(call.args[0], ast.Name):
            self.facts.sweep_workers.append(call.args[0].id)

    def _maybe_columnar_binding(self, node: ast.Assign) -> None:
        value = node.value
        if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)):
            return
        if value.func.id not in self._columnar_ctors:
            return
        for target in node.targets:
            base = _dotted(target)
            if base is not None:
                self.facts.columnar_bases.append(base)

    # -- driver ------------------------------------------------------------
    def run(self, tree: ast.Module) -> None:
        self.visit_imports(tree)
        parents: Dict[int, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node

        module_dotted = self.facts.dotted

        def walk_scope(
            body: Sequence[ast.stmt], prefix: str, in_class: bool
        ) -> None:
            # Collect this scope's own statements for the enclosing
            # pseudo-function, then recurse into defs/classes.
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{stmt.name}"
                    fact = FunctionFact(
                        qualname=qual,
                        name=stmt.name,
                        lineno=stmt.lineno,
                        params=[a.arg for a in stmt.args.args],
                        is_method=in_class,
                    )
                    self._scan_body(fact, stmt.body, parents)
                    self.facts.functions.append(fact)
                    for i, param in enumerate(fact.params):
                        if self._is_stream_param(param):
                            self.facts.stream_params[qual] = i
                            break
                    else:
                        # Keyword-only stream params flow via kwargs (-1
                        # never matches a positional index).
                        if any(
                            self._is_stream_param(a.arg)
                            for a in stmt.args.kwonlyargs
                        ):
                            self.facts.stream_params[qual] = -1
                    # Literal defaults for a ``stream`` parameter are
                    # stream names in their own right.
                    self._stream_defaults(stmt)
                    walk_scope(stmt.body, qual, in_class=False)
                elif isinstance(stmt, ast.ClassDef):
                    walk_scope(stmt.body, f"{prefix}.{stmt.name}", in_class=True)

        # Top-level (<module>) pseudo-function: everything not nested in a def.
        top = FunctionFact(
            qualname=f"{module_dotted}.{MODULE_FUNCTION}",
            name=MODULE_FUNCTION,
            lineno=1,
            params=[],
            is_method=False,
        )
        self._scan_body(top, self._toplevel_statements(tree), parents)
        self.facts.functions.append(top)
        walk_scope(tree.body, module_dotted, in_class=False)
        self._extract_registries(tree)

    @staticmethod
    def _is_stream_param(name: str) -> bool:
        return name == "stream" or name.endswith("_stream")

    def _stream_defaults(self, fn: ast.FunctionDef) -> None:
        args = fn.args
        pos = args.args
        defaults = args.defaults
        offset = len(pos) - len(defaults)
        for i, default in enumerate(defaults):
            if not self._is_stream_param(pos[offset + i].arg):
                continue
            lit = _literal_string(default)
            if lit is not None:
                self.facts.stream_uses.append(
                    StreamUse(
                        name=lit[0],
                        pattern=lit[1],
                        lineno=default.lineno,
                        col=default.col_offset,
                        via="default",
                    )
                )
        for kwarg, kwdefault in zip(args.kwonlyargs, args.kw_defaults):
            if self._is_stream_param(kwarg.arg) and kwdefault is not None:
                lit = _literal_string(kwdefault)
                if lit is not None:
                    self.facts.stream_uses.append(
                        StreamUse(
                            name=lit[0],
                            pattern=lit[1],
                            lineno=kwdefault.lineno,
                            col=kwdefault.col_offset,
                            via="default",
                        )
                    )

    @staticmethod
    def _toplevel_statements(tree: ast.Module) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            out.append(stmt)
        return out

    def _extract_registries(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            targets: List[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id in REGISTRY_NAMES:
                    try:
                        self.facts.registries[target.id] = {
                            "value": _eval_registry_value(value),
                            "lineno": stmt.lineno,
                        }
                    except ValueError:
                        self.facts.registries[target.id] = {
                            "value": None,
                            "lineno": stmt.lineno,
                        }


def extract_facts(
    tree: ast.Module, path: str, module: Tuple[str, ...]
) -> ModuleFacts:
    """Distil one parsed module into its :class:`ModuleFacts`."""
    facts = ModuleFacts(
        path=path,
        module=module,
        is_package=path.replace("\\", "/").endswith("/__init__.py"),
    )
    _FactsVisitor(facts).run(tree)
    return facts


# ----------------------------------------------------------------------
# The project graph
# ----------------------------------------------------------------------
class Project:
    """Symbol table + import graph + approximate call graph over a set of
    :class:`ModuleFacts` (normally: every module under ``repro``)."""

    def __init__(self, modules: Sequence[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        for facts in modules:
            self.modules[facts.dotted] = facts
        self.functions: Dict[str, FunctionFact] = {}
        self.fact_module: Dict[str, ModuleFacts] = {}
        self.by_name: Dict[str, List[str]] = {}
        for facts in self.modules.values():
            for fn in facts.functions:
                self.functions[fn.qualname] = fn
                self.fact_module[fn.qualname] = facts
                if fn.name != MODULE_FUNCTION:
                    self.by_name.setdefault(fn.name, []).append(fn.qualname)
        #: module → set of project modules it imports (the import graph).
        self.import_graph: Dict[str, Set[str]] = {
            dotted: set(self._imported_modules(facts))
            for dotted, facts in self.modules.items()
        }
        self._edges: Optional[Dict[str, List[Tuple[str, CallFact]]]] = None

    # -- symbol resolution --------------------------------------------------
    def _imported_modules(self, facts: ModuleFacts) -> Iterator[str]:
        for target in facts.imports.values():
            # ``from pkg.mod import symbol`` → pkg.mod; ``import pkg.mod`` → pkg.mod
            if target in self.modules:
                yield target
            elif "." in target and target.rsplit(".", 1)[0] in self.modules:
                yield target.rsplit(".", 1)[0]

    def resolve_symbol(self, dotted: str, _depth: int = 0) -> Optional[str]:
        """Follow import/re-export chains to a project function qualname.

        ``repro.lint.lint_paths`` → ``repro.lint.engine.lint_paths`` when
        the package ``__init__`` re-exports it.  Returns ``None`` for
        names that never land on a project function (stdlib, classes,
        data).
        """
        if _depth > 8:  # re-export cycle guard
            return None
        if dotted in self.functions:
            return dotted
        if "." not in dotted:
            return None
        owner, leaf = dotted.rsplit(".", 1)
        facts = self.modules.get(owner)
        if facts is None:
            return None
        alias = facts.imports.get(leaf)
        if alias is not None:
            return self.resolve_symbol(alias, _depth + 1)
        return None

    # -- call graph ------------------------------------------------------
    def resolve_call(
        self, facts: ModuleFacts, caller: FunctionFact, call: CallFact
    ) -> List[str]:
        """Possible callee qualnames for one call site.

        Resolution order: local module functions, imported symbols
        (through re-export chains), ``self.method`` within the caller's
        class, dotted module attributes — then the attribute-name
        approximation (every project function with that bare name).
        """
        if call.kind == "name":
            local = f"{facts.dotted}.{call.callee}"
            if local in self.functions:
                return [local]
            target = facts.imports.get(call.callee)
            if target is not None:
                resolved = self.resolve_symbol(target)
                return [resolved] if resolved else []
            return []
        parts = call.callee.split(".")
        attr = parts[-1]
        if len(parts) >= 2:
            root = parts[0]
            if root == "self" and len(parts) == 2 and caller.is_method:
                cls_prefix = caller.qualname.rsplit(".", 1)[0]
                candidate = f"{cls_prefix}.{attr}"
                if candidate in self.functions:
                    return [candidate]
            target = facts.imports.get(root)
            if target is not None and len(parts) == 2:
                resolved = self.resolve_symbol(f"{target}.{attr}")
                if resolved is not None:
                    return [resolved]
        if attr.startswith("__") or attr in _DISPATCH_STOPLIST:
            return []
        return list(self.by_name.get(attr, ()))

    def call_edges(self) -> Dict[str, List[Tuple[str, CallFact]]]:
        """The full call graph: caller qualname → [(callee, call-site)]."""
        if self._edges is None:
            edges: Dict[str, List[Tuple[str, CallFact]]] = {}
            for facts in self.modules.values():
                for fn in facts.functions:
                    out: List[Tuple[str, CallFact]] = []
                    for call in fn.calls:
                        for callee in self.resolve_call(facts, fn, call):
                            if callee != fn.qualname:
                                out.append((callee, call))
                    edges[fn.qualname] = out
            self._edges = edges
        return self._edges

    def reach_chains(
        self, tainted: Mapping[str, SinkFact]
    ) -> Dict[str, Tuple[List[str], SinkFact]]:
        """For every function that can reach a tainted function, the
        shortest call chain (as a qualname list ending at the sink
        function) and the sink itself.  Directly tainted functions map to
        a single-element chain.
        """
        edges = self.call_edges()
        # BFS backwards over reversed edges, shortest chain wins.
        reverse: Dict[str, List[str]] = {}
        for caller, outs in edges.items():
            for callee, _ in outs:
                reverse.setdefault(callee, []).append(caller)
        result: Dict[str, Tuple[List[str], SinkFact]] = {}
        frontier: List[str] = []
        for qual, sink in tainted.items():
            result[qual] = ([qual], sink)
            frontier.append(qual)
        while frontier:
            nxt: List[str] = []
            for callee in frontier:
                chain, sink = result[callee]
                for caller in sorted(reverse.get(callee, ())):
                    if caller in result:
                        continue
                    result[caller] = ([caller] + chain, sink)
                    nxt.append(caller)
            frontier = nxt
        return result

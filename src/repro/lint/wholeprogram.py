"""The whole-program rules (BRS010–BRS013) over a :class:`Project`.

Unlike the per-file rules in :mod:`repro.lint.rules`, these see the
entire ``repro`` package at once — the project model's symbol table and
call graph (:mod:`repro.lint.project`) — so they can check provenance
and purity properties no single file can witness:

========  ==========================================================
BRS010    RNG-stream provenance: every stream-name literal appears in
          ``repro.sim.rng.STREAMS`` with its owning subsystem; the
          same stream drawn from two unrelated subsystems is a
          collision (hidden seed reuse)
BRS011    transitive virtual-time purity: no call chain from
          virtual-time code to a wall-clock read, and none from a
          ``sweep_map`` worker to a ``global`` mutation — reported
          with the full offending chain
BRS012    metric-name consistency: emit sites registered in
          ``repro.sim.metrics.METRIC_NAMES``; literal-name consumers
          must have a live emitter; stale registry entries flagged
BRS013    columnar ownership: numpy columns owned by
          ``repro.sim.columnar`` are only mutated inside the kernel
          module itself
========  ==========================================================

Rules yield plain :class:`~repro.lint.engine.Violation` objects; the
engine applies each target file's inline suppressions afterwards.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .engine import Violation
from .project import (
    MetricUse,
    ModuleFacts,
    Project,
    SinkFact,
    StreamUse,
)

__all__ = ["ProjectRule", "PROJECT_RULES", "SuppressionMap"]

#: path → {line → {codes}} — every file's inline-suppression table, so
#: project rules can honour suppressions at sink lines they taint from.
SuppressionMap = Mapping[str, Mapping[int, Set[str]]]

#: Modules in which stream-name plumbing is implementation, not usage.
_RNG_MODULE = ("repro", "sim", "rng")
_METRICS_MODULE = ("repro", "sim", "metrics")
_COLUMNAR_MODULE = ("repro", "sim", "columnar")

#: All struct-of-arrays kernel modules (the BRS013 mutation scope): the
#: OWNED_COLUMNS registry lives in :data:`_COLUMNAR_MODULE`, but the LDT
#: forest builder owns tree columns of its own and may mutate them too.
_COLUMNAR_KERNEL_MODULES = (
    _COLUMNAR_MODULE,
    ("repro", "core", "ldt_forest"),
)

#: Virtual-time packages (the BRS002 scope) and their allow-listed
#: wall-clock modules, mirrored from the per-file rules.
_VIRTUAL_TIME_PACKAGES = ("core", "overlay", "experiments")
_WALLCLOCK_ALLOWED = {"repro.sim.profile", "repro.sim.trace"}


class ProjectRule:
    """Base: one code, one name, one project-wide ``check`` generator."""

    code: str = ""
    name: str = ""
    summary: str = ""
    scope: str = "project"

    def check_project(
        self, project: Project, suppressions: SuppressionMap
    ) -> Iterator[Violation]:
        """Yield every violation of this rule across ``project``."""
        raise NotImplementedError

    def violation(
        self,
        facts: ModuleFacts,
        lineno: int,
        col: int,
        message: str,
        chain: Optional[List[str]] = None,
    ) -> Violation:
        """Construct a :class:`Violation` anchored in ``facts``'s file."""
        return Violation(
            rule=self.code,
            path=facts.path,
            line=lineno,
            col=col,
            message=message,
            chain=tuple(chain) if chain is not None else None,
        )


def _registry(project: Project, module: Tuple[str, ...], name: str) -> Optional[Dict[str, object]]:
    facts = project.modules.get(".".join(module))
    if facts is None:
        return None
    entry = facts.registries.get(name)
    if entry is None:
        return None
    return {"value": entry.get("value"), "lineno": entry.get("lineno"), "facts": facts}


def _match_entry(name: str, entries: Mapping[str, object]) -> Optional[str]:
    """The registry key covering ``name`` — exact first, then the most
    specific ``prefix.*`` wildcard.  ``name`` may itself be a pattern
    (``churn.*``), which matches an identical wildcard entry."""
    if name in entries:
        return name
    best: Optional[str] = None
    for key in entries:
        if not key.endswith("*"):
            continue
        if fnmatch.fnmatchcase(name, key) or (
            name.endswith("*") and name[:-1].startswith(key[:-1])
        ):
            if best is None or len(key) > len(best):
                best = key
    return best


# ----------------------------------------------------------------------
# BRS010 — RNG-stream provenance
# ----------------------------------------------------------------------
class StreamProvenance(ProjectRule):
    """BRS010: every stream-name literal is registered in
    ``repro.sim.rng.STREAMS`` under its owning subsystem; one stream
    drawn from two unrelated subsystems is a seed-reuse collision."""

    code = "BRS010"
    name = "rng-stream-provenance"
    summary = (
        "stream names must be registered in repro.sim.rng.STREAMS with an "
        "owning subsystem; cross-subsystem draws of one stream collide "
        "(hidden seed reuse) unless registered as shared"
    )

    def _collect_uses(
        self, project: Project
    ) -> List[Tuple[ModuleFacts, StreamUse]]:
        """Direct literal uses plus literals flowing into ``stream``
        parameters through resolved call sites (the dataflow layer)."""
        uses: List[Tuple[ModuleFacts, StreamUse]] = []
        stream_params: Dict[str, int] = {}
        for facts in project.modules.values():
            stream_params.update(facts.stream_params)
        for facts in project.modules.values():
            if facts.module == _RNG_MODULE:
                continue
            for use in facts.stream_uses:
                uses.append((facts, use))
            for fn in facts.functions:
                for call in fn.calls:
                    for callee in project.resolve_call(facts, fn, call):
                        idx = stream_params.get(callee)
                        if idx is None:
                            continue
                        target = project.functions[callee]
                        pos = idx - 1 if (target.is_method and call.kind == "attr") else idx
                        literal: Optional[str] = None
                        if 0 <= pos < len(call.str_args):
                            literal = call.str_args[pos]
                        if literal is None:
                            for kw_name, kw_val in call.str_kwargs.items():
                                if kw_name == "stream" or kw_name.endswith("_stream"):
                                    literal = kw_val
                                    break
                        if literal is None:
                            continue
                        uses.append(
                            (
                                facts,
                                StreamUse(
                                    name=literal,
                                    pattern=literal.endswith("*"),
                                    lineno=call.lineno,
                                    col=call.col,
                                    via=f"param:{callee.rsplit('.', 1)[-1]}",
                                ),
                            )
                        )
        return uses

    def check_project(
        self, project: Project, suppressions: SuppressionMap
    ) -> Iterator[Violation]:
        """Check every stream-name use against ``STREAMS``."""
        registry = _registry(project, _RNG_MODULE, "STREAMS")
        if registry is None or not isinstance(registry["value"], dict):
            facts = project.modules.get(".".join(_RNG_MODULE))
            if facts is not None:
                yield self.violation(
                    facts,
                    1,
                    0,
                    "repro.sim.rng must define a literal STREAMS registry "
                    "(stream name -> StreamSpec) for BRS010 provenance",
                )
            return
        raw_entries = registry["value"]
        assert isinstance(raw_entries, dict)
        entries: Dict[str, Dict[str, object]] = {
            str(k): (v if isinstance(v, dict) else {})
            for k, v in raw_entries.items()
        }
        uses = self._collect_uses(project)
        used_keys: Dict[str, Set[str]] = {}
        for facts, use in uses:
            key = _match_entry(use.name, entries)
            if key is None:
                yield self.violation(
                    facts,
                    use.lineno,
                    use.col,
                    f"RNG stream {use.name!r} (via .{use.via.split(':')[-1]}) "
                    "is not registered in repro.sim.rng.STREAMS — register "
                    "it with its owning subsystem",
                )
                continue
            spec = entries[key]
            owner = str(spec.get("owner", ""))
            raw_shared = spec.get("shared", ())
            shared = (
                {str(s) for s in raw_shared}
                if isinstance(raw_shared, (list, tuple))
                else set()
            )
            subsystem = facts.subsystem()
            used_keys.setdefault(key, set()).add(subsystem)
            allowed = {owner} | shared
            if subsystem not in allowed:
                others = ", ".join(sorted(allowed))
                yield self.violation(
                    facts,
                    use.lineno,
                    use.col,
                    f"RNG stream {use.name!r} is owned by {others} but drawn "
                    f"from {subsystem}: a cross-subsystem draw correlates "
                    "seeded streams — register the subsystem in shared=(...) "
                    "with a reason, or use a new stream name",
                )
        # Shared-by-design declarations must carry a reason; stale
        # entries (registered, never used) rot the registry.
        rng_facts = registry["facts"]
        assert isinstance(rng_facts, ModuleFacts)
        for key, spec in entries.items():
            lineno = int(spec.get("lineno", registry["lineno"]))  # type: ignore[arg-type]
            if spec.get("shared") and not str(spec.get("reason", "")).strip():
                yield self.violation(
                    rng_facts,
                    lineno,
                    0,
                    f"STREAMS entry {key!r} is shared across subsystems but "
                    "gives no reason — state why the collision is by design",
                )
            if key not in used_keys:
                yield self.violation(
                    rng_facts,
                    lineno,
                    0,
                    f"STREAMS entry {key!r} has no draw site anywhere in the "
                    "project: delete the stale registration",
                )


# ----------------------------------------------------------------------
# BRS011 — transitive virtual-time purity / fork safety
# ----------------------------------------------------------------------
def _fmt_chain(project: Project, chain: Sequence[str], sink: SinkFact) -> List[str]:
    """Human-readable call chain ending at the sink read/mutation."""
    out: List[str] = []
    for qual in chain:
        facts = project.fact_module[qual]
        fn = project.functions[qual]
        out.append(f"{facts.path}:{fn.lineno}: {qual}()")
    tail_facts = project.fact_module[chain[-1]]
    out.append(f"{tail_facts.path}:{sink.lineno}: {sink.api}")
    return out


class TransitivePurity(ProjectRule):
    """BRS011: call-graph-transitive BRS002/BRS004 — virtual-time code
    must not *reach* a wall-clock read, and ``sweep_map`` workers must
    not *reach* a process-global mutation, however many modules away."""

    code = "BRS011"
    name = "transitive-virtual-time-purity"
    summary = (
        "no call chain from virtual-time code to a wall-clock read, and "
        "none from a sweep_map worker to a global mutation — the full "
        "chain is reported"
    )

    def _suppressed(
        self, suppressions: SuppressionMap, facts: ModuleFacts, lineno: int
    ) -> bool:
        table = suppressions.get(facts.path, {})
        codes = table.get(lineno, set())
        return bool({self.code, "BRS002", "BRS004"} & codes)

    def _in_virtual_time(self, facts: ModuleFacts) -> bool:
        return (
            len(facts.module) >= 2
            and facts.module[0] == "repro"
            and facts.module[1] in _VIRTUAL_TIME_PACKAGES
            and facts.dotted not in _WALLCLOCK_ALLOWED
        )

    def check_project(
        self, project: Project, suppressions: SuppressionMap
    ) -> Iterator[Violation]:
        """Trace call chains from pure scopes to determinism sinks."""
        # --- sinks -----------------------------------------------------
        wall_sinks: Dict[str, SinkFact] = {}
        global_sinks: Dict[str, SinkFact] = {}
        for facts in project.modules.values():
            allowed_wall = facts.dotted in _WALLCLOCK_ALLOWED
            for fn in facts.functions:
                for sink in fn.wallclock:
                    if allowed_wall or self._suppressed(suppressions, facts, sink.lineno):
                        continue
                    wall_sinks.setdefault(fn.qualname, sink)
                for sink in fn.globals_decl:
                    if self._suppressed(suppressions, facts, sink.lineno):
                        continue
                    global_sinks.setdefault(fn.qualname, sink)

        edges = project.call_edges()

        # --- wall-clock purity: report at the scope-crossing edge ------
        wall_reach = project.reach_chains(wall_sinks)
        for facts in project.modules.values():
            if not self._in_virtual_time(facts):
                continue
            for fn in facts.functions:
                reported: Set[str] = set()
                for callee, call in edges.get(fn.qualname, ()):  # type: ignore[union-attr]
                    if callee in reported:
                        continue
                    callee_facts = project.fact_module[callee]
                    if self._in_virtual_time(callee_facts):
                        continue  # the crossing is reported at that function
                    hit = wall_reach.get(callee)
                    if hit is None:
                        continue
                    if self._suppressed(suppressions, facts, call.lineno):
                        continue
                    chain_quals, sink = hit
                    chain = _fmt_chain(project, [fn.qualname] + chain_quals, sink)
                    reported.add(callee)
                    yield self.violation(
                        facts,
                        call.lineno,
                        call.col,
                        f"virtual-time function {fn.qualname}() transitively "
                        f"reaches wall-clock read {sink.api} (chain of "
                        f"{len(chain_quals)} call(s); see chain)",
                        chain=chain,
                    )

        # --- fork safety: workers must not reach a global mutation -----
        global_reach = project.reach_chains(global_sinks)
        for facts in project.modules.values():
            for worker_name in facts.sweep_workers:
                qual = f"{facts.dotted}.{worker_name}"
                fn = project.functions.get(qual)
                if fn is None:
                    continue
                for callee, call in edges.get(qual, ()):  # type: ignore[union-attr]
                    hit = global_reach.get(callee)
                    if hit is None:
                        continue
                    if self._suppressed(suppressions, facts, call.lineno):
                        continue
                    chain_quals, sink = hit
                    chain = _fmt_chain(project, [qual] + chain_quals, sink)
                    yield self.violation(
                        facts,
                        call.lineno,
                        call.col,
                        f"sweep_map worker {worker_name}() transitively "
                        f"mutates process-global state ({sink.api}): lost "
                        "on fork, racy in-process (see chain)",
                        chain=chain,
                    )


# ----------------------------------------------------------------------
# BRS012 — metric-name consistency
# ----------------------------------------------------------------------
class MetricNameConsistency(ProjectRule):
    """BRS012: counter/histogram emit sites agree with the registered
    catalogue in ``repro.sim.metrics.METRIC_NAMES``, and every
    literal-name consumer has a live emitter."""

    code = "BRS012"
    name = "metric-name-consistency"
    summary = (
        "metric emit sites must be registered in "
        "repro.sim.metrics.METRIC_NAMES with the right kind; consumers of "
        "unemitted names (and stale registry entries) are flagged"
    )

    def check_project(
        self, project: Project, suppressions: SuppressionMap
    ) -> Iterator[Violation]:
        """Cross-check metric emit/consume sites against ``METRIC_NAMES``."""
        registry = _registry(project, _METRICS_MODULE, "METRIC_NAMES")
        if registry is None or not isinstance(registry["value"], dict):
            facts = project.modules.get(".".join(_METRICS_MODULE))
            if facts is not None:
                yield self.violation(
                    facts,
                    1,
                    0,
                    "repro.sim.metrics must define a literal METRIC_NAMES "
                    "registry (metric name -> kind) for BRS012 consistency",
                )
            return
        raw_entries = registry["value"]
        assert isinstance(raw_entries, dict)
        entries: Dict[str, str] = {str(k): str(v) for k, v in raw_entries.items()}
        emits: List[Tuple[ModuleFacts, MetricUse]] = []
        consumes: List[Tuple[ModuleFacts, MetricUse]] = []
        for facts in project.modules.values():
            if facts.module in (_METRICS_MODULE, ("repro", "sim", "telemetry")):
                continue  # the registry/merge plumbing handles names generically
            for use in facts.metric_uses:
                (emits if use.role == "emit" else consumes).append((facts, use))
        emit_names = {use.name for _, use in emits}

        for facts, use in emits:
            key = _match_entry(use.name, entries)
            if key is None:
                yield self.violation(
                    facts,
                    use.lineno,
                    use.col,
                    f"metric {use.name!r} is emitted here but not registered "
                    "in repro.sim.metrics.METRIC_NAMES — register it so "
                    "manifest validators and bench gates can rely on it",
                )
            elif entries[key] != use.factory:
                yield self.violation(
                    facts,
                    use.lineno,
                    use.col,
                    f"metric {use.name!r} is emitted as a {use.factory} but "
                    f"registered as a {entries[key]!r} — one of the two is "
                    "wrong",
                )

        for facts, use in consumes:
            covered = use.name in emit_names or any(
                e.endswith("*") and fnmatch.fnmatchcase(use.name, e)
                for e in emit_names
            )
            if not covered:
                yield self.violation(
                    facts,
                    use.lineno,
                    use.col,
                    f"metric {use.name!r} is consumed here but no emit site "
                    "exists anywhere in the project — a dangling consumer "
                    "reads zeros forever",
                )

        metrics_facts = registry["facts"]
        assert isinstance(metrics_facts, ModuleFacts)
        for key in entries:
            alive = key in emit_names or any(
                _match_entry(name, {key: entries[key]}) is not None
                for name in emit_names
            )
            if not alive:
                yield self.violation(
                    metrics_facts,
                    int(registry["lineno"]),  # type: ignore[arg-type]
                    0,
                    f"METRIC_NAMES entry {key!r} has no emit site anywhere "
                    "in the project: delete the stale registration",
                )


# ----------------------------------------------------------------------
# BRS013 — columnar column ownership
# ----------------------------------------------------------------------
#: Receiver-name tokens that mark an expression as a columnar table even
#: when the constructor binding is out of view (attributes passed around).
_COLUMNAR_BASE_TOKENS = ("store", "columns", "cols", "forest")


class ColumnarOwnership(ProjectRule):
    """BRS013: the numpy columns owned by ``repro.sim.columnar``
    (``OWNED_COLUMNS``) may only be mutated inside the kernel modules
    (:data:`_COLUMNAR_KERNEL_MODULES`); everything else must go through
    their batch-mutation APIs."""

    code = "BRS013"
    name = "columnar-ownership"
    summary = (
        "numpy columns owned by repro.sim.columnar (OWNED_COLUMNS) may "
        "only be mutated inside the kernel modules — use the batch "
        "mutation API (upsert/remove/expire, build_ldt_forest) elsewhere"
    )

    def check_project(
        self, project: Project, suppressions: SuppressionMap
    ) -> Iterator[Violation]:
        """Flag owned-column mutations outside the kernel module."""
        registry = _registry(project, _COLUMNAR_MODULE, "OWNED_COLUMNS")
        if registry is None or not isinstance(registry["value"], list):
            facts = project.modules.get(".".join(_COLUMNAR_MODULE))
            if facts is not None:
                yield self.violation(
                    facts,
                    1,
                    0,
                    "repro.sim.columnar must define a literal OWNED_COLUMNS "
                    "tuple naming its column attributes for BRS013",
                )
            return
        owned = {str(c) for c in registry["value"]}  # type: ignore[union-attr]
        for facts in project.modules.values():
            if facts.module in _COLUMNAR_KERNEL_MODULES:
                continue
            bases = tuple(facts.columnar_bases)
            for store in facts.attr_stores:
                if store.attr not in owned:
                    continue
                base = store.base
                is_columnar = any(
                    base == b or base.endswith("." + b) for b in bases
                ) or any(
                    tok in base.rsplit(".", 1)[-1].lower()
                    for tok in _COLUMNAR_BASE_TOKENS
                    if base
                )
                if is_columnar:
                    yield self.violation(
                        facts,
                        store.lineno,
                        store.col,
                        f"column {store.attr!r} of a columnar table is "
                        f"mutated outside the kernel module ({facts.dotted}):"
                        " columnar columns are owned by repro.sim.columnar —"
                        " mutate through its batch API",
                    )


#: Registry: code → project-rule instance, in code order.
PROJECT_RULES: Dict[str, ProjectRule] = {
    rule.code: rule
    for rule in (
        StreamProvenance(),
        TransitivePurity(),
        MetricNameConsistency(),
        ColumnarOwnership(),
    )
}

"""Linter engine: file walking, caching, suppressions, and reporting.

v1 of the engine was strictly per-file: parse, run every rule, filter
through the inline-suppression table.  v2 layers the whole-program
analysis on top without changing that contract:

* every file is still parsed once and handed to the per-file rules
  (:mod:`repro.lint.rules`, BRS001–BRS009);
* the same parse is distilled into JSON-serialisable *facts*
  (:mod:`repro.lint.project`), which feed the project model and the
  interprocedural rules (:mod:`repro.lint.wholeprogram`,
  BRS010–BRS013);
* per-file work (parse + per-file rules + facts) caches on the file's
  content hash (:mod:`repro.lint.cache`), so a warm run re-parses
  nothing — only the cheap graph passes re-run;
* a baseline file (:mod:`repro.lint.baseline`) can ratchet new rules in
  over a tree with known violations.

Suppression syntax (the reason is mandatory)::

    expr()  # repro-lint: disable=BRS001 fixture exercises the bad API
    # repro-lint: disable=BRS002,BRS006 reason text     (whole next line)

A comment-only suppression line applies to the next source line, so
multi-line statements can be suppressed without trailing comments.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
import time as _time
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "Violation",
    "FileContext",
    "LintReport",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "report_as_dict",
    "REPORT_SCHEMA_VERSION",
]

#: Pseudo-rule reported when a suppression comment carries no reason.
SUPPRESSION_CODE = "BRS000"

#: Bumped on incompatible JSON-report layout changes.  v2 added
#: ``schema_version`` itself, per-rule wall-time ``rule_timings``,
#: cache hit/miss accounting, and baseline fields.
REPORT_SCHEMA_VERSION = 2

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)(.*)$"
)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule hit: where it is and what discipline it breaks."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Interprocedural rules attach the offending call chain (one
    #: ``path:line: qualname()`` entry per hop, ending at the sink).
    chain: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        # Accept lists from rule code / cache deserialisation.
        if self.chain is not None and not isinstance(self.chain, tuple):
            object.__setattr__(self, "chain", tuple(self.chain))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (one array entry in the report)."""
        out: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.chain is not None:
            out["chain"] = list(self.chain)
        return out

    def render(self) -> str:
        """``path:line:col: RULE message`` — editor-clickable; chains
        render one indented hop per line."""
        head = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if not self.chain:
            return head
        hops = "\n".join(f"    {hop}" for hop in self.chain)
        return f"{head}\n{hops}"

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-independent identity, used by baseline matching."""
        return (self.rule, self.path, self.message)


@dataclasses.dataclass
class FileContext:
    """Everything a per-file rule may inspect about one file."""

    path: str
    module: Tuple[str, ...]
    tree: ast.Module
    source_lines: List[str]

    def in_packages(self, *packages: str) -> bool:
        """True when the file lives under ``repro.<package>`` for any given
        package name (``core``, ``overlay``, ``experiments``, ...)."""
        if len(self.module) < 2 or self.module[0] != "repro":
            return False
        return self.module[1] in packages

    def is_module(self, *parts: str) -> bool:
        """True when the dotted module path equals ``parts`` exactly."""
        return self.module == parts


@dataclasses.dataclass
class LintReport:
    """Aggregate result of one lint run."""

    files: int
    violations: List[Violation]
    #: Per-rule wall time in seconds (whole-program rules included).
    rule_timings: Dict[str, float] = dataclasses.field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Violations excused by the ``--baseline`` file this run.
    baselined: List[Violation] = dataclasses.field(default_factory=list)
    #: Baseline entries that no longer fire (candidates for ratcheting).
    stale_baseline: List[Dict[str, str]] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        """Violation count per rule code, sorted by code."""
        out: Dict[str, int] = {}
        for v in sorted(self.violations, key=lambda v: v.rule):
            out[v.rule] = out.get(v.rule, 0) + 1
        return out


def _module_parts(path: str) -> Tuple[str, ...]:
    """Best-effort dotted module path: everything from the last ``repro``
    path segment on (``src/repro/core/ldt.py`` → ``("repro","core","ldt")``).

    Files outside a ``repro`` tree (tests, benchmarks) keep their own
    trailing segments so path-scoped rules simply never match them.
    """
    norm = path.replace(os.sep, "/")
    parts = [p for p in norm.split("/") if p and p != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return tuple(parts)


def _parse_suppressions(
    source_lines: Sequence[str], path: str
) -> Tuple[Dict[int, Set[str]], List[Violation]]:
    """Scan source lines for suppression comments.

    Returns ``line → {codes}`` (comment-only lines also cover the next
    line) plus the BRS000 violations for reasonless suppressions.
    """
    table: Dict[int, Set[str]] = {}
    problems: List[Violation] = []
    for lineno, line in enumerate(source_lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        codes = {c.strip() for c in m.group(1).split(",")}
        reason = m.group(2).strip()
        if not reason:
            problems.append(
                Violation(
                    rule=SUPPRESSION_CODE,
                    path=path,
                    line=lineno,
                    col=line.index("#"),
                    message="suppression comment must state a reason "
                    "(# repro-lint: disable=BRS00X <why>)",
                )
            )
            continue
        table.setdefault(lineno, set()).update(codes)
        if line.lstrip().startswith("#"):
            # Comment-only line: the suppression targets the next line.
            table.setdefault(lineno + 1, set()).update(codes)
    return table, problems


def _selected_codes(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> Set[str]:
    from .rules import RULES
    from .wholeprogram import PROJECT_RULES

    known = set(RULES) | set(PROJECT_RULES)
    codes = set(select) if select else set(known)
    if ignore:
        codes -= set(ignore)
    unknown = codes - known
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    return codes


def _lint_tree(
    tree: ast.Module,
    path: str,
    lines: List[str],
) -> Dict[str, List[Violation]]:
    """Run every per-file rule over one parsed tree; violations keyed by
    rule code, *before* suppression filtering (the cache stores these so
    select/ignore can vary without re-parsing)."""
    from .rules import RULES

    ctx = FileContext(
        path=path, module=_module_parts(path), tree=tree, source_lines=lines
    )
    found: Dict[str, List[Violation]] = {}
    for code, rule in RULES.items():
        found[code] = list(rule.check(ctx))
    return found


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one source string as though it lived at ``path``.

    Runs the per-file rules only (whole-program rules need a project;
    see :func:`lint_paths`).  ``path`` drives the path-scoped rules
    (BRS002 only fires under ``repro/core|overlay|experiments``), which
    is what the fixture tests exploit: the same snippet can be checked
    in and out of scope.
    """
    codes = _selected_codes(select, ignore)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                rule="PARSE",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    suppressions, problems = _parse_suppressions(lines, path)
    found: List[Violation] = list(problems)
    per_rule = _lint_tree(tree, path, lines)
    for code in sorted(per_rule):
        if code not in codes:
            continue
        for v in per_rule[code]:
            if v.rule not in suppressions.get(v.line, ()):
                found.append(v)
    return sorted(found, key=lambda v: (v.line, v.col, v.rule))


def lint_file(
    path: str,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one file on disk (per-file rules only)."""
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path, select=select, ignore=ignore)


#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is),
    in sorted order so reports are stable across filesystems."""
    for target in paths:
        if os.path.isfile(target):
            yield target
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


@dataclasses.dataclass
class _FileEntry:
    """One analyzed file: everything the whole-program pass needs."""

    path: str
    violations_by_rule: Dict[str, List[Violation]]
    problems: List[Violation]  # BRS000 + PARSE
    suppressions: Dict[int, Set[str]]
    facts: Optional[Dict[str, Any]]  # ModuleFacts.to_dict(), None on parse error


def _analyze_source(source: str, path: str) -> _FileEntry:
    """Parse + per-file rules + fact extraction for one file.

    Syntax errors are *reported*, never raised: the file contributes a
    single PARSE violation and is excluded from the project model.
    """
    from .project import extract_facts

    lines = source.splitlines()
    suppressions, problems = _parse_suppressions(lines, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        problems.append(
            Violation(
                rule="PARSE",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        )
        return _FileEntry(
            path=path,
            violations_by_rule={},
            problems=problems,
            suppressions=suppressions,
            facts=None,
        )
    module = _module_parts(path)
    per_rule = _lint_tree(tree, path, lines)
    facts = extract_facts(tree, path, module)
    return _FileEntry(
        path=path,
        violations_by_rule=per_rule,
        problems=problems,
        suppressions=suppressions,
        facts=facts.to_dict(),
    )


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    cache_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint every Python file under ``paths``; the CLI's workhorse.

    Per-file work is cached in ``cache_path`` (content-hash keyed) when
    given.  The whole-program rules run over every analyzed module whose
    dotted path starts with ``repro`` — the project model's scope.
    ``baseline_path`` excuses known violations (see
    :mod:`repro.lint.baseline`).
    """
    from . import cache as _cache
    from .baseline import apply_baseline, load_baseline
    from .project import ModuleFacts, Project
    from .wholeprogram import PROJECT_RULES

    codes = _selected_codes(select, ignore)
    store = _cache.CacheStore.load(cache_path) if cache_path else None

    files = 0
    entries: List[_FileEntry] = []
    timings: Dict[str, float] = {}
    hits = misses = 0
    for path in iter_python_files(paths):
        files += 1
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        entry: Optional[_FileEntry] = None
        digest = _cache.content_digest(source)
        if store is not None:
            entry = store.get(path, digest)
        if entry is None:
            misses += 1
            t0 = _time.perf_counter()
            entry = _analyze_source(source, path)
            elapsed = _time.perf_counter() - t0
            # File-rule timing is attributed per rule on cache misses.
            per = elapsed / max(1, len(entry.violations_by_rule) or 1)
            for code in entry.violations_by_rule:
                timings[code] = timings.get(code, 0.0) + per
            if store is not None:
                store.put(path, digest, entry)
        else:
            hits += 1
        entries.append(entry)
    if store is not None:
        store.save()

    violations: List[Violation] = []
    suppression_map: Dict[str, Dict[int, Set[str]]] = {}
    for entry in entries:
        suppression_map[entry.path] = entry.suppressions
        violations.extend(entry.problems)
        for code in sorted(entry.violations_by_rule):
            if code not in codes:
                continue
            for v in entry.violations_by_rule[code]:
                if v.rule not in entry.suppressions.get(v.line, ()):
                    violations.append(v)

    # ---- whole-program pass ------------------------------------------
    project_codes = sorted(codes & set(PROJECT_RULES))
    if project_codes:
        facts = [
            ModuleFacts.from_dict(e.facts)
            for e in entries
            if e.facts is not None and e.facts["module"][:1] == ["repro"]
        ]
        project = Project(facts)
        for code in project_codes:
            rule = PROJECT_RULES[code]
            t0 = _time.perf_counter()
            for v in rule.check_project(project, suppression_map):
                table = suppression_map.get(v.path, {})
                if v.rule not in table.get(v.line, ()):
                    violations.append(v)
            timings[code] = timings.get(code, 0.0) + (_time.perf_counter() - t0)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    report = LintReport(
        files=files,
        violations=violations,
        rule_timings={k: round(v, 6) for k, v in sorted(timings.items())},
        cache_hits=hits,
        cache_misses=misses,
    )
    if baseline_path is not None:
        apply_baseline(report, load_baseline(baseline_path))
    return report


def report_as_dict(report: LintReport) -> Dict[str, object]:
    """The machine-readable (CI artifact) form of a lint run."""
    return {
        "kind": "repro-lint-report",
        "version": 1,
        "schema_version": REPORT_SCHEMA_VERSION,
        "files": report.files,
        "violation_count": len(report.violations),
        "counts": report.counts(),
        "violations": [v.as_dict() for v in report.violations],
        "rule_timings": report.rule_timings,
        "cache": {"hits": report.cache_hits, "misses": report.cache_misses},
        "baselined_count": len(report.baselined),
        "baselined": [v.as_dict() for v in report.baselined],
        "stale_baseline": report.stale_baseline,
    }

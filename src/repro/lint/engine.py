"""Linter engine: file walking, suppression handling, and reporting.

The engine is deliberately small: it parses each file once with
:mod:`ast`, hands the tree to every registered rule (see
:mod:`repro.lint.rules`), then filters the collected violations through
the inline-suppression table.  Everything a rule needs — the tree, the
raw source lines, the dotted module path — travels in one
:class:`FileContext`, so rules stay pure functions of the file.

Suppression syntax (the reason is mandatory)::

    expr()  # repro-lint: disable=BRS001 fixture exercises the bad API
    # repro-lint: disable=BRS002,BRS006 reason text     (whole next line)

A comment-only suppression line applies to the next source line, so
multi-line statements can be suppressed without trailing comments.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "FileContext",
    "LintReport",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "report_as_dict",
]

#: Pseudo-rule reported when a suppression comment carries no reason.
SUPPRESSION_CODE = "BRS000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)(.*)$"
)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule hit: where it is and what discipline it breaks."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (one array entry in the report)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: RULE message`` — editor-clickable."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclasses.dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str
    module: Tuple[str, ...]
    tree: ast.Module
    source_lines: List[str]

    def in_packages(self, *packages: str) -> bool:
        """True when the file lives under ``repro.<package>`` for any given
        package name (``core``, ``overlay``, ``experiments``, ...)."""
        if len(self.module) < 2 or self.module[0] != "repro":
            return False
        return self.module[1] in packages

    def is_module(self, *parts: str) -> bool:
        """True when the dotted module path equals ``parts`` exactly."""
        return self.module == parts


@dataclasses.dataclass
class LintReport:
    """Aggregate result of one lint run."""

    files: int
    violations: List[Violation]

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        """Violation count per rule code, sorted by code."""
        out: Dict[str, int] = {}
        for v in sorted(self.violations, key=lambda v: v.rule):
            out[v.rule] = out.get(v.rule, 0) + 1
        return out


def _module_parts(path: str) -> Tuple[str, ...]:
    """Best-effort dotted module path: everything from the last ``repro``
    path segment on (``src/repro/core/ldt.py`` → ``("repro","core","ldt")``).

    Files outside a ``repro`` tree (tests, benchmarks) keep their own
    trailing segments so path-scoped rules simply never match them.
    """
    norm = path.replace(os.sep, "/")
    parts = [p for p in norm.split("/") if p and p != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    return tuple(parts)


def _parse_suppressions(
    source_lines: Sequence[str], path: str
) -> Tuple[Dict[int, Set[str]], List[Violation]]:
    """Scan source lines for suppression comments.

    Returns ``line → {codes}`` (comment-only lines also cover the next
    line) plus the BRS000 violations for reasonless suppressions.
    """
    table: Dict[int, Set[str]] = {}
    problems: List[Violation] = []
    for lineno, line in enumerate(source_lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        codes = {c.strip() for c in m.group(1).split(",")}
        reason = m.group(2).strip()
        if not reason:
            problems.append(
                Violation(
                    rule=SUPPRESSION_CODE,
                    path=path,
                    line=lineno,
                    col=line.index("#"),
                    message="suppression comment must state a reason "
                    "(# repro-lint: disable=BRS00X <why>)",
                )
            )
            continue
        table.setdefault(lineno, set()).update(codes)
        if line.lstrip().startswith("#"):
            # Comment-only line: the suppression targets the next line.
            table.setdefault(lineno + 1, set()).update(codes)
    return table, problems


def _selected_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List["Rule"]:
    from .rules import RULES

    codes = set(select) if select else set(RULES)
    if ignore:
        codes -= set(ignore)
    unknown = codes - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    return [RULES[c] for c in sorted(codes)]


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one source string as though it lived at ``path``.

    ``path`` drives the path-scoped rules (BRS002 only fires under
    ``repro/core|overlay|experiments``), which is what the fixture tests
    exploit: the same snippet can be checked in and out of scope.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                rule="PARSE",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(
        path=path, module=_module_parts(path), tree=tree, source_lines=lines
    )
    suppressions, problems = _parse_suppressions(lines, path)
    found: List[Violation] = list(problems)
    for rule in _selected_rules(select, ignore):
        for v in rule.check(ctx):
            if v.rule not in suppressions.get(v.line, ()):
                found.append(v)
    return sorted(found, key=lambda v: (v.line, v.col, v.rule))


def lint_file(
    path: str,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one file on disk."""
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path, select=select, ignore=ignore)


#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is),
    in sorted order so reports are stable across filesystems."""
    for target in paths:
        if os.path.isfile(target):
            yield target
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths``; the CLI's workhorse."""
    files = 0
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        files += 1
        violations.extend(lint_file(path, select=select, ignore=ignore))
    return LintReport(files=files, violations=violations)


def report_as_dict(report: LintReport) -> Dict[str, object]:
    """The machine-readable (CI artifact) form of a lint run."""
    return {
        "kind": "repro-lint-report",
        "version": 1,
        "files": report.files,
        "violation_count": len(report.violations),
        "counts": report.counts(),
        "violations": [v.as_dict() for v in report.violations],
    }

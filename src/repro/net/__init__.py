"""Underlay network substrate.

Weighted router graphs, the GT-ITM-style transit-stub generator the paper
evaluates on, Dijkstra shortest paths (the §4.1 path-cost metric), host
addressing and placement.
"""

from .address import UNRESOLVED, NetworkAddress
from .graph import Graph
from .placement import Placement
from .shortest_path import PathOracle, dijkstra_csr, reconstruct_path
from .transit_stub import (
    TransitStubParams,
    TransitStubTopology,
    generate_transit_stub,
    params_for_router_count,
)

__all__ = [
    "UNRESOLVED",
    "NetworkAddress",
    "Graph",
    "Placement",
    "PathOracle",
    "dijkstra_csr",
    "reconstruct_path",
    "TransitStubParams",
    "TransitStubTopology",
    "generate_transit_stub",
    "params_for_router_count",
]

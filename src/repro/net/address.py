"""Network addresses and attachment points.

A Bristle *state-pair* is ``<hash key, network address>`` where the network
address is "e.g., the IP address and port number" (§1).  In the simulation a
:class:`NetworkAddress` names the router a host is currently attached to
plus a port and an *epoch*.  The epoch increments every time the host
moves; a cached address with a stale epoch is exactly the paper's
"invalidated" address, and lets the simulator detect staleness without a
global oracle.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["NetworkAddress", "UNRESOLVED"]


@dataclasses.dataclass(frozen=True)
class NetworkAddress:
    """Immutable location of a host on the underlay.

    Attributes
    ----------
    router:
        Attachment-point router id in the underlay graph.
    port:
        Demultiplexing port (distinguishes co-located hosts).
    epoch:
        Movement generation of the host when this address was minted.
        Comparing a cached address's epoch to the host's current epoch
        reveals staleness.
    """

    router: int
    port: int
    epoch: int = 0

    def moved(self, new_router: int) -> "NetworkAddress":
        """Address after a move to ``new_router`` (epoch bumped)."""
        return NetworkAddress(router=new_router, port=self.port, epoch=self.epoch + 1)

    def same_location(self, other: "NetworkAddress") -> bool:
        """True when both addresses point at the same router and port."""
        return self.router == other.router and self.port == other.port

    def __str__(self) -> str:
        return f"{self.router}:{self.port}@e{self.epoch}"


#: Sentinel for "address not resolved" — the paper's ``null`` address.
UNRESOLVED: Optional[NetworkAddress] = None

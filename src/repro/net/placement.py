"""Host placement: attaching overlay nodes to underlay routers.

"Each Bristle node is randomly placed to the network" (§4).  The
:class:`Placement` tracks which router each host currently sits on, mints
:class:`~repro.net.address.NetworkAddress` values, and performs moves
(random re-attachment, the mobility primitive of §2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.rng import RngStreams
from .address import NetworkAddress
from .shortest_path import PathOracle
from .transit_stub import TransitStubTopology

__all__ = ["Placement"]


class Placement:
    """Assigns hosts to attachment points and tracks their movement.

    Parameters
    ----------
    topology:
        The underlay; hosts attach to its stub routers.
    rng:
        Random streams (stream name ``"placement"`` for initial placement,
        ``"mobility"`` for moves).
    """

    def __init__(self, topology: TransitStubTopology, rng: RngStreams) -> None:
        self.topology = topology
        self._rng = rng
        self._points: List[int] = topology.attachment_points()
        if not self._points:
            raise ValueError("topology offers no attachment points")
        self._current: Dict[int, NetworkAddress] = {}
        self._next_port = 1
        self.move_count = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, host_id: int, router: Optional[int] = None) -> NetworkAddress:
        """Attach ``host_id`` to ``router`` (random stub router if omitted).

        Re-attaching an already-attached host raises; use :meth:`move`.
        """
        if host_id in self._current:
            raise ValueError(f"host {host_id} is already attached; use move()")
        if router is None:
            router = self._points[self._rng.randint("placement", 0, len(self._points))]
        addr = NetworkAddress(router=router, port=self._next_port, epoch=0)
        self._next_port += 1
        self._current[host_id] = addr
        return addr

    def move(self, host_id: int, router: Optional[int] = None) -> NetworkAddress:
        """Move ``host_id`` to a new attachment point, bumping its epoch.

        When ``router`` is omitted a random stub router *different from the
        current one* is chosen (when more than one exists), modelling a real
        change of attachment point.
        """
        addr = self._current.get(host_id)
        if addr is None:
            raise KeyError(f"host {host_id} is not attached")
        if router is None:
            if len(self._points) == 1:
                router = self._points[0]
            else:
                while True:
                    router = self._points[self._rng.randint("mobility", 0, len(self._points))]
                    if router != addr.router:
                        break
        new_addr = addr.moved(router)
        self._current[host_id] = new_addr
        self.move_count += 1
        return new_addr

    def move_group(
        self, host_ids: List[int], router: Optional[int] = None
    ) -> Dict[int, NetworkAddress]:
        """Move co-hosted hosts to one shared new attachment point.

        A mobile host carrying several resource keys changes attachment
        point *once*; every key it owns lands on the same router.  One
        router draw (stream ``"mobility"``) serves the whole group — when
        ``router`` is omitted a random stub router different from the
        first host's current one is chosen, mirroring :meth:`move`.
        Returns host id → new address; every epoch is bumped.
        """
        if not host_ids:
            raise ValueError("move_group needs at least one host")
        missing = [h for h in host_ids if h not in self._current]
        if missing:
            raise KeyError(f"hosts not attached: {missing}")
        if router is None:
            anchor = self._current[host_ids[0]].router
            if len(self._points) == 1:
                router = self._points[0]
            else:
                while True:
                    router = self._points[self._rng.randint("mobility", 0, len(self._points))]
                    if router != anchor:
                        break
        out: Dict[int, NetworkAddress] = {}
        for host_id in host_ids:
            new_addr = self._current[host_id].moved(router)
            self._current[host_id] = new_addr
            out[host_id] = new_addr
            self.move_count += 1
        return out

    def detach(self, host_id: int) -> None:
        """Remove ``host_id`` from the placement (host left the system)."""
        if host_id not in self._current:
            raise KeyError(f"host {host_id} is not attached")
        del self._current[host_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def address_of(self, host_id: int) -> NetworkAddress:
        """Current address of ``host_id`` (KeyError when unattached)."""
        return self._current[host_id]

    def is_attached(self, host_id: int) -> bool:
        """True when ``host_id`` currently has an attachment point."""
        return host_id in self._current

    def is_current(self, host_id: int, addr: NetworkAddress) -> bool:
        """True when ``addr`` matches the host's *current* address exactly.

        This is the staleness oracle: a cached address whose epoch lags the
        host's current epoch is invalid (the paper's "p.addr is invalid").
        """
        cur = self._current.get(host_id)
        return cur is not None and cur == addr

    def router_of(self, host_id: int) -> int:
        """Current attachment router of ``host_id``."""
        return self._current[host_id].router

    def hosts(self) -> List[int]:
        """All attached host ids."""
        return list(self._current)

    def network_distance(self, oracle: PathOracle, a: int, b: int) -> float:
        """Shortest-path weight between hosts ``a`` and ``b`` right now."""
        return oracle.distance(self.router_of(a), self.router_of(b))

"""Prebuilt underlay bundles shared across experiment points.

The paper's sweeps (Fig 7/9, Table 1, the ext_* drivers) evaluate many
*independent* points that frequently share the same underlay: identical
``(seed, router_count)`` means an identical transit-stub topology and an
identical Dijkstra oracle.  Rebuilding (and re-warming) that underlay for
every point is pure waste — CFS/DHash-style measurement harnesses amortise
topology construction across trials for the same reason.

This module provides three pieces (see docs/performance.md):

* :class:`UnderlayBundle` — an immutable ``(topology, oracle)`` pair plus
  the ``(seed, router_count)`` key it was derived from.  Placement is
  deliberately *not* part of the bundle: :class:`~repro.net.placement.Placement`
  carries mutable per-network attachment state, so every
  :class:`~repro.core.bristle.BristleNetwork` builds its own placement
  from its own RNG (which keeps results bit-identical with the unshared
  path).
* :func:`build_underlay` — builds a bundle through exactly the same
  ``generate_transit_stub(params_for_router_count(...), RngStreams(seed))``
  derivation the network constructor uses inline, so a cached bundle and
  an inline build are indistinguishable byte-for-byte.
* :class:`UnderlayCache` — a small LRU keyed on ``(seed, router_count)``
  with hit/miss/build observability, plus a process-wide instance
  (:func:`shared_underlay_cache`).  Fork-based sweep workers inherit the
  warm cache copy-on-write.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..sim.rng import RngStreams
from .shortest_path import PathOracle
from .transit_stub import (
    TransitStubTopology,
    generate_transit_stub,
    params_for_router_count,
)

__all__ = [
    "UnderlayBundle",
    "build_underlay",
    "UnderlayCache",
    "shared_underlay_cache",
    "cache_stats_delta",
]


@dataclasses.dataclass(frozen=True)
class UnderlayBundle:
    """A prebuilt underlay: frozen topology + shared path oracle.

    The oracle is shared by every network built on the bundle, so its
    Dijkstra row cache stays warm across an entire sweep; per-point cache
    accounting must therefore use :func:`cache_stats_delta` rather than
    raw :meth:`~repro.net.shortest_path.PathOracle.cache_stats` snapshots.
    """

    seed: int
    router_count: int
    topology: TransitStubTopology
    oracle: PathOracle

    @property
    def key(self) -> Tuple[int, int]:
        """The cache key this bundle was derived from."""
        return (self.seed, self.router_count)


def build_underlay(seed: int, router_count: int) -> UnderlayBundle:
    """Build a bundle via the network constructor's own derivation.

    Uses ``RngStreams(seed)`` named streams, so the resulting topology is
    identical to what ``BristleNetwork(config=BristleConfig(seed=seed),
    router_count=router_count)`` would generate inline — named streams are
    independent of draw order, making the underlay a pure function of
    ``(seed, router_count)``.
    """
    rng = RngStreams(seed)
    topology = generate_transit_stub(params_for_router_count(router_count), rng)
    return UnderlayBundle(
        seed=seed,
        router_count=router_count,
        topology=topology,
        oracle=PathOracle(topology.graph),
    )


class UnderlayCache:
    """LRU cache of :class:`UnderlayBundle` keyed on ``(seed, router_count)``.

    Thread-safe; the bound keeps memory predictable when a sweep spans
    many distinct router counts (ext_scaling builds one underlay per
    population size).  Stats mirror the oracle's cache observability.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._bundles: "OrderedDict[Tuple[int, int], UnderlayBundle]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, seed: int, router_count: int) -> UnderlayBundle:
        """The cached bundle for ``(seed, router_count)``, building on miss."""
        key = (seed, router_count)
        with self._lock:
            bundle = self._bundles.get(key)
            if bundle is not None:
                self.hits += 1
                self._bundles.move_to_end(key)
                return bundle
            self.misses += 1
        # Build outside the lock: generation + graph freeze is the slow part.
        bundle = build_underlay(seed, router_count)
        with self._lock:
            if key not in self._bundles and len(self._bundles) >= self.max_entries:
                self._bundles.popitem(last=False)
                self.evictions += 1
            self._bundles[key] = bundle
            self._bundles.move_to_end(key)
        return bundle

    def __len__(self) -> int:
        return len(self._bundles)

    def clear(self) -> None:
        """Drop every cached bundle (counters are kept)."""
        with self._lock:
            self._bundles.clear()

    def stats(self) -> Dict[str, float]:
        """Snapshot of the cache counters (``hit_rate`` NaN before use)."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._bundles),
            "hit_rate": self.hits / lookups if lookups else float("nan"),
        }


# Constructed eagerly (an empty OrderedDict plus a lock — no underlays
# are built until first use), so no code path ever rebinds the module
# global: sweep workers inherit the parent's warm cache on fork and any
# miss-side inserts they make stay local by design (BRS011 verifies no
# worker-reachable ``global`` rebinding remains).
_SHARED: UnderlayCache = UnderlayCache()


def shared_underlay_cache() -> UnderlayCache:
    """The process-wide underlay cache.

    Sweep drivers fetch bundles here so that one run's points — and, on
    fork platforms, the pool workers inheriting the parent's memory —
    share underlay construction.
    """
    return _SHARED


#: Counters that accumulate monotonically and therefore difference cleanly.
_DELTA_KEYS = ("hits", "misses", "evictions", "dijkstra_runs", "batch_calls")


def cache_stats_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Per-point oracle stats when the oracle outlives the point.

    Subtracts the monotone counters, recomputes ``hit_rate`` over the
    window, and reports the *current* ``cached_sources`` (a gauge, not a
    counter).  Drivers sum these deltas across points; the totals then
    match what per-point oracles would have reported.
    """
    delta: Dict[str, float] = {
        k: after.get(k, 0) - before.get(k, 0) for k in _DELTA_KEYS
    }
    lookups = delta["hits"] + delta["misses"]
    delta["cached_sources"] = after.get("cached_sources", 0)
    delta["hit_rate"] = delta["hits"] / lookups if lookups else float("nan")
    return delta

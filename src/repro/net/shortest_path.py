"""Shortest-path machinery: Dijkstra with per-source caching.

The paper's path-cost metric (§4.1) charges each application-level hop the
*shortest-path weight* between the two endpoints' attachment points, and
Figure 9's LDT edge cost is likewise "the minimal sum of path weights for
the network links assembling the edge".  Experiments therefore issue very
many point-to-point distance queries against a static topology — the right
shape is single-source Dijkstra, memoised per source, with a batched
multi-source fast path for the sweeps that know their source set up front.

``dijkstra_csr`` runs over the frozen CSR arrays of
:class:`~repro.net.graph.Graph` with a binary heap; profiling on the
Figure-7 workload showed the CSR inner loop ~3× faster than a dict-of-dicts
walk (contiguous array reads — see the cache-effects discussion in the
hpc-parallel guide).  :meth:`PathOracle.distances_many` amortises the
remaining per-call overhead by handing scipy the whole source list in one
``csgraph.dijkstra`` invocation, and :meth:`PathOracle.route_costs` turns a
pair list into one vectorised gather over the cached distance rows.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

try:  # scipy's compiled Dijkstra is ~100x the pure-Python one; optional.
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy present in the test env
    _HAVE_SCIPY = False

from .graph import Graph

__all__ = ["dijkstra_csr", "PathOracle", "reconstruct_path"]


def dijkstra_csr(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths on a frozen graph.

    Returns ``(dist, parent)`` arrays of length ``n``: ``dist[v]`` is the
    shortest-path weight from ``source`` to ``v`` (``inf`` if unreachable)
    and ``parent[v]`` the predecessor of ``v`` on one shortest path (``-1``
    for the source and unreachable vertices).
    """
    indptr, indices, weights = graph.csr()
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    # (distance, vertex) heap with lazy deletion.
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        lo, hi = indptr[u], indptr[u + 1]
        for k in range(lo, hi):
            v = int(indices[k])
            nd = d + float(weights[k])
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def reconstruct_path(parent: np.ndarray, source: int, target: int) -> List[int]:
    """Recover the vertex sequence source→target from a parent array.

    Returns an empty list when ``target`` is unreachable.
    """
    n = len(parent)
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    if not 0 <= target < n:
        raise IndexError(f"target {target} out of range [0, {n})")
    if target == source:
        return [source]
    if parent[target] < 0:
        return []
    path = [target]
    v = target
    while v != source:
        v = int(parent[v])
        path.append(v)
        if len(path) > n:  # defensive: corrupt parent array
            raise RuntimeError("cycle detected while reconstructing path")
    path.reverse()
    return path


class PathOracle:
    """Memoised point-to-point shortest-path distances on a frozen graph.

    The oracle runs Dijkstra once per *distinct source* and caches the full
    distance vector; subsequent queries from that source are O(1) array
    reads.  With 2,000–10,000 stationary endpoints and 10,000 sampled routes
    this caps the number of Dijkstra runs at the number of distinct sources
    actually queried.

    Sweeps that know their source set up front should call :meth:`prewarm`
    (or :meth:`distances_many` directly): scipy then computes every missing
    row in a single compiled ``csgraph.dijkstra`` call instead of one call
    per source, and the per-query path reduces to cache reads.

    Cache behaviour is observable: ``cache_hits`` / ``cache_misses`` /
    ``cache_evictions`` count per-source row lookups, ``dijkstra_runs``
    counts computed rows and ``batch_calls`` the multi-source invocations;
    :meth:`cache_stats` snapshots all of them for metrics export.

    Parameters
    ----------
    graph:
        A frozen :class:`Graph`.
    max_cached_sources:
        Optional LRU bound on cached distance vectors (each costs
        ``8 * n`` bytes).  Rows are promoted on every hit and the
        least-recently-used row is evicted, so a bounded oracle stays
        within budget without thrashing on repeated-source sweeps.
        ``None`` means unbounded.
    """

    def __init__(
        self,
        graph: Graph,
        max_cached_sources: Optional[int] = None,
        use_scipy: bool = True,
    ) -> None:
        if not graph.frozen:
            graph.freeze()
        if max_cached_sources is not None and max_cached_sources < 1:
            raise ValueError("max_cached_sources must be >= 1 (or None)")
        self.graph = graph
        self.max_cached_sources = max_cached_sources
        self.use_scipy = use_scipy and _HAVE_SCIPY
        self._scipy_graph = None
        if self.use_scipy:
            indptr, indices, weights = graph.csr()
            n = graph.num_vertices
            self._scipy_graph = _csr_matrix(
                (weights, indices, indptr), shape=(n, n)
            )
        # LRU order: oldest-used first; promoted via move_to_end on hit.
        self._dist_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._parent_cache: Dict[int, np.ndarray] = {}
        self.dijkstra_runs = 0  # single-source rows computed
        self.batch_calls = 0  # multi-source scipy invocations
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    def _run_single_source(self, source: int) -> Tuple[np.ndarray, np.ndarray]:
        if self.use_scipy:
            dist, parent = _scipy_dijkstra(
                self._scipy_graph,
                directed=False,
                indices=source,
                return_predecessors=True,
            )
            # scipy marks "no predecessor" with -9999; normalise to -1.
            parent = np.where(parent < 0, -1, parent).astype(np.int64)
            return dist, parent
        return dijkstra_csr(self.graph, source)

    def _store(self, source: int, dist: np.ndarray, parent: np.ndarray) -> None:
        """Insert one computed row, evicting the LRU row at the bound.

        ``_parent_cache`` is kept in lockstep with ``_dist_cache`` so
        :meth:`path` never sees a source whose distances survived eviction
        but whose predecessors did not (or vice versa).
        """
        if (
            self.max_cached_sources is not None
            and source not in self._dist_cache
            and len(self._dist_cache) >= self.max_cached_sources
        ):
            victim, _ = self._dist_cache.popitem(last=False)
            self._parent_cache.pop(victim, None)
            self.cache_evictions += 1
        self._dist_cache[source] = dist
        self._dist_cache.move_to_end(source)
        self._parent_cache[source] = parent

    def _ensure(self, source: int) -> np.ndarray:
        dist = self._dist_cache.get(source)
        if dist is not None:
            self.cache_hits += 1
            self._dist_cache.move_to_end(source)  # LRU promotion
            return dist
        self.cache_misses += 1
        dist, parent = self._run_single_source(source)
        self.dijkstra_runs += 1
        self._store(source, dist, parent)
        return dist

    def distances_many(self, sources: Sequence[int]) -> np.ndarray:
        """Distance rows for ``sources`` as one ``(len(sources), n)`` array.

        Every source missing from the cache is computed in a *single*
        multi-source ``scipy.sparse.csgraph.dijkstra`` call (falling back to
        a loop over :func:`dijkstra_csr` without scipy); already-cached rows
        are reused and promoted.  Duplicate sources are computed once.  The
        returned rows follow the input order and are valid even when a
        bounded cache cannot retain them all.
        """
        order = [int(s) for s in sources]
        if not order:
            return np.empty((0, self.graph.num_vertices), dtype=np.float64)
        rows: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        for s in dict.fromkeys(order):  # distinct, input order
            cached = self._dist_cache.get(s)
            if cached is not None:
                self.cache_hits += 1
                self._dist_cache.move_to_end(s)
                rows[s] = cached
            else:
                self.cache_misses += 1
                missing.append(s)
        if missing:
            if self.use_scipy and len(missing) > 1:
                dist, parent = _scipy_dijkstra(
                    self._scipy_graph,
                    directed=False,
                    indices=missing,
                    return_predecessors=True,
                )
                parent = np.where(parent < 0, -1, parent).astype(np.int64)
                self.batch_calls += 1
                for i, s in enumerate(missing):
                    rows[s] = dist[i]
                    self._store(s, dist[i], parent[i])
            else:
                for s in missing:
                    d, p = self._run_single_source(s)
                    rows[s] = d
                    self._store(s, d, p)
            self.dijkstra_runs += len(missing)
        return np.stack([rows[s] for s in order])

    def prewarm(self, sources: Iterable[int]) -> int:
        """Batch-compute distance rows for ``sources`` ahead of a sweep.

        Returns the number of rows that actually had to be computed.
        Pre-warming with the exact source set a sweep will touch turns its
        per-query :meth:`distance` calls into pure cache reads.
        """
        before = self.dijkstra_runs
        self.distances_many(list(dict.fromkeys(int(s) for s in sources)))
        return self.dijkstra_runs - before

    def route_costs(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Shortest-path weight for every ``(u, v)`` pair, vectorised.

        Missing source rows are computed with one multi-source call (via
        :meth:`distances_many`); costs are then gathered per source group
        with NumPy fancy indexing instead of one Python call per pair —
        the fast path for the Fig-7/Fig-9 cost sweeps.  Distances are
        symmetric (undirected underlay), so each pair charges whichever
        endpoint is already cached where possible.
        """
        if len(pairs) == 0:
            return np.empty(0, dtype=np.float64)
        us = np.asarray([p[0] for p in pairs], dtype=np.int64)
        vs = np.asarray([p[1] for p in pairs], dtype=np.int64)
        # Prefer already-cached sources pairwise (symmetry), mirroring
        # the swap in :meth:`distance`.
        swap = np.asarray(
            [
                v in self._dist_cache and u not in self._dist_cache
                for u, v in zip(us.tolist(), vs.tolist())
            ],
            dtype=bool,
        )
        us2 = np.where(swap, vs, us)
        vs2 = np.where(swap, us, vs)
        out = np.empty(len(pairs), dtype=np.float64)
        distinct = list(dict.fromkeys(us2.tolist()))
        rows = self.distances_many(distinct)
        row_of = {s: rows[i] for i, s in enumerate(distinct)}
        for s in distinct:
            mask = us2 == s
            out[mask] = row_of[s][vs2[mask]]
        return out

    def distance(self, u: int, v: int) -> float:
        """Shortest-path weight between ``u`` and ``v`` (inf if disconnected)."""
        if u == v:
            return 0.0
        # Prefer a source that is already cached; distances are symmetric
        # in an undirected graph.
        if v in self._dist_cache and u not in self._dist_cache:
            u, v = v, u
        return float(self._ensure(u)[v])

    def distances_from(self, source: int) -> np.ndarray:
        """Full distance vector from ``source`` (cached)."""
        return self._ensure(source)

    def path(self, u: int, v: int) -> List[int]:
        """One shortest vertex path u→v (empty when unreachable)."""
        self._ensure(u)
        return reconstruct_path(self._parent_cache[u], u, v)

    def hop_count(self, u: int, v: int) -> int:
        """Number of underlay links on one shortest path u→v (-1 if none)."""
        p = self.path(u, v)
        return len(p) - 1 if p else -1

    @property
    def cached_sources(self) -> int:
        return len(self._dist_cache)

    def cache_stats(self) -> Dict[str, float]:
        """Snapshot of the cache counters for metrics export.

        ``hit_rate`` is hits / (hits + misses), NaN before any lookup.
        """
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "dijkstra_runs": self.dijkstra_runs,
            "batch_calls": self.batch_calls,
            "cached_sources": len(self._dist_cache),
            "hit_rate": self.cache_hits / lookups if lookups else float("nan"),
        }

    def reset_stats(self) -> None:
        """Zero the counters (the cached rows are kept)."""
        self.dijkstra_runs = 0
        self.batch_calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

"""Shortest-path machinery: Dijkstra with per-source caching.

The paper's path-cost metric (§4.1) charges each application-level hop the
*shortest-path weight* between the two endpoints' attachment points, and
Figure 9's LDT edge cost is likewise "the minimal sum of path weights for
the network links assembling the edge".  Experiments therefore issue very
many point-to-point distance queries against a static topology — the right
shape is single-source Dijkstra, memoised per source.

``dijkstra_csr`` runs over the frozen CSR arrays of
:class:`~repro.net.graph.Graph` with a binary heap; profiling on the
Figure-7 workload showed the CSR inner loop ~3× faster than a dict-of-dicts
walk (contiguous array reads — see the cache-effects discussion in the
hpc-parallel guide).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # scipy's compiled Dijkstra is ~100x the pure-Python one; optional.
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy present in the test env
    _HAVE_SCIPY = False

from .graph import Graph

__all__ = ["dijkstra_csr", "PathOracle", "reconstruct_path"]


def dijkstra_csr(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths on a frozen graph.

    Returns ``(dist, parent)`` arrays of length ``n``: ``dist[v]`` is the
    shortest-path weight from ``source`` to ``v`` (``inf`` if unreachable)
    and ``parent[v]`` the predecessor of ``v`` on one shortest path (``-1``
    for the source and unreachable vertices).
    """
    indptr, indices, weights = graph.csr()
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    # (distance, vertex) heap with lazy deletion.
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        lo, hi = indptr[u], indptr[u + 1]
        for k in range(lo, hi):
            v = int(indices[k])
            nd = d + float(weights[k])
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def reconstruct_path(parent: np.ndarray, source: int, target: int) -> List[int]:
    """Recover the vertex sequence source→target from a parent array.

    Returns an empty list when ``target`` is unreachable.
    """
    if target == source:
        return [source]
    if parent[target] < 0:
        return []
    path = [target]
    v = target
    while v != source:
        v = int(parent[v])
        path.append(v)
        if len(path) > len(parent):  # defensive: corrupt parent array
            raise RuntimeError("cycle detected while reconstructing path")
    path.reverse()
    return path


class PathOracle:
    """Memoised point-to-point shortest-path distances on a frozen graph.

    The oracle runs Dijkstra once per *distinct source* and caches the full
    distance vector; subsequent queries from that source are O(1) array
    reads.  With 2,000–10,000 stationary endpoints and 10,000 sampled routes
    this caps the number of Dijkstra runs at the number of distinct sources
    actually queried.

    Parameters
    ----------
    graph:
        A frozen :class:`Graph`.
    max_cached_sources:
        Optional LRU-ish bound on cached distance vectors (each costs
        ``8 * n`` bytes).  ``None`` means unbounded.
    """

    def __init__(
        self,
        graph: Graph,
        max_cached_sources: Optional[int] = None,
        use_scipy: bool = True,
    ) -> None:
        if not graph.frozen:
            graph.freeze()
        self.graph = graph
        self.max_cached_sources = max_cached_sources
        self.use_scipy = use_scipy and _HAVE_SCIPY
        self._scipy_graph = None
        if self.use_scipy:
            indptr, indices, weights = graph.csr()
            n = graph.num_vertices
            self._scipy_graph = _csr_matrix(
                (weights, indices, indptr), shape=(n, n)
            )
        self._dist_cache: Dict[int, np.ndarray] = {}
        self._parent_cache: Dict[int, np.ndarray] = {}
        self.dijkstra_runs = 0  # instrumentation for perf tests

    def _run_single_source(self, source: int) -> Tuple[np.ndarray, np.ndarray]:
        if self.use_scipy:
            dist, parent = _scipy_dijkstra(
                self._scipy_graph,
                directed=False,
                indices=source,
                return_predecessors=True,
            )
            # scipy marks "no predecessor" with -9999; normalise to -1.
            parent = np.where(parent < 0, -1, parent).astype(np.int64)
            return dist, parent
        return dijkstra_csr(self.graph, source)

    def _ensure(self, source: int) -> np.ndarray:
        dist = self._dist_cache.get(source)
        if dist is None:
            if (
                self.max_cached_sources is not None
                and len(self._dist_cache) >= self.max_cached_sources
            ):
                # Evict an arbitrary (oldest-inserted) entry.
                victim = next(iter(self._dist_cache))
                del self._dist_cache[victim]
                self._parent_cache.pop(victim, None)
            dist, parent = self._run_single_source(source)
            self._dist_cache[source] = dist
            self._parent_cache[source] = parent
            self.dijkstra_runs += 1
        return dist

    def distance(self, u: int, v: int) -> float:
        """Shortest-path weight between ``u`` and ``v`` (inf if disconnected)."""
        if u == v:
            return 0.0
        # Prefer a source that is already cached; distances are symmetric
        # in an undirected graph.
        if v in self._dist_cache and u not in self._dist_cache:
            u, v = v, u
        return float(self._ensure(u)[v])

    def distances_from(self, source: int) -> np.ndarray:
        """Full distance vector from ``source`` (cached)."""
        return self._ensure(source)

    def path(self, u: int, v: int) -> List[int]:
        """One shortest vertex path u→v (empty when unreachable)."""
        self._ensure(u)
        return reconstruct_path(self._parent_cache[u], u, v)

    def hop_count(self, u: int, v: int) -> int:
        """Number of underlay links on one shortest path u→v (-1 if none)."""
        p = self.path(u, v)
        return len(p) - 1 if p else -1

    @property
    def cached_sources(self) -> int:
        return len(self._dist_cache)

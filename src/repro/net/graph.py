"""A compact weighted undirected graph for the underlay network.

The experiments run shortest-path queries over topologies of 10k+ routers,
so the representation is optimised for Dijkstra: adjacency is stored in CSR
(compressed sparse row) NumPy arrays built once by :meth:`Graph.freeze`.
During construction a plain dict-of-dicts is used for O(1) edge updates.

This is intentionally *not* networkx: the experiments only need weighted
adjacency plus Dijkstra, and a flat CSR layout is several times faster in
the 10,000-route sweeps of Figure 7 (cache-friendly contiguous access, per
the hpc-parallel optimisation guidance).  The test suite cross-validates
shortest paths against networkx.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """Weighted undirected multigraph-free graph with CSR freezing.

    Vertices are dense integers ``0..n-1`` created via :meth:`add_vertex`.
    Edge weights must be positive (Dijkstra precondition).  After topology
    construction call :meth:`freeze`; mutation afterwards raises.
    """

    def __init__(self) -> None:
        self._adj: List[Dict[int, float]] = []
        self._frozen = False
        # CSR arrays, valid only when frozen:
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Create a new vertex; returns its id."""
        self._check_mutable()
        self._adj.append({})
        return len(self._adj) - 1

    def add_vertices(self, count: int) -> List[int]:
        """Create ``count`` vertices; returns their ids."""
        self._check_mutable()
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        start = len(self._adj)
        self._adj.extend({} for _ in range(count))
        return list(range(start, start + count))

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add (or overwrite) the undirected edge ``{u, v}``.

        Self-loops are rejected (they never help a shortest path and would
        complicate the transit-stub generator's invariants).
        """
        self._check_mutable()
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u} not allowed")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        if v not in self._adj[u]:
            self._edge_count += 1
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    def freeze(self) -> None:
        """Build the CSR arrays and forbid further mutation."""
        if self._frozen:
            return
        n = len(self._adj)
        degrees = np.fromiter((len(nbrs) for nbrs in self._adj), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        weights = np.empty(nnz, dtype=np.float64)
        pos = 0
        for u, nbrs in enumerate(self._adj):
            # Sorted neighbours make iteration order deterministic.
            for v in sorted(nbrs):
                indices[pos] = v
                weights[pos] = nbrs[v]
                pos += 1
        self._indptr, self._indices, self._weights = indptr, indices, weights
        self._frozen = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    @property
    def frozen(self) -> bool:
        return self._frozen

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        return self._adj[u][v]

    def degree(self, u: int) -> int:
        """Number of neighbours of ``u``."""
        self._check_vertex(u)
        return len(self._adj[u])

    def neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``u`` (sorted by id)."""
        self._check_vertex(u)
        if self._frozen:
            assert self._indptr is not None
            lo, hi = self._indptr[u], self._indptr[u + 1]
            for k in range(lo, hi):
                yield int(self._indices[k]), float(self._weights[k])
        else:
            for v in sorted(self._adj[u]):
                yield v, self._adj[u][v]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate each undirected edge once as ``(u, v, weight)``, u < v."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    yield u, v, w

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the frozen ``(indptr, indices, weights)`` arrays."""
        if not self._frozen:
            raise RuntimeError("graph must be frozen before CSR access")
        assert self._indptr is not None and self._indices is not None and self._weights is not None
        return self._indptr, self._indices, self._weights

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def is_connected(self) -> bool:
        """BFS connectivity check (empty graph counts as connected)."""
        n = self.num_vertices
        if n == 0:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == n

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._adj):
            raise IndexError(f"vertex {u} out of range [0, {len(self._adj)})")

    def _check_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError("graph is frozen; no further mutation allowed")

"""Type A baseline: mobility as leave-and-rejoin over plain IP (§1).

"A straightforward solution is to treat that node as leaving the HS-P2P
and then joining as a new peer in the new location.  The peers in the
HS-P2P periodically update their states to preserve the freshness.  The
old states associated with the mobile node can then be removed gradually
from the system once their states expire. ... Apparently, this approach
cannot guarantee end-to-end semantics for applications running on top of
it."

The model: a single HS-P2P over all nodes; when a mobile node moves it
abandons its key and rejoins under a *fresh* key.  Messages addressed to
the old key fail (or reach a different owner) until peers' state expires —
exactly the end-to-end-semantics violation Table 1 records.  Each rejoin
costs the ``2 × O(log N)`` join messages of §2.3.3.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Set

from ..net.placement import Placement
from ..net.shortest_path import PathOracle
from ..net.transit_stub import TransitStubTopology
from ..overlay.base import Overlay
from ..overlay.chord import ChordOverlay
from ..overlay.keyspace import KeySpace
from ..sim.rng import RngStreams

__all__ = ["TypeAHSP2P", "TypeAMoveReport", "TypeALookup"]


@dataclasses.dataclass
class TypeAMoveReport:
    """One leave/rejoin cycle."""

    old_key: int
    new_key: int
    join_messages: int


@dataclasses.dataclass
class TypeALookup:
    """Outcome of looking up a (possibly stale) node key."""

    target: int
    hops: int
    path_cost: float
    #: True when the route delivered to the node the caller meant — False
    #: when the key was orphaned by a move (end-to-end semantics broken).
    reached_intended: bool


class TypeAHSP2P:
    """Leave-and-rejoin HS-P2P over a static-address underlay.

    Node identity is (host id → current key); a move retires the key, so
    correspondents holding the old key lose the node until they relearn
    the new key out of band.
    """

    def __init__(
        self,
        space: KeySpace,
        topology: TransitStubTopology,
        rng: RngStreams,
        host_keys: Dict[int, int],
        mobile_hosts: Set[int],
    ) -> None:
        self.space = space
        self.rng = rng
        self.oracle = PathOracle(topology.graph)
        self.placement = Placement(topology, rng)
        #: host id → current key
        self.key_of: Dict[int, int] = dict(host_keys)
        #: key → host id
        self.host_of: Dict[int, int] = {k: h for h, k in host_keys.items()}
        if len(self.host_of) != len(self.key_of):
            raise ValueError("host keys must be distinct")
        self.mobile_hosts = set(mobile_hosts)
        #: keys retired by moves but not yet expired from peers' state
        self.stale_keys: Set[int] = set()
        self.overlay: Overlay = ChordOverlay(space)
        self.overlay.build(list(self.key_of.values()))
        for host in self.key_of:
            self.placement.attach(host)
        self.total_join_messages = 0

    @property
    def num_nodes(self) -> int:
        return len(self.key_of)

    def move(self, host: int) -> TypeAMoveReport:
        """Host moves: leave under the old key, rejoin under a new one."""
        if host not in self.mobile_hosts:
            raise ValueError(f"host {host} is not mobile")
        old_key = self.key_of[host]
        new_key = self._fresh_key()
        self.overlay.remove_node(old_key)
        self.overlay.add_node(new_key)
        del self.host_of[old_key]
        self.host_of[new_key] = host
        self.key_of[host] = new_key
        self.stale_keys.add(old_key)
        self.placement.move(host)
        # §2.3.3: a joining node publishes its state to O(log N) nodes and
        # receives their registrations back — 2 × O(log N) messages.
        join_messages = 2 * max(1, math.ceil(math.log2(self.num_nodes)))
        self.total_join_messages += join_messages
        return TypeAMoveReport(old_key=old_key, new_key=new_key, join_messages=join_messages)

    def expire_stale_state(self) -> int:
        """Periodic freshness pass: retired keys vanish from the system."""
        n = len(self.stale_keys)
        self.stale_keys.clear()
        return n

    def lookup(self, source_host: int, target_key: int) -> TypeALookup:
        """Route from ``source_host`` toward ``target_key``.

        If ``target_key`` was retired by a move, the route still
        terminates (at whatever node now owns the key) but does *not*
        reach the intended host.
        """
        src_key = self.key_of[source_host]
        route = self.overlay.route(src_key, target_key)
        cost = 0.0
        for a, b in zip(route.hops, route.hops[1:]):
            cost += self.oracle.distance(
                self.placement.router_of(self.host_of[a]),
                self.placement.router_of(self.host_of[b]),
            )
        reached = self.host_of.get(target_key) is not None and route.success
        return TypeALookup(
            target=target_key,
            hops=route.hop_count,
            path_cost=cost,
            reached_intended=reached,
        )

    def _fresh_key(self) -> int:
        while True:
            k = self.rng.randint("type_a.keys", 0, self.space.size)
            if k not in self.host_of and k not in self.stale_keys:
                return k

"""Type B baseline: an HS-P2P deployed over (simulated) Mobile IP (§1).

"Mobile IP provides a transparent view of the underlying network to the
HS-P2P. ... However, mobile IP assumes that home and foreign agents are
reliable and administrative support is available.  These agents may
introduce critical points of failure and performance bottlenecks ...
Perhaps the most serious problem with mobile IP is the triangular route
that it introduces."

The model: every mobile host has a fixed **home agent** (a router in its
original stub domain).  Overlay routing is mobility-oblivious — each
overlay hop addressed to a moved mobile node physically travels
``sender → home agent → current location`` (the triangular route of RFC
2002 tunnelling).  Home agents can be failed to measure the
reliability/availability row of Table 1, and per-agent traffic counters
expose the bottleneck row.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Set

from ..net.placement import Placement
from ..net.shortest_path import PathOracle
from ..net.transit_stub import TransitStubTopology
from ..overlay.base import Overlay
from ..overlay.chord import ChordOverlay
from ..overlay.keyspace import KeySpace
from ..sim.rng import RngStreams

__all__ = ["TypeBMobileIPHSP2P", "TypeBLookup"]


@dataclasses.dataclass
class TypeBLookup:
    """Outcome of a Type-B lookup.

    ``delivered`` goes False when a required home agent was failed —
    packets to that host are simply lost (the critical-point-of-failure
    row of Table 1).
    """

    target: int
    hops: int
    path_cost: float
    triangular_detours: int
    delivered: bool


class TypeBMobileIPHSP2P:
    """HS-P2P whose mobile members are reached through home agents."""

    def __init__(
        self,
        space: KeySpace,
        topology: TransitStubTopology,
        rng: RngStreams,
        host_keys: Dict[int, int],
        mobile_hosts: Set[int],
    ) -> None:
        self.space = space
        self.rng = rng
        self.oracle = PathOracle(topology.graph)
        self.placement = Placement(topology, rng)
        self.key_of: Dict[int, int] = dict(host_keys)
        self.host_of: Dict[int, int] = {k: h for h, k in host_keys.items()}
        if len(self.host_of) != len(self.key_of):
            raise ValueError("host keys must be distinct")
        self.mobile_hosts = set(mobile_hosts)
        self.overlay: Overlay = ChordOverlay(space)
        self.overlay.build(list(self.key_of.values()))
        #: mobile host → home-agent router (its original attachment point)
        self.home_agent: Dict[int, int] = {}
        #: mobile host → away-from-home flag
        self.away: Set[int] = set()
        self.failed_agents: Set[int] = set()
        #: packets relayed per home-agent router (bottleneck metric)
        self.agent_load: Dict[int, int] = {}
        self.registration_messages = 0
        #: hosts speaking Mobile IPv6 (§1): correspondents that may cache
        #: a mover's care-of address after the first (triangular) packet
        self.ipv6_capable: Set[int] = set()
        #: (correspondent, mobile host) pairs with a cached binding
        self._bindings: Set[tuple] = set()
        for host in self.key_of:
            addr = self.placement.attach(host)
            if host in self.mobile_hosts:
                self.home_agent[host] = addr.router
                self.agent_load[addr.router] = self.agent_load.get(addr.router, 0)

    @property
    def num_nodes(self) -> int:
        return len(self.key_of)

    def move(self, host: int) -> None:
        """Host moves; it registers its care-of address with its home
        agent (one registration message — cheap, but the agent is now on
        every data path).  Any cached IPv6 bindings for the host become
        stale and are dropped (correspondents must re-learn via the
        agent)."""
        if host not in self.mobile_hosts:
            raise ValueError(f"host {host} is not mobile")
        self.placement.move(host)
        self.away.add(host)
        self.registration_messages += 1
        self._bindings = {(c, h) for c, h in self._bindings if h != host}

    def set_ipv6_capable(self, hosts) -> None:
        """Mark correspondents as mobile-IPv6 capable (§1: route
        optimisation 'requires that the correspondent host be
        mobile-IPv6 capable')."""
        self.ipv6_capable = set(hosts)

    def fail_agent(self, router: int) -> None:
        """Take a home agent down (reliability experiments)."""
        self.failed_agents.add(router)

    def restore_agent(self, router: int) -> None:
        """Bring a failed home agent back into service."""
        self.failed_agents.discard(router)

    def _physical_hop(self, src_host: int, dst_host: int) -> "tuple[float, int, bool]":
        """Cost of one overlay hop, detouring via the home agent when the
        destination is an away mobile host.

        An IPv6-capable sender holding a cached binding for the mover goes
        direct; the first packet still travels the triangle (and plants
        the binding).  Returns ``(cost, detours, delivered)``.
        """
        src_router = self.placement.router_of(src_host)
        if dst_host in self.away:
            dst_router = self.placement.router_of(dst_host)
            if src_host in self.ipv6_capable and (src_host, dst_host) in self._bindings:
                return self.oracle.distance(src_router, dst_router), 0, True
            agent = self.home_agent[dst_host]
            if agent in self.failed_agents:
                return 0.0, 0, False
            self.agent_load[agent] = self.agent_load.get(agent, 0) + 1
            if src_host in self.ipv6_capable:
                self._bindings.add((src_host, dst_host))
            cost = self.oracle.distance(src_router, agent) + self.oracle.distance(
                agent, dst_router
            )
            return cost, 1, True
        dst_router = self.placement.router_of(dst_host)
        return self.oracle.distance(src_router, dst_router), 0, True

    def lookup(self, source_host: int, target_key: int) -> TypeBLookup:
        """Route toward ``target_key``; every hop to an away mobile node
        pays the triangular detour."""
        src_key = self.key_of[source_host]
        route = self.overlay.route(src_key, target_key)
        cost = 0.0
        detours = 0
        delivered = True
        for a, b in zip(route.hops, route.hops[1:]):
            hop_cost, hop_detours, ok = self._physical_hop(self.host_of[a], self.host_of[b])
            if not ok:
                delivered = False
                break
            cost += hop_cost
            detours += hop_detours
        return TypeBLookup(
            target=target_key,
            hops=route.hop_count,
            path_cost=cost,
            triangular_detours=detours,
            delivered=delivered and route.success,
        )

    def agent_load_stats(self) -> Dict[str, float]:
        """Mean/max packets relayed per home agent (bottleneck row)."""
        loads = list(self.agent_load.values())
        if not loads:
            return {"mean": 0.0, "max": 0.0, "agents": 0.0}
        return {
            "mean": sum(loads) / len(loads),
            "max": float(max(loads)),
            "agents": float(len(loads)),
        }

"""Baseline architectures Bristle is compared against (Table 1).

Type A treats a move as leave-and-rejoin (breaking end-to-end semantics);
Type B layers the HS-P2P over simulated Mobile IP (triangular routes and
home-agent bottlenecks).
"""

from .type_a import TypeAHSP2P, TypeALookup, TypeAMoveReport
from .type_b import TypeBLookup, TypeBMobileIPHSP2P

__all__ = [
    "TypeAHSP2P",
    "TypeALookup",
    "TypeAMoveReport",
    "TypeBLookup",
    "TypeBMobileIPHSP2P",
]

"""Chord overlay (Stoica et al., SIGCOMM 2001) — one of the stationary-layer
substrates the paper names (§2.1, ref [12]).

Each node keeps a *finger table* (``finger[i] = successor(n + 2**i)`` for
``i = 0..m-1``) plus a successor list for robustness.  A key ``k`` is owned
by ``successor(k)`` — the first member key clockwise at-or-after ``k``.
Routing forwards to the closest *preceding* finger, so the clockwise
distance to the target strictly decreases each hop, giving the familiar
``O(log N)`` bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .base import Overlay
from .keyspace import KeySpace

__all__ = ["ChordOverlay"]


class ChordOverlay(Overlay):
    """Chord with exact (oracle-built) finger tables.

    Parameters
    ----------
    space:
        The identifier ring.
    successor_list_size:
        Length of each node's successor list (Chord's ``r``); primarily a
        robustness feature, also the guaranteed last-resort next hop.
    """

    def __init__(self, space: KeySpace, successor_list_size: int = 4) -> None:
        super().__init__(space)
        if successor_list_size < 1:
            raise ValueError("successor_list_size must be >= 1")
        self.successor_list_size = successor_list_size
        self._fingers: Dict[int, List[int]] = {}
        self._successors: Dict[int, List[int]] = {}
        # Finger-start offsets 2**i, precomputed for the vectorised build.
        # uint64 arithmetic holds key + 2**i without overflow up to 63 bits;
        # wider rings fall back to the scalar per-finger path.
        self._finger_steps: Optional[np.ndarray] = (
            np.array([1 << i for i in range(space.bits)], dtype=np.uint64)
            if space.bits <= 63
            else None
        )

    # ------------------------------------------------------------------
    # Ownership: Chord stores k at successor(k)
    # ------------------------------------------------------------------
    def _compute_owner(self, key: int) -> int:
        """Chord stores key k at successor(k)."""
        return self.space.successor_key(self._keys, key)

    def progress_key(self, node: int, target: int):
        """(clockwise distance to the owner, key)."""
        # Clockwise distance from node to the *owner* (successor of target):
        # the quantity Chord's closest-preceding-finger rule strictly
        # decreases.  Measuring to the owner rather than the raw target key
        # keeps the final hop (onto the successor, which sits at-or-after
        # the target) monotone as well.
        return (self.space.clockwise_distance(node, self.owner_of(target)), node)

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._fingers.clear()
        self._successors.clear()

    def _build_node(self, key: int) -> None:
        size = self.space.size
        fingers: List[int] = []
        last = None
        if self._finger_steps is not None:
            # One batched searchsorted for all m finger starts instead of m
            # scalar successor_key calls; candidate order (ascending i) and
            # the consecutive-duplicate filter match the scalar path exactly.
            starts = (np.uint64(key) + self._finger_steps) % np.uint64(size)
            idx = np.searchsorted(self._keys, starts) % self._keys.size
            for f in self._keys[idx].tolist():
                f = int(f)
                if f != key and f != last:
                    fingers.append(f)
                    last = f
        else:
            for i in range(self.space.bits):
                start = (key + (1 << i)) % size
                f = self.space.successor_key(self._keys, start)
                if f != key and f != last:
                    fingers.append(f)
                    last = f
        self._fingers[key] = fingers
        # Successor list: the next r members clockwise.
        idx = int(np.searchsorted(self._keys, key))
        n = self._keys.size
        succs = []
        for j in range(1, min(self.successor_list_size, n - 1) + 1):
            succs.append(int(self._keys[(idx + j) % n]))
        self._successors[key] = succs

    def _keys_in_cw_interval(self, a: int, b: int) -> List[int]:
        """Member keys in the clockwise half-open interval (a, b].

        Empty when ``a == b``; handles wrap-around.  Used by the targeted
        churn repairs to find exactly the nodes whose state a membership
        change can touch.
        """
        if a == b:
            return []
        keys = self._keys
        ia = int(np.searchsorted(keys, a, side="right"))
        ib = int(np.searchsorted(keys, b, side="right"))
        if a < b:
            idx = range(ia, ib)
        else:  # wraps past zero
            idx = list(range(ia, keys.size)) + list(range(0, ib))
        return [int(keys[i]) for i in idx]

    def _affected_by(self, key: int) -> List[int]:
        """Members whose routing state a join/leave of ``key`` can change.

        A finger entry of node ``n`` at level ``i`` is ``successor(n + 2**i)``
        and only changes when ``n + 2**i`` lies in ``(pred(key), key]`` —
        i.e. ``n ∈ (pred(key) − 2**i, key − 2**i]``.  Successor lists only
        change for the ``r`` members preceding ``key``.
        """
        size = self.space.size
        keys = self._keys
        idx = int(np.searchsorted(keys, key))
        n = keys.size
        # Predecessor in the *current* membership (key itself may or may
        # not be present; both callers arrange the membership first).
        if self.is_member(key):
            pred = int(keys[(idx - 1) % n])
        else:
            pred = int(keys[(idx - 1) % n]) if idx > 0 else int(keys[-1])
        affected = set()
        for i in range(self.space.bits):
            step = 1 << i
            lo = (pred - step) % size
            hi = (key - step) % size
            affected.update(self._keys_in_cw_interval(lo, hi))
        # Successor-list holders: the r members counter-clockwise of key.
        for j in range(1, min(self.successor_list_size, n - 1) + 1):
            affected.add(int(keys[(idx - j) % n]))
        affected.discard(key)
        return sorted(affected)

    def _on_add(self, key: int) -> None:
        # Exact targeted repair: build the newcomer's state, then
        # recompute precisely the members whose fingers/successors the
        # newcomer takes over.  The contract tests assert equivalence
        # with a from-scratch oracle build.
        self._build_node(key)
        affected = self._affected_by(key)
        for member in affected:
            self._build_node(member)
        self._record_repair(len(affected) + 1)

    def _on_remove(self, key: int) -> None:
        self._fingers.pop(key, None)
        self._successors.pop(key, None)
        affected = self._affected_by(key)
        for member in affected:
            self._build_node(member)
        self._record_repair(len(affected))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def successor(self, key: int) -> int:
        """The immediate successor member of member ``key``."""
        succs = self._successors.get(key)
        if not succs:
            raise KeyError(f"{key} is not a member or overlay is trivial")
        return succs[0]

    def next_hop(self, current: int, target: int) -> Optional[int]:
        """Closest preceding finger toward the owner."""
        if current not in self._fingers:
            raise KeyError(f"{current} is not a member")
        owner = self.owner_of(target)
        if current == owner:
            return None
        # Closest preceding finger: the neighbour with the largest clockwise
        # position still strictly before the owner (never overshoot).
        best: Optional[int] = None
        best_cw = -1
        my_cw_owner = self.space.clockwise_distance(current, owner)
        for f in self._fingers[current] + self._successors[current]:
            cw = self.space.clockwise_distance(current, f)
            if 0 < cw <= my_cw_owner and cw > best_cw:
                best, best_cw = f, cw
        return best

    def neighbors_of(self, key: int) -> List[int]:
        """Fingers plus successor list, deduplicated."""
        if key not in self._fingers:
            raise KeyError(f"{key} is not a member")
        return sorted(set(self._fingers[key]) | set(self._successors[key]))

"""Vectorised digit/prefix decomposition over sorted key arrays.

The prefix-routing overlays (Pastry, Tornado, Tapestry) all organise the
member set the same way: at digit level ``r`` the sorted key array splits
into contiguous *blocks* of members sharing their first ``r + 1`` digits,
and a routing-table slot ``(r, d)`` of node ``x`` is won by some member of
the sibling block with digit ``d`` under ``x``'s level-``r`` prefix.
Because blocks are value-contiguous runs of the sorted array, the whole
decomposition falls out of a handful of NumPy primitives; this module
collects those so the bulk build (`Overlay._build_all`) and the targeted
churn repairs share one audited implementation.

All helpers require ``space.bits <= 63`` so that uint64 shift/mask
arithmetic is exact (``2**bits`` divides ``2**64``, making wrap-around
subtraction congruent mod the ring size); callers gate on
:func:`supports_vectorised` and fall back to the scalar reference path
otherwise.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .keyspace import KeySpace

__all__ = [
    "supports_vectorised",
    "ring_distances",
    "shared_prefix_lengths",
    "digits_at",
    "level_blocks",
    "prefix_block_range",
]


def supports_vectorised(space: KeySpace) -> bool:
    """True when uint64 vector arithmetic is exact for this key space."""
    return space.bits <= 63


def ring_distances(space: KeySpace, keys: np.ndarray, key: int) -> np.ndarray:
    """Ring distance from every element of ``keys`` to ``key`` (uint64).

    ``(a - b) mod 2**64`` is congruent to ``(a - b) mod 2**bits`` because
    the ring size divides ``2**64``; masking recovers the exact value.
    """
    mask = np.uint64(space.size - 1)
    k = np.uint64(key)
    fwd = (keys - k) & mask
    return np.minimum(fwd, (k - keys) & mask)


def shared_prefix_lengths(space: KeySpace, keys: np.ndarray, key: int) -> np.ndarray:
    """``shared_prefix_length(key, keys[i])`` for every element (int64).

    Elements equal to ``key`` get ``space.num_digits``.
    """
    b = space.digit_bits
    bits = space.bits
    digit_mask = np.uint64(space.digit_base - 1)
    k = np.uint64(key)
    matched = np.ones(keys.shape, dtype=bool)
    spl = np.zeros(keys.shape, dtype=np.int64)
    for level in range(space.num_digits):
        shift = np.uint64(bits - b * (level + 1))
        matched &= ((keys >> shift) & digit_mask) == ((k >> shift) & digit_mask)
        spl += matched
    return spl


def digits_at(space: KeySpace, keys: np.ndarray, levels: np.ndarray) -> np.ndarray:
    """``digit(keys[i], levels[i])`` for every element (uint64).

    ``keys`` may be a scalar-broadcastable array; ``levels`` must hold
    valid digit indices (``0 <= level < num_digits``).
    """
    b = space.digit_bits
    shifts = (space.bits - b * (levels.astype(np.int64) + 1)).astype(np.uint64)
    return (keys >> shifts) & np.uint64(space.digit_base - 1)


def level_blocks(
    space: KeySpace, keys: np.ndarray, row: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose sorted ``keys`` into level-``row`` blocks.

    Returns ``(starts, ends, codes)``: half-open index runs of members
    sharing their first ``row + 1`` digits, and each run's prefix code
    (the key right-shifted past the remaining digits).
    """
    shift = np.uint64(space.bits - space.digit_bits * (row + 1))
    codes = keys >> shift
    change = np.flatnonzero(codes[1:] != codes[:-1]) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.int64), change])
    ends = np.concatenate([change, np.asarray([keys.size], dtype=np.int64)])
    return starts, ends, codes[starts]


def prefix_block_range(
    space: KeySpace, keys: np.ndarray, key: int, row: int
) -> Tuple[int, int]:
    """Index range ``[lo, hi)`` of members sharing ``key``'s first
    ``row + 1`` digits (the block a slot ``(row, digit(key, row))`` draws
    its candidates from)."""
    shift = space.bits - space.digit_bits * (row + 1)
    prefix = key >> shift
    lo = int(np.searchsorted(keys, np.uint64(prefix << shift)))
    hi = int(np.searchsorted(keys, np.uint64(((prefix + 1) << shift) - 1), side="right"))
    return lo, hi

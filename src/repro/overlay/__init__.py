"""Hash-based structured P2P (HS-P2P) overlay substrates.

Key-space arithmetic, state-pair tables, and the five concrete overlays
§2.1 names — Chord, Pastry, Tapestry, Tornado and CAN — any of which can
serve as Bristle's stationary layer.
"""

from .base import Overlay, ProximityFn, RouteResult, RoutingError
from .can import CANOverlay, Zone
from .chord import ChordOverlay
from .factory import OVERLAY_NAMES, make_overlay
from .keyspace import KeySpace
from .pastry import PastryOverlay
from .state import StatePair, StateTable
from .tapestry import TapestryOverlay
from .tornado import TornadoOverlay

__all__ = [
    "Overlay",
    "ProximityFn",
    "RouteResult",
    "RoutingError",
    "CANOverlay",
    "Zone",
    "ChordOverlay",
    "OVERLAY_NAMES",
    "make_overlay",
    "KeySpace",
    "PastryOverlay",
    "StatePair",
    "StateTable",
    "TapestryOverlay",
    "TornadoOverlay",
]

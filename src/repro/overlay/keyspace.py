"""Hash-key space arithmetic for HS-P2P overlays.

Keys live on an ``m``-bit identifier ring of size ``rho = 2**m`` (the paper
writes ρ for the ring size in §3).  The module provides the three notions
of "closeness" the overlays need:

* **clockwise distance** — Chord's metric: how far forward from ``a`` to
  ``b`` around the ring.
* **ring distance** — Pastry/Tornado's numeric metric: minimum of the two
  directions.
* **prefix digits** — Pastry/Tornado route by longest shared prefix of the
  base-``2^b`` digit expansion.

Vectorised helpers (NumPy) back the bulk operations used by experiments
(drawing thousands of uniform keys, nearest-key queries over sorted key
arrays).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..sim.rng import RngStreams

__all__ = ["KeySpace"]


@dataclasses.dataclass(frozen=True)
class KeySpace:
    """An ``m``-bit circular identifier space.

    Parameters
    ----------
    bits:
        Identifier width ``m``; the ring size is ``rho = 2**m``.
    digit_bits:
        Pastry/Tornado digit width ``b``; keys have ``m // b`` digits in
        base ``2**b``.  ``bits`` must be divisible by ``digit_bits``.
    """

    bits: int = 32
    digit_bits: int = 4

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.bits > 160:
            raise ValueError(f"bits must be in (0, 160], got {self.bits}")
        if self.digit_bits <= 0 or self.bits % self.digit_bits != 0:
            raise ValueError(
                f"digit_bits ({self.digit_bits}) must divide bits ({self.bits})"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Ring size ρ = 2**bits."""
        return 1 << self.bits

    @property
    def num_digits(self) -> int:
        """Number of base-``2**digit_bits`` digits in a key."""
        return self.bits // self.digit_bits

    @property
    def digit_base(self) -> int:
        """The digit alphabet size ``2**digit_bits``."""
        return 1 << self.digit_bits

    def contains(self, key: int) -> bool:
        """True when ``key`` is a valid identifier."""
        return 0 <= key < self.size

    def validate(self, key: int) -> int:
        """Return ``key`` unchanged or raise ``ValueError``."""
        if not self.contains(key):
            raise ValueError(f"key {key} outside [0, {self.size})")
        return key

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def clockwise_distance(self, a: int, b: int) -> int:
        """Forward (clockwise) distance from ``a`` to ``b``."""
        return (b - a) % self.size

    def ring_distance(self, a: int, b: int) -> int:
        """Minimum of the two directions between ``a`` and ``b``."""
        d = (b - a) % self.size
        return min(d, self.size - d)

    def in_interval(self, key: int, start: int, end: int) -> bool:
        """True when ``key`` lies in the half-open clockwise arc (start, end].

        Chord's canonical membership test; handles wrap-around.  When
        ``start == end`` the arc is the whole ring minus nothing, i.e. every
        key qualifies (the single-node case).
        """
        if start == end:
            return True
        return self.clockwise_distance(start, key) <= self.clockwise_distance(start, end) and key != start

    # ------------------------------------------------------------------
    # Digits (prefix routing)
    # ------------------------------------------------------------------
    def digits(self, key: int) -> Tuple[int, ...]:
        """Base-``2**digit_bits`` digit expansion, most significant first."""
        self.validate(key)
        b = self.digit_bits
        mask = self.digit_base - 1
        n = self.num_digits
        return tuple((key >> (b * (n - 1 - i))) & mask for i in range(n))

    def digit(self, key: int, index: int) -> int:
        """The ``index``-th digit of ``key`` (0 = most significant)."""
        n = self.num_digits
        if not 0 <= index < n:
            raise IndexError(f"digit index {index} out of range [0, {n})")
        return (key >> (self.digit_bits * (n - 1 - index))) & (self.digit_base - 1)

    def shared_prefix_length(self, a: int, b: int) -> int:
        """Number of leading digits ``a`` and ``b`` share."""
        if a == b:
            return self.num_digits
        x = a ^ b
        # Position of the highest differing bit, then which digit it is in.
        high_bit = x.bit_length() - 1
        differing_digit = (self.bits - 1 - high_bit) // self.digit_bits
        return differing_digit

    # ------------------------------------------------------------------
    # Bulk / vectorised operations
    # ------------------------------------------------------------------
    def random_keys(self, rng: RngStreams, stream: str, count: int, *, unique: bool = True) -> np.ndarray:
        """Draw ``count`` uniform keys (optionally distinct) as a NumPy array.

        Models the paper's assumption of "a uniform hash function such as
        SHA-1" (§3).  Uniqueness is enforced by redrawing collisions, which
        is cheap while ``count << 2**bits``.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        gen = rng.stream(stream)
        if not unique:
            return gen.integers(0, self.size, size=count, dtype=np.uint64)
        if count > self.size:
            raise ValueError(f"cannot draw {count} unique keys from a space of {self.size}")
        keys = np.unique(gen.integers(0, self.size, size=count, dtype=np.uint64))
        while keys.size < count:
            extra = gen.integers(0, self.size, size=count - keys.size, dtype=np.uint64)
            keys = np.unique(np.concatenate([keys, extra]))
        gen.shuffle(keys)
        return keys[:count]

    def random_keys_in_range(
        self,
        rng: RngStreams,
        stream: str,
        count: int,
        low: int,
        high: int,
        *,
        unique: bool = True,
    ) -> np.ndarray:
        """Draw uniform keys in ``[low, high]`` (inclusive), used by the
        clustered naming scheme (§3): stationary keys in ``[L, U]``."""
        if not (0 <= low <= high < self.size):
            raise ValueError(f"invalid range [{low}, {high}] for space of {self.size}")
        span = high - low + 1
        if unique and count > span:
            raise ValueError(f"cannot draw {count} unique keys from a range of {span}")
        gen = rng.stream(stream)
        if not unique:
            return gen.integers(low, high + 1, size=count, dtype=np.uint64)
        keys = np.unique(gen.integers(low, high + 1, size=count, dtype=np.uint64))
        while keys.size < count:
            extra = gen.integers(low, high + 1, size=count - keys.size, dtype=np.uint64)
            keys = np.unique(np.concatenate([keys, extra]))
        gen.shuffle(keys)
        return keys[:count]

    def nearest_key(self, sorted_keys: np.ndarray, target: int) -> int:
        """Key in ``sorted_keys`` with minimal ring distance to ``target``.

        ``sorted_keys`` must be an ascending array of valid keys.  Ties
        break toward the numerically smaller key, deterministically.
        """
        if sorted_keys.size == 0:
            raise ValueError("empty key array")
        idx = int(np.searchsorted(sorted_keys, target))
        n = sorted_keys.size
        candidates = {sorted_keys[idx % n], sorted_keys[(idx - 1) % n]}
        best = min(candidates, key=lambda k: (self.ring_distance(int(k), target), int(k)))
        return int(best)

    def successor_key(self, sorted_keys: np.ndarray, target: int) -> int:
        """First key clockwise at-or-after ``target`` (Chord's successor)."""
        if sorted_keys.size == 0:
            raise ValueError("empty key array")
        idx = int(np.searchsorted(sorted_keys, target))
        return int(sorted_keys[idx % sorted_keys.size])

    def is_closer(self, candidate: int, incumbent: int, target: int) -> bool:
        """True when ``candidate`` is strictly closer to ``target`` (ring
        metric, ties to smaller key) — the "closer" of Figure 2."""
        dc = self.ring_distance(candidate, target)
        di = self.ring_distance(incumbent, target)
        if dc != di:
            return dc < di
        return candidate < incumbent

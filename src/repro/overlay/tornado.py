"""Tornado overlay (Hsiao & King, IPDPS 2003, ref [2]) — the substrate
Bristle is implemented on ("Bristle is based on the P2P infrastructure
Tornado", §1; "Bristle is implemented on top of Tornado", §3).

Tornado's public descriptions characterise it as a *capability-aware*
prefix-routing HS-P2P with proximity neighbour selection; the Bristle paper
additionally relies on these Tornado behaviours:

* ``O(log N)`` states per node and ``O(log N)`` lookup hops (§2.3.2);
* neighbour choice weighs the *network distance* to candidates (Fig 5's
  ``distance(r, i)`` test), letting a route "forward to a geographical
  closed node in the next hop";
* node *capacity* is first-class (capacities drive the LDT advertisement
  algorithm of Fig 4).

This implementation extends the Pastry-style prefix router with both:
routing-table slots prefer proximally close candidates, breaking ties by
capacity then key; and :meth:`next_hop_proximal` implements §3's
optimisation (1): among all neighbours that make key-space progress,
greedily follow the cheapest network link.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .base import ProximityFn
from .keyspace import KeySpace
from .pastry import PastryOverlay

__all__ = ["TornadoOverlay"]

#: Capacity lookup ``key -> capacity`` (the paper's ``C_X``).
CapacityFn = Callable[[int], float]


class TornadoOverlay(PastryOverlay):
    """Capability- and proximity-aware prefix overlay.

    Parameters
    ----------
    space:
        The identifier ring.
    leaf_set_size:
        Ring-neighbour set size (robustness + delivery).
    proximity:
        Network-distance callback ``(key_a, key_b) -> cost``.  Required for
        proximity-aware slot selection and :meth:`next_hop_proximal`; when
        omitted, Tornado degrades to capacity-tie-broken Pastry.
    capacity:
        Capacity lookup for members; defaults to uniform capacity 1.
    """

    def __init__(
        self,
        space: KeySpace,
        leaf_set_size: int = 8,
        proximity: Optional[ProximityFn] = None,
        capacity: Optional[CapacityFn] = None,
    ) -> None:
        super().__init__(space, leaf_set_size=leaf_set_size, proximity=proximity)
        self.capacity: CapacityFn = capacity if capacity is not None else (lambda _key: 1.0)

    # ------------------------------------------------------------------
    # Slot selection: proximity first, then capacity, then key
    # ------------------------------------------------------------------
    def _slot_prefer(self, local: int, candidate: int, incumbent: int) -> bool:
        """Tornado's slot rule (the inherited ``_compute_table`` and churn
        repairs consult this hook instead of Pastry's ring rule)."""
        return self._prefer(local, candidate, incumbent)

    def _prefer(self, local: int, candidate: int, incumbent: int) -> bool:
        """True when ``candidate`` should displace ``incumbent`` in a slot."""
        if self.proximity is not None:
            dc = self.proximity(local, candidate)
            di = self.proximity(local, incumbent)
            if dc != di:
                return dc < di
        cc = self.capacity(candidate)
        ci = self.capacity(incumbent)
        if cc != ci:
            return cc > ci
        return candidate < incumbent

    # ------------------------------------------------------------------
    # Bulk build / churn repair: without a proximity callback the slot
    # winner is argmin of (-capacity, key) over the block — independent of
    # the local node, so one winner per block serves every paired node.
    # ------------------------------------------------------------------
    def _block_winner(self, keys: np.ndarray, lo: int, hi: int) -> int:
        best = int(keys[lo])
        best_cap = self.capacity(best)
        for k in keys[lo + 1 : hi].tolist():
            cap = self.capacity(k)
            if cap > best_cap or (cap == best_cap and k < best):
                best, best_cap = k, cap
        return best

    def _bulk_pair_winners(
        self,
        keys: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        pair_node: np.ndarray,
        pair_block: np.ndarray,
    ) -> np.ndarray:
        caps = np.asarray([self.capacity(int(k)) for k in keys], dtype=np.float64)
        order = np.lexsort((keys, -caps))  # best (max cap, min key) first
        rank = np.empty(keys.size, dtype=np.int64)
        rank[order] = np.arange(keys.size)
        # per-block best = the minimum rank within each contiguous run
        best_rank = np.minimum.reduceat(rank, starts)
        winners = keys[order[best_rank]]
        return winners[pair_block]

    def _repair_slot_winner(
        self, local: int, row: int, lo: int, hi: int, cache: Dict[int, int]
    ) -> int:
        winner = cache.get(row)
        if winner is None:
            winner = self._block_winner(self._keys, lo, hi)
            cache[row] = winner
        return winner

    # ------------------------------------------------------------------
    # §3 optimisation (1): greedy minimal-cost progress
    # ------------------------------------------------------------------
    def next_hop_proximal(self, current: int, target: int) -> Optional[int]:
        """Next hop choosing, among *all* progress-making neighbours, the
        one reachable over the cheapest network link.

        "forwarding the route to a neighboring node whose hash key is
        closer to the destination and the cost of the network link to the
        neighbor is minimal.  Although this optimization still needs
        O(log N) hops ... each hop can greedily follow the network link
        with the minimal cost." (§3)

        Falls back to the standard prefix rule when no proximity callback
        was supplied.
        """
        if self.proximity is None:
            return self.next_hop(current, target)
        owner = self.owner_of(target)
        if current == owner:
            return None
        cur_key = self.progress_key(current, target)
        best: Optional[int] = None
        best_cost = float("inf")
        for cand in self.neighbors_of(current):
            if cand == owner:
                return cand  # direct delivery always wins
            if self.progress_key(cand, target) < cur_key:
                cost = self.proximity(current, cand)
                if cost < best_cost or (cost == best_cost and best is not None and cand < best):
                    best, best_cost = cand, cost
        if best is not None:
            return best
        # No strictly-closer cheap neighbour; defer to the standard rule
        # (handles the leaf-set delivery corner).
        return self.next_hop(current, target)

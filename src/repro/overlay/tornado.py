"""Tornado overlay (Hsiao & King, IPDPS 2003, ref [2]) — the substrate
Bristle is implemented on ("Bristle is based on the P2P infrastructure
Tornado", §1; "Bristle is implemented on top of Tornado", §3).

Tornado's public descriptions characterise it as a *capability-aware*
prefix-routing HS-P2P with proximity neighbour selection; the Bristle paper
additionally relies on these Tornado behaviours:

* ``O(log N)`` states per node and ``O(log N)`` lookup hops (§2.3.2);
* neighbour choice weighs the *network distance* to candidates (Fig 5's
  ``distance(r, i)`` test), letting a route "forward to a geographical
  closed node in the next hop";
* node *capacity* is first-class (capacities drive the LDT advertisement
  algorithm of Fig 4).

This implementation extends the Pastry-style prefix router with both:
routing-table slots prefer proximally close candidates, breaking ties by
capacity then key; and :meth:`next_hop_proximal` implements §3's
optimisation (1): among all neighbours that make key-space progress,
greedily follow the cheapest network link.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .base import ProximityFn
from .keyspace import KeySpace
from .pastry import PastryOverlay

__all__ = ["TornadoOverlay"]

#: Capacity lookup ``key -> capacity`` (the paper's ``C_X``).
CapacityFn = Callable[[int], float]


class TornadoOverlay(PastryOverlay):
    """Capability- and proximity-aware prefix overlay.

    Parameters
    ----------
    space:
        The identifier ring.
    leaf_set_size:
        Ring-neighbour set size (robustness + delivery).
    proximity:
        Network-distance callback ``(key_a, key_b) -> cost``.  Required for
        proximity-aware slot selection and :meth:`next_hop_proximal`; when
        omitted, Tornado degrades to capacity-tie-broken Pastry.
    capacity:
        Capacity lookup for members; defaults to uniform capacity 1.
    """

    def __init__(
        self,
        space: KeySpace,
        leaf_set_size: int = 8,
        proximity: Optional[ProximityFn] = None,
        capacity: Optional[CapacityFn] = None,
    ) -> None:
        super().__init__(space, leaf_set_size=leaf_set_size, proximity=proximity)
        self.capacity: CapacityFn = capacity if capacity is not None else (lambda _key: 1.0)

    # ------------------------------------------------------------------
    # Slot selection: proximity first, then capacity, then key
    # ------------------------------------------------------------------
    def _compute_table(self, key: int) -> Dict[Tuple[int, int], int]:
        table: Dict[Tuple[int, int], int] = {}
        for other in self._keys:
            o = int(other)
            if o == key:
                continue
            row = self.space.shared_prefix_length(key, o)
            col = self.space.digit(o, row)
            slot = (row, col)
            cur = table.get(slot)
            if cur is None or self._prefer(key, o, cur):
                table[slot] = o
        return table

    def _prefer(self, local: int, candidate: int, incumbent: int) -> bool:
        """True when ``candidate`` should displace ``incumbent`` in a slot."""
        if self.proximity is not None:
            dc = self.proximity(local, candidate)
            di = self.proximity(local, incumbent)
            if dc != di:
                return dc < di
        cc = self.capacity(candidate)
        ci = self.capacity(incumbent)
        if cc != ci:
            return cc > ci
        return candidate < incumbent

    # ------------------------------------------------------------------
    # §3 optimisation (1): greedy minimal-cost progress
    # ------------------------------------------------------------------
    def next_hop_proximal(self, current: int, target: int) -> Optional[int]:
        """Next hop choosing, among *all* progress-making neighbours, the
        one reachable over the cheapest network link.

        "forwarding the route to a neighboring node whose hash key is
        closer to the destination and the cost of the network link to the
        neighbor is minimal.  Although this optimization still needs
        O(log N) hops ... each hop can greedily follow the network link
        with the minimal cost." (§3)

        Falls back to the standard prefix rule when no proximity callback
        was supplied.
        """
        if self.proximity is None:
            return self.next_hop(current, target)
        owner = self.owner_of(target)
        if current == owner:
            return None
        cur_key = self.progress_key(current, target)
        best: Optional[int] = None
        best_cost = float("inf")
        for cand in self.neighbors_of(current):
            if cand == owner:
                return cand  # direct delivery always wins
            if self.progress_key(cand, target) < cur_key:
                cost = self.proximity(current, cand)
                if cost < best_cost or (cost == best_cost and best is not None and cand < best):
                    best, best_cost = cand, cost
        if best is not None:
            return best
        # No strictly-closer cheap neighbour; defer to the standard rule
        # (handles the leaf-set delivery corner).
        return self.next_hop(current, target)

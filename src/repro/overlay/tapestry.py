"""Tapestry overlay (Zhao, Kubiatowicz & Joseph, UCB/CSD-01-1141) — the
fifth and last substrate the paper's §2.1 names as a possible stationary
layer.

Tapestry shares Pastry's routing-table structure (one row per digit of
shared prefix, one slot per next digit) but resolves keys differently:
instead of a numeric leaf set, it uses **surrogate routing** — when no
member matches the next digit of the target, the digit is deterministically
"bumped" upward (mod the digit base) until a populated slot is found, and
the descent continues under the bumped prefix.  The unique node this
process converges to is the key's *surrogate root*, its owner.

Because the bumped digit sequence is a pure function of the target key and
the global membership, the surrogate root can be computed by prefix-range
descent over the sorted key array, and per-hop routing reduces to prefix
routing *toward the surrogate root*: every hop fixes one more digit, so
lookups take at most ``bits / digit_bits`` hops.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import prefix as _prefix
from .pastry import PastryOverlay

__all__ = ["TapestryOverlay"]


class TapestryOverlay(PastryOverlay):
    """Tapestry: Pastry's table geometry + surrogate-root ownership.

    Parameters are those of :class:`PastryOverlay`; the leaf set is kept
    purely as extra routing state (it plays no role in ownership).
    """

    # ------------------------------------------------------------------
    # Surrogate-root ownership
    # ------------------------------------------------------------------
    def _compute_owner(self, key: int) -> int:
        """The key's surrogate root (§ surrogate routing).

        Descends digit by digit; at each level the target's digit is used
        when some member continues under it, otherwise the digit is bumped
        upward (mod base) to the nearest populated value.
        """
        keys = self._keys
        bits = self.space.bits
        b = self.space.digit_bits
        base = self.space.digit_base
        prefix = 0  # fixed digits so far, left-aligned value
        lo_idx, hi_idx = 0, int(keys.size)
        for level in range(self.space.num_digits):
            shift = bits - b * (level + 1)
            want = (key >> shift) & (base - 1)
            for bump in range(base):
                digit = (want + bump) % base
                cand_prefix = (prefix << b) | digit
                lo = int(np.searchsorted(keys[lo_idx:hi_idx], cand_prefix << shift)) + lo_idx
                hi = int(
                    np.searchsorted(keys[lo_idx:hi_idx], ((cand_prefix + 1) << shift) - 1, side="right")
                ) + lo_idx
                if hi > lo:
                    prefix = cand_prefix
                    lo_idx, hi_idx = lo, hi
                    break
            else:  # pragma: no cover - membership non-empty ⇒ some digit populated
                raise RuntimeError("surrogate descent found no populated digit")
            if hi_idx - lo_idx == 1:
                return int(keys[lo_idx])
        return int(keys[lo_idx])

    # ------------------------------------------------------------------
    # Owner-memo invalidation under churn
    # ------------------------------------------------------------------
    def _invalidate_owner_memo_add(self, key: int) -> None:
        """Evict exactly the memo entries a join diverts to ``key``.

        The surrogate descent for a target ``t`` follows its owner ``o``'s
        digit expansion; a new member ``k`` can only change the choice at
        level ``L = spl(k, o)`` (above it ``k`` sits in the already-chosen
        block, below it ``k`` left the path).  It wins there iff its digit
        needs fewer upward bumps from ``t``'s wanted digit than ``o``'s —
        and then the block ``k`` populates was previously empty, so the
        descent terminates at ``k`` itself.  Entries failing that test are
        untouched by the join.
        """
        memo = self._owner_memo
        if not memo:
            return
        if not _prefix.supports_vectorised(self.space):
            memo.clear()
            self._memo_owners.clear()
            return
        targets = np.fromiter(memo.keys(), dtype=np.uint64, count=len(memo))
        owners = np.fromiter(memo.values(), dtype=np.uint64, count=len(memo))
        spl = _prefix.shared_prefix_lengths(self.space, owners, key)
        d_key = _prefix.digits_at(self.space, np.uint64(key), spl)
        d_own = _prefix.digits_at(self.space, owners, spl)
        d_tgt = _prefix.digits_at(self.space, targets, spl)
        base = np.uint64(self.space.digit_base)
        # uint64 wrap-around subtraction is exact mod base (base | 2**64)
        stolen = ((d_key - d_tgt) % base) < ((d_own - d_tgt) % base)
        diverted = targets[stolen].tolist()
        if not diverted:
            return
        owners_list = owners[stolen].tolist()
        for t, o in zip(diverted, owners_list):
            if memo.get(t) == o:
                del memo[t]
                group = self._memo_owners.get(o)
                if group is not None:
                    try:
                        group.remove(t)
                    except ValueError:  # pragma: no cover - index drift guard
                        pass

    # ------------------------------------------------------------------
    # Routing: prefix-walk toward the surrogate root
    # ------------------------------------------------------------------
    def progress_key(self, node: int, target: int):
        """(digit mismatch with the surrogate root, ring distance, key)."""
        owner = self.owner_of(target)
        return (
            self.space.num_digits - self.space.shared_prefix_length(node, owner),
            self.space.ring_distance(node, owner),
            node,
        )

    def next_hop(self, current: int, target: int) -> Optional[int]:
        """Prefix-walk one digit toward the surrogate root."""
        if current not in self._table:
            raise KeyError(f"{current} is not a member")
        owner = self.owner_of(target)
        if current == owner:
            return None
        row = self.space.shared_prefix_length(current, owner)
        col = self.space.digit(owner, row)
        entry = self._table[current].get((row, col))
        if entry is not None:
            return entry
        # The owner itself matches (row, col); the slot can only be empty
        # if the table predates a membership change — fall back to any
        # known node sharing a longer prefix with the owner.
        best: Optional[int] = None
        best_pk = self.progress_key(current, target)
        for cand in list(self._leaves[current]) + list(self._table[current].values()):
            pk = self.progress_key(cand, target)
            if pk < best_pk:
                best, best_pk = cand, pk
        return best

    def surrogate_path(self, key: int) -> List[int]:
        """The per-level digits actually fixed while resolving ``key`` —
        exposed for tests (equals the owner's digit expansion)."""
        owner = self.owner_of(key)
        return list(self.space.digits(owner))

"""Pastry overlay (Rowstron & Druschel, Middleware 2001) — a prefix-routing
stationary-layer substrate (§2.1, ref [9]).

Each node keeps:

* a **routing table** with one row per digit position: the entry at
  ``(row, d)`` is some member sharing the first ``row`` digits with the
  local key and whose digit at position ``row`` is ``d``;
* a **leaf set** of the ``l/2`` numerically closest members on each side.

A key is owned by the ring-nearest member.  Each routing step either
lengthens the shared prefix with the target or (within the leaf set)
shrinks numeric distance, giving ``O(log_{2^b} N)`` hops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from . import prefix as _prefix
from .base import Overlay, ProximityFn
from .keyspace import KeySpace

__all__ = ["PastryOverlay"]


class PastryOverlay(Overlay):
    """Pastry with oracle-built routing tables and leaf sets.

    Parameters
    ----------
    space:
        The identifier ring (``space.digit_bits`` is Pastry's ``b``).
    leaf_set_size:
        Total leaf-set size ``l`` (half on each side).
    proximity:
        Optional network-proximity callback; when given, routing-table
        slots with several candidates pick the proximally closest
        (Pastry's locality heuristic).  Without it the numerically
        closest candidate is chosen (deterministic).
    """

    def __init__(
        self,
        space: KeySpace,
        leaf_set_size: int = 8,
        proximity: Optional[ProximityFn] = None,
    ) -> None:
        super().__init__(space, proximity)
        if leaf_set_size < 2 or leaf_set_size % 2 != 0:
            raise ValueError("leaf_set_size must be an even integer >= 2")
        self.leaf_set_size = leaf_set_size
        self._table: Dict[int, Dict[Tuple[int, int], int]] = {}
        self._leaves: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._table.clear()
        self._leaves.clear()

    def _build_node(self, key: int) -> None:
        self._leaves[key] = self._compute_leaves(key)
        self._table[key] = self._compute_table(key)

    def _compute_leaves(self, key: int) -> List[int]:
        idx = int(np.searchsorted(self._keys, key))
        n = self._keys.size
        half = self.leaf_set_size // 2
        leaves: List[int] = []
        for j in range(1, min(half, n - 1) + 1):
            leaves.append(int(self._keys[(idx + j) % n]))  # clockwise side
            leaves.append(int(self._keys[(idx - j) % n]))  # counter-clockwise
        return sorted(set(leaves) - {key})

    def _compute_table(self, key: int) -> Dict[Tuple[int, int], int]:
        """Routing table rows for ``key``.

        For every (row, digit) slot we scan the members sharing exactly the
        right prefix.  A single pass over the sorted member array suffices:
        each member lands in exactly one slot (its first digit of
        difference from ``key``).
        """
        table: Dict[Tuple[int, int], int] = {}
        # candidates[slot] -> chosen member (resolve ties by proximity or key)
        for other in self._keys:
            o = int(other)
            if o == key:
                continue
            row = self.space.shared_prefix_length(key, o)
            col = self.space.digit(o, row)
            slot = (row, col)
            cur = table.get(slot)
            if cur is None or self._slot_prefer(key, o, cur):
                table[slot] = o
        return table

    def _slot_prefer(self, local: int, candidate: int, incumbent: int) -> bool:
        """True when ``candidate`` should displace ``incumbent`` in a slot
        of ``local``'s table (proximity when available, else numerically
        closest with ties to the smaller key — Tornado overrides this with
        its capacity-aware rule)."""
        if self.proximity is not None:
            return self.proximity(local, candidate) < self.proximity(local, incumbent)
        return self.space.is_closer(candidate, incumbent, local)

    # ------------------------------------------------------------------
    # Bulk (vectorised) construction
    # ------------------------------------------------------------------
    def _vectorisable(self) -> bool:
        """The numpy paths require exact uint64 arithmetic and a slot rule
        that is a total order independent of pairwise proximity."""
        return _prefix.supports_vectorised(self.space) and self.proximity is None

    def _build_all(self) -> None:
        if not self._vectorisable():
            super()._build_all()
            return
        self._bulk_build_leaves()
        self._bulk_build_tables()

    def _bulk_build_leaves(self) -> None:
        keys = self._keys
        n = int(keys.size)
        if n == 1:
            self._leaves[int(keys[0])] = []
            return
        w = min(self.leaf_set_size // 2, n - 1)
        offs = np.concatenate([np.arange(1, w + 1), -np.arange(1, w + 1)])
        window = keys[(np.arange(n)[:, None] + offs[None, :]) % n]
        for key, row in zip(keys.tolist(), window.tolist()):
            self._leaves[key] = sorted(set(row) - {key})

    def _bulk_pair_winners(
        self,
        keys: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        pair_node: np.ndarray,
        pair_block: np.ndarray,
    ) -> np.ndarray:
        """Slot winner for each (node, sibling block) pair.

        Ring-closest rule: a block is a value-contiguous key interval not
        containing the node, over which ring distance to the node has no
        interior minimum — the winner is always one of the two block
        endpoints, ties to the smaller key (= the low endpoint).
        """
        lo = keys[starts[pair_block]]
        hi = keys[ends[pair_block] - 1]
        x = keys[pair_node]
        # ring distance of each endpoint to the paired node
        mask = np.uint64(self.space.size - 1)
        d_lo = np.minimum((lo - x) & mask, (x - lo) & mask)
        d_hi = np.minimum((hi - x) & mask, (x - hi) & mask)
        return np.where(d_lo <= d_hi, lo, hi)

    def _bulk_build_tables(self) -> None:
        """All routing tables at once via the level-block decomposition.

        At level ``r`` the sorted members split into blocks sharing their
        first ``r + 1`` digits; node ``x``'s slot ``(r, d)`` draws from the
        sibling block with digit ``d`` under ``x``'s level-``r`` prefix.
        Enumerating (node, sibling-block) pairs per level and resolving each
        with :meth:`_bulk_pair_winners` yields every table entry without a
        per-node scan.
        """
        keys = self._keys
        n = int(keys.size)
        kl = keys.tolist()
        tables: Dict[int, Dict[Tuple[int, int], int]] = {k: {} for k in kl}
        b = np.uint64(self.space.digit_bits)
        digit_mask = np.uint64(self.space.digit_base - 1)
        for row in range(self.space.num_digits):
            starts, ends, codes = _prefix.level_blocks(self.space, keys, row)
            nblocks = int(starts.size)
            if nblocks == 1:
                continue  # every member shares this row's digit: no entries
            parents = codes >> b
            cols = (codes & digit_mask).astype(np.int64)
            # contiguous runs of blocks under the same parent prefix
            pchange = np.flatnonzero(parents[1:] != parents[:-1]) + 1
            gstarts = np.concatenate([np.zeros(1, dtype=np.int64), pchange])
            gends = np.concatenate([pchange, np.asarray([nblocks], dtype=np.int64)])
            group_of_block = np.repeat(np.arange(gstarts.size), gends - gstarts)
            group_key_start = starts[gstarts]  # first member index per group
            group_key_count = ends[gends - 1] - starts[gstarts]
            # pair every member of a group with every block of the group …
            per_block = group_key_count[group_of_block]
            total = int(per_block.sum())
            if total == 0:
                continue
            pair_block = np.repeat(np.arange(nblocks), per_block)
            offsets = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(per_block)[:-1]]
            )
            pair_node = (
                np.repeat(group_key_start[group_of_block], per_block)
                + np.arange(total)
                - np.repeat(offsets, per_block)
            )
            # … except a member's own block (those land on deeper rows).
            own = (pair_node >= starts[pair_block]) & (pair_node < ends[pair_block])
            pair_node = pair_node[~own]
            pair_block = pair_block[~own]
            winners = self._bulk_pair_winners(keys, starts, ends, pair_node, pair_block)
            node_keys = keys[pair_node].tolist()
            col_list = cols[pair_block].tolist()
            winner_list = winners.tolist()
            for nk, col, win in zip(node_keys, col_list, winner_list):
                tables[nk][(row, col)] = win
        self._table.update(tables)

    # ------------------------------------------------------------------
    # Targeted churn repair
    # ------------------------------------------------------------------
    def _leaf_repair_window(self, idx: int, exclude: int) -> List[int]:
        """Members whose leaf set a membership change at sorted position
        ``idx`` can touch: the sliding windows overlapping that position."""
        keys = self._keys
        n = int(keys.size)
        w = min(self.leaf_set_size // 2, n - 1)
        out: Set[int] = set()
        for j in range(-w, w + 1):
            k = int(keys[(idx + j) % n])
            if k != exclude:
                out.add(k)
        return sorted(out)

    def _on_add(self, key: int) -> None:
        if not self._vectorisable():
            super()._on_add(key)
            return
        keys = self._keys
        n = int(keys.size)
        idx = int(np.searchsorted(keys, np.uint64(key)))
        # 1. The newcomer's own state, from the reference rule.
        self._build_node(key)
        # 2. Leaf sets: only the windows around the insertion point move.
        touched = self._leaf_repair_window(idx, key)
        for member in touched:
            self._leaves[member] = self._compute_leaves(member)
        # 3. Tables: the newcomer challenges exactly one slot per member —
        #    (spl(member, key), digit(key, spl)).  The slot rule is a total
        #    order, so winner-vs-challenger equals a fresh argmin.
        spl = _prefix.shared_prefix_lengths(self.space, keys, key)
        cols = _prefix.digits_at(self.space, np.uint64(key), spl)
        repaired = set(touched)
        for member, row, col in zip(keys.tolist(), spl.tolist(), cols.tolist()):
            if member == key:
                continue
            slot = (int(row), int(col))
            table = self._table[member]
            cur = table.get(slot)
            if cur is None or self._slot_prefer(member, key, cur):
                table[slot] = key
                repaired.add(member)
        self._record_repair(len(repaired) + 1)

    def _repair_slot_winner(
        self, local: int, row: int, lo: int, hi: int, cache: Dict[int, int]
    ) -> int:
        """Best member of the block ``keys[lo:hi]`` for a slot of ``local``
        after a departure.  Ring rule: one of the two block endpoints
        (see :meth:`_bulk_pair_winners`); O(1) per affected member."""
        keys = self._keys
        lo_key = int(keys[lo])
        hi_key = int(keys[hi - 1])
        if lo_key == hi_key:
            return lo_key
        return lo_key if not self.space.is_closer(hi_key, lo_key, local) else hi_key

    def _on_remove(self, key: int) -> None:
        if not self._vectorisable():
            super()._on_remove(key)
            return
        self._leaves.pop(key, None)
        self._table.pop(key, None)
        keys = self._keys
        idx = int(np.searchsorted(keys, np.uint64(key)))
        idx = idx % int(keys.size) if keys.size else 0
        # 1. Leaf sets around the departure position.
        touched = self._leaf_repair_window(idx, key)
        for member in touched:
            self._leaves[member] = self._compute_leaves(member)
        # 2. Tables: only slots that referenced the departed key change, and
        #    every member referencing it at row r draws replacements from the
        #    same block — the members sharing the key's first r+1 digits.
        spl = _prefix.shared_prefix_lengths(self.space, keys, key)
        cols = _prefix.digits_at(self.space, np.uint64(key), spl)
        block_range: Dict[int, Tuple[int, int]] = {}
        winner_cache: Dict[int, int] = {}
        repaired = set(touched)
        for member, row, col in zip(keys.tolist(), spl.tolist(), cols.tolist()):
            slot = (int(row), int(col))
            table = self._table[member]
            if table.get(slot) != key:
                continue
            rng = block_range.get(int(row))
            if rng is None:
                rng = _prefix.prefix_block_range(self.space, keys, key, int(row))
                block_range[int(row)] = rng
            lo, hi = rng
            if hi <= lo:
                del table[slot]
            else:
                table[slot] = self._repair_slot_winner(
                    member, int(row), lo, hi, winner_cache
                )
            repaired.add(member)
        self._record_repair(len(repaired))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def progress_key(self, node: int, target: int):
        """(digit mismatch depth, ring distance, key)."""
        # Lexicographic (digit mismatch depth, ring distance, key): each
        # Pastry step grows the shared prefix or shrinks numeric distance.
        return (
            self.space.num_digits - self.space.shared_prefix_length(node, target),
            self.space.ring_distance(node, target),
            node,
        )

    def next_hop(self, current: int, target: int) -> Optional[int]:
        """Leaf-set delivery, else the routing-table prefix entry."""
        if current not in self._table:
            raise KeyError(f"{current} is not a member")
        owner = self.owner_of(target)
        if current == owner:
            return None
        cur_key = self.progress_key(current, target)

        # 1. Leaf set covers the target → jump straight to the best leaf.
        leaves = self._leaves[current]
        best_leaf: Optional[int] = None
        for leaf in leaves:
            if best_leaf is None or self.space.is_closer(leaf, best_leaf, target):
                best_leaf = leaf
        if best_leaf is not None and best_leaf == owner:
            return best_leaf

        # 2. Routing table: entry matching one more digit of the target.
        row = self.space.shared_prefix_length(current, target)
        col = self.space.digit(target, row)
        entry = self._table[current].get((row, col))
        if entry is not None and self.progress_key(entry, target) < cur_key:
            return entry

        # 3. Rare case: no exact slot — any known node strictly closer.
        best: Optional[int] = None
        best_key = cur_key
        for cand in list(leaves) + list(self._table[current].values()):
            pk = self.progress_key(cand, target)
            if pk < best_key:
                best, best_key = cand, pk
        if best is not None:
            return best

        # 4. Leaf-set delivery mode: no prefix progress possible (the
        # numerically-nearest member shares a shorter prefix than we do —
        # e.g. the owner sits just across an aligned digit boundary).  Walk
        # the ring toward the owner through the leaf set.
        cur_ring = self.space.ring_distance(current, owner)
        for leaf in leaves:
            d = self.space.ring_distance(leaf, owner)
            if d < cur_ring:
                best, cur_ring = leaf, d
        return best

    def neighbors_of(self, key: int) -> List[int]:
        """Leaf set plus routing-table entries, deduplicated."""
        if key not in self._table:
            raise KeyError(f"{key} is not a member")
        return sorted(set(self._leaves[key]) | set(self._table[key].values()))

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------
    def leaf_set(self, key: int) -> List[int]:
        """The leaf set of member ``key``."""
        return list(self._leaves[key])

    def routing_table(self, key: int) -> Dict[Tuple[int, int], int]:
        """The (row, digit) → member routing table of ``key``."""
        return dict(self._table[key])

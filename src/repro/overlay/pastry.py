"""Pastry overlay (Rowstron & Druschel, Middleware 2001) — a prefix-routing
stationary-layer substrate (§2.1, ref [9]).

Each node keeps:

* a **routing table** with one row per digit position: the entry at
  ``(row, d)`` is some member sharing the first ``row`` digits with the
  local key and whose digit at position ``row`` is ``d``;
* a **leaf set** of the ``l/2`` numerically closest members on each side.

A key is owned by the ring-nearest member.  Each routing step either
lengthens the shared prefix with the target or (within the leaf set)
shrinks numeric distance, giving ``O(log_{2^b} N)`` hops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import Overlay, ProximityFn
from .keyspace import KeySpace

__all__ = ["PastryOverlay"]


class PastryOverlay(Overlay):
    """Pastry with oracle-built routing tables and leaf sets.

    Parameters
    ----------
    space:
        The identifier ring (``space.digit_bits`` is Pastry's ``b``).
    leaf_set_size:
        Total leaf-set size ``l`` (half on each side).
    proximity:
        Optional network-proximity callback; when given, routing-table
        slots with several candidates pick the proximally closest
        (Pastry's locality heuristic).  Without it the numerically
        closest candidate is chosen (deterministic).
    """

    def __init__(
        self,
        space: KeySpace,
        leaf_set_size: int = 8,
        proximity: Optional[ProximityFn] = None,
    ) -> None:
        super().__init__(space, proximity)
        if leaf_set_size < 2 or leaf_set_size % 2 != 0:
            raise ValueError("leaf_set_size must be an even integer >= 2")
        self.leaf_set_size = leaf_set_size
        self._table: Dict[int, Dict[Tuple[int, int], int]] = {}
        self._leaves: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._table.clear()
        self._leaves.clear()

    def _build_node(self, key: int) -> None:
        self._leaves[key] = self._compute_leaves(key)
        self._table[key] = self._compute_table(key)

    def _compute_leaves(self, key: int) -> List[int]:
        idx = int(np.searchsorted(self._keys, key))
        n = self._keys.size
        half = self.leaf_set_size // 2
        leaves: List[int] = []
        for j in range(1, min(half, n - 1) + 1):
            leaves.append(int(self._keys[(idx + j) % n]))  # clockwise side
            leaves.append(int(self._keys[(idx - j) % n]))  # counter-clockwise
        return sorted(set(leaves) - {key})

    def _compute_table(self, key: int) -> Dict[Tuple[int, int], int]:
        """Routing table rows for ``key``.

        For every (row, digit) slot we scan the members sharing exactly the
        right prefix.  A single pass over the sorted member array suffices:
        each member lands in exactly one slot (its first digit of
        difference from ``key``).
        """
        table: Dict[Tuple[int, int], int] = {}
        # candidates[slot] -> chosen member (resolve ties by proximity or key)
        for other in self._keys:
            o = int(other)
            if o == key:
                continue
            row = self.space.shared_prefix_length(key, o)
            col = self.space.digit(o, row)
            slot = (row, col)
            cur = table.get(slot)
            if cur is None:
                table[slot] = o
            elif self.proximity is not None:
                if self.proximity(key, o) < self.proximity(key, cur):
                    table[slot] = o
            else:
                # Deterministic: numerically closest to local key, ties small.
                if self.space.is_closer(o, cur, key):
                    table[slot] = o
        return table

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def progress_key(self, node: int, target: int):
        """(digit mismatch depth, ring distance, key)."""
        # Lexicographic (digit mismatch depth, ring distance, key): each
        # Pastry step grows the shared prefix or shrinks numeric distance.
        return (
            self.space.num_digits - self.space.shared_prefix_length(node, target),
            self.space.ring_distance(node, target),
            node,
        )

    def next_hop(self, current: int, target: int) -> Optional[int]:
        """Leaf-set delivery, else the routing-table prefix entry."""
        if current not in self._table:
            raise KeyError(f"{current} is not a member")
        owner = self.owner_of(target)
        if current == owner:
            return None
        cur_key = self.progress_key(current, target)

        # 1. Leaf set covers the target → jump straight to the best leaf.
        leaves = self._leaves[current]
        best_leaf: Optional[int] = None
        for leaf in leaves:
            if best_leaf is None or self.space.is_closer(leaf, best_leaf, target):
                best_leaf = leaf
        if best_leaf is not None and best_leaf == owner:
            return best_leaf

        # 2. Routing table: entry matching one more digit of the target.
        row = self.space.shared_prefix_length(current, target)
        col = self.space.digit(target, row)
        entry = self._table[current].get((row, col))
        if entry is not None and self.progress_key(entry, target) < cur_key:
            return entry

        # 3. Rare case: no exact slot — any known node strictly closer.
        best: Optional[int] = None
        best_key = cur_key
        for cand in list(leaves) + list(self._table[current].values()):
            pk = self.progress_key(cand, target)
            if pk < best_key:
                best, best_key = cand, pk
        if best is not None:
            return best

        # 4. Leaf-set delivery mode: no prefix progress possible (the
        # numerically-nearest member shares a shorter prefix than we do —
        # e.g. the owner sits just across an aligned digit boundary).  Walk
        # the ring toward the owner through the leaf set.
        cur_ring = self.space.ring_distance(current, owner)
        for leaf in leaves:
            d = self.space.ring_distance(leaf, owner)
            if d < cur_ring:
                best, cur_ring = leaf, d
        return best

    def neighbors_of(self, key: int) -> List[int]:
        """Leaf set plus routing-table entries, deduplicated."""
        if key not in self._table:
            raise KeyError(f"{key} is not a member")
        return sorted(set(self._leaves[key]) | set(self._table[key].values()))

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------
    def leaf_set(self, key: int) -> List[int]:
        """The leaf set of member ``key``."""
        return list(self._leaves[key])

    def routing_table(self, key: int) -> Dict[Tuple[int, int], int]:
        """The (row, digit) → member routing table of ``key``."""
        return dict(self._table[key])

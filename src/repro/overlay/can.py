"""CAN overlay (Ratnasamy et al., SIGCOMM 2001) — the d-dimensional
coordinate-space HS-P2P the paper contrasts throughout §2.3.2:

* "each node needs to maintain 2D neighbors" (constant state in N);
* lookups take O(D·N^(1/D)) hops — polynomial rather than logarithmic.

A node's key maps to a point in a ``d``-dimensional torus by bit
de-interleaving; the space is tessellated into axis-aligned boxes built
as a k-d trie over the member points (cells split cyclically by
dimension until each holds one member — the deterministic equivalent of
CAN's split-on-join).  A trie half that ends up empty is merged into the
zone of one member of the occupied half, so every node owns a *union of
boxes* and the tessellation always covers the whole torus.  A key is
owned by the node whose zone contains its point; routing greedily
forwards across zone faces toward the target point.

Bristle can run either layer over CAN; the hop-scaling bench shows why
the paper's log-N overlays are preferred.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .base import Overlay, RouteResult, RoutingError
from .keyspace import KeySpace

__all__ = ["CANOverlay", "Zone"]


@dataclasses.dataclass(frozen=True)
class Zone:
    """An axis-aligned box in the coordinate torus.

    ``start[i]`` / ``size[i]`` describe the half-open interval
    ``[start[i], start[i] + size[i])`` on axis ``i``; boxes are
    trie-aligned and never wrap.
    """

    start: Tuple[int, ...]
    size: Tuple[int, ...]

    def contains(self, point: Tuple[int, ...]) -> bool:
        """True when ``point`` lies inside the box."""
        return all(
            s <= c < s + sz for c, s, sz in zip(point, self.start, self.size)
        )

    def axis_distance(self, axis: int, coord: int, axis_extent: int) -> int:
        """Torus distance from ``coord`` to this box along one axis."""
        lo = self.start[axis]
        hi = lo + self.size[axis] - 1
        if lo <= coord <= hi:
            return 0
        d_lo = min((lo - coord) % axis_extent, (coord - lo) % axis_extent)
        d_hi = min((hi - coord) % axis_extent, (coord - hi) % axis_extent)
        return min(d_lo, d_hi)

    def distance_to_point(self, point: Tuple[int, ...], axis_extent: int) -> int:
        """L1 torus distance from the box to ``point`` (0 when inside)."""
        return sum(
            self.axis_distance(axis, c, axis_extent) for axis, c in enumerate(point)
        )

    def abuts(self, other: "Zone", axis_extent: int) -> bool:
        """True when the boxes share a (d−1)-dimensional face (torus)."""
        touching_axis = None
        for axis in range(len(self.start)):
            a_lo, a_sz = self.start[axis], self.size[axis]
            b_lo, b_sz = other.start[axis], other.size[axis]
            a_hi = a_lo + a_sz
            b_hi = b_lo + b_sz
            overlap = max(0, min(a_hi, b_hi) - max(a_lo, b_lo))
            if overlap > 0:
                continue
            touches = a_hi % axis_extent == b_lo or b_hi % axis_extent == a_lo
            if touches and touching_axis is None:
                touching_axis = axis
            else:
                return False
        return touching_axis is not None


class _ZoneNode:
    """One node of the k-d zone trie.

    Leaves (``lo is None``) hold a box of the tessellation: ``count == 1``
    for a member's home box, ``count == 0`` for an empty half annexed by
    ``owner``.  Internal nodes cache the split geometry plus subtree
    aggregates (member ``count``, minimum member key) so churn events can
    walk a single root-to-leaf path instead of re-tessellating.
    """

    __slots__ = ("zone", "depth", "axis", "mid", "lo", "hi", "owner", "count", "min_key")

    def __init__(self, zone: Zone, depth: int) -> None:
        self.zone = zone
        self.depth = depth
        self.axis = -1
        self.mid = -1
        self.lo: Optional["_ZoneNode"] = None
        self.hi: Optional["_ZoneNode"] = None
        self.owner: int = -1
        self.count: int = 0
        self.min_key: Optional[int] = None


class CANOverlay(Overlay):
    """CAN with a deterministic k-d-trie zone tessellation.

    Parameters
    ----------
    space:
        The key space; ``space.bits`` must be divisible by ``dims``.
    dims:
        Torus dimensionality ``d`` (the paper's D).
    """

    def __init__(self, space: KeySpace, dims: int = 2) -> None:
        super().__init__(space)
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if space.bits % dims != 0:
            raise ValueError(f"dims ({dims}) must divide key bits ({space.bits})")
        self.dims = dims
        self.bits_per_axis = space.bits // dims
        self.axis_extent = 1 << self.bits_per_axis
        #: member key → the boxes forming its zone
        self._zone_boxes: Dict[int, List[Zone]] = {}
        self._neighbors: Dict[int, List[int]] = {}
        #: k-d trie over the member points; tessellation source of truth
        self._root: Optional[_ZoneNode] = None

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def point_of(self, key: int) -> Tuple[int, ...]:
        """De-interleave ``key``'s bits into d torus coordinates.

        Bit ``j`` of the key (MSB first) feeds axis ``j mod d``, matching
        the trie's cyclic splits — uniform keys give a balanced
        tessellation.
        """
        self.space.validate(key)
        coords = [0] * self.dims
        for j in range(self.space.bits):
            bit = (key >> (self.space.bits - 1 - j)) & 1
            axis = j % self.dims
            coords[axis] = (coords[axis] << 1) | bit
        return tuple(coords)

    # ------------------------------------------------------------------
    # Zone construction (k-d trie, empty halves merged)
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._zone_boxes.clear()
        self._neighbors.clear()
        self._root = None
        if self._keys.size == 0:
            return
        members = [(int(k), self.point_of(int(k))) for k in self._keys]
        full = Zone(start=(0,) * self.dims, size=(self.axis_extent,) * self.dims)
        self._zone_boxes = {k: [] for k, _ in members}
        self._root = self._build_trie(full, members, depth=0)

    def _choose_axis(self, zone: Zone, depth: int) -> int:
        """The split axis at ``depth`` (cyclic, skipping exhausted axes)."""
        axis = depth % self.dims
        if zone.size[axis] == 1:
            for off in range(1, self.dims + 1):
                cand = (depth + off) % self.dims
                if zone.size[cand] > 1:
                    axis = cand
                    break
            else:  # pragma: no cover - distinct keys ⇒ distinct points
                raise RoutingError("cannot split a unit zone with >1 member")
        return axis

    def _make_leaf(self, zone: Zone, depth: int, owner: int, count: int) -> _ZoneNode:
        node = _ZoneNode(zone, depth)
        node.owner = owner
        node.count = count
        node.min_key = owner if count else None
        self._zone_boxes.setdefault(owner, []).append(zone)
        return node

    def _build_trie(
        self,
        zone: Zone,
        members: List[Tuple[int, Tuple[int, ...]]],
        depth: int,
    ) -> _ZoneNode:
        """Tessellate ``zone`` over ``members``: cells split cyclically by
        dimension until each holds one member; an empty half becomes a
        count-0 leaf annexed by the lowest-keyed occupant of the other
        half (deterministic; keeps the tessellation complete, mirroring
        CAN's zone-takeover on departure)."""
        if len(members) == 1:
            return self._make_leaf(zone, depth, members[0][0], count=1)
        axis = self._choose_axis(zone, depth)
        half = zone.size[axis] // 2
        mid = zone.start[axis] + half
        lo_zone = Zone(
            start=zone.start,
            size=tuple(half if i == axis else s for i, s in enumerate(zone.size)),
        )
        hi_zone = Zone(
            start=tuple(mid if i == axis else s for i, s in enumerate(zone.start)),
            size=lo_zone.size,
        )
        lo = [(k, p) for k, p in members if p[axis] < mid]
        hi = [(k, p) for k, p in members if p[axis] >= mid]
        node = _ZoneNode(zone, depth)
        node.axis = axis
        node.mid = mid
        if not lo:
            node.lo = self._make_leaf(lo_zone, depth + 1, min(hi)[0], count=0)
            node.hi = self._build_trie(hi_zone, hi, depth + 1)
        elif not hi:
            node.lo = self._build_trie(lo_zone, lo, depth + 1)
            node.hi = self._make_leaf(hi_zone, depth + 1, min(lo)[0], count=0)
        else:
            node.lo = self._build_trie(lo_zone, lo, depth + 1)
            node.hi = self._build_trie(hi_zone, hi, depth + 1)
        node.count = len(members)
        node.min_key = min(k for k, _ in members)
        return node

    def _zones_adjacent(self, a: int, b: int) -> bool:
        for za in self._zone_boxes[a]:
            for zb in self._zone_boxes[b]:
                if za.abuts(zb, self.axis_extent):
                    return True
        return False

    def _build_node(self, key: int) -> None:
        # The tessellation is global (built in _reset_state); per-node state
        # is the zone-face neighbour list.
        nbrs = []
        for other in self._zone_boxes:
            if other != key and self._zones_adjacent(key, other):
                nbrs.append(other)
        self._neighbors[key] = sorted(nbrs)

    # ------------------------------------------------------------------
    # Vectorised adjacency (bulk build + targeted repair)
    # ------------------------------------------------------------------
    def _collect_box_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten the tessellation into (lo, hi, owner) arrays of shape
        (B, d) / (B, d) / (B,) for vectorised face tests."""
        lo: List[Tuple[int, ...]] = []
        hi: List[Tuple[int, ...]] = []
        owners: List[int] = []
        for owner, boxes in self._zone_boxes.items():
            for z in boxes:
                lo.append(z.start)
                hi.append(tuple(s + sz for s, sz in zip(z.start, z.size)))
                owners.append(owner)
        return (
            np.asarray(lo, dtype=np.int64).reshape(len(lo), self.dims),
            np.asarray(hi, dtype=np.int64).reshape(len(hi), self.dims),
            np.asarray(owners, dtype=np.uint64),
        )

    @staticmethod
    def _abuts_matrix(
        lo_a: np.ndarray,
        hi_a: np.ndarray,
        lo_b: np.ndarray,
        hi_b: np.ndarray,
        extent: int,
    ) -> np.ndarray:
        """Pairwise :meth:`Zone.abuts` over two box sets: exactly one axis
        with zero overlap that touches (possibly wrapping), all other axes
        overlapping."""
        overlap = np.minimum(hi_a[:, None, :], hi_b[None, :, :]) - np.maximum(
            lo_a[:, None, :], lo_b[None, :, :]
        )
        ov = overlap > 0
        touch = ((hi_a[:, None, :] % extent) == lo_b[None, :, :]) | (
            (hi_b[None, :, :] % extent) == lo_a[:, None, :]
        )
        return (ov | touch).all(axis=2) & ((~ov).sum(axis=2) == 1)

    def _build_all(self) -> None:
        if self._keys.size == 0:
            return
        lo, hi, owners = self._collect_box_arrays()
        nbr_sets: Dict[int, Set[int]] = {int(k): set() for k in self._keys.tolist()}
        nboxes = int(owners.size)
        chunk = max(1, (1 << 22) // max(1, nboxes * self.dims))
        for s in range(0, nboxes, chunk):
            e = min(s + chunk, nboxes)
            abuts = self._abuts_matrix(lo[s:e], hi[s:e], lo, hi, self.axis_extent)
            ia, ib = np.nonzero(abuts)
            for oa, ob in zip(owners[ia + s].tolist(), owners[ib].tolist()):
                if oa != ob:
                    nbr_sets[oa].add(ob)
        for k, nbrs in nbr_sets.items():
            self._neighbors[k] = sorted(nbrs)

    def _adjacent_owners(
        self, key: int, arrays: Tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> Set[int]:
        """Owners with at least one box sharing a face with ``key``'s zone."""
        lo, hi, owners = arrays
        mine = owners == np.uint64(key)
        if not mine.any():  # pragma: no cover - callers pass live members
            return set()
        abuts = self._abuts_matrix(lo[mine], hi[mine], lo, hi, self.axis_extent)
        hit = abuts.any(axis=0) & ~mine
        return {int(o) for o in np.unique(owners[hit]).tolist()}

    # ------------------------------------------------------------------
    # Incremental churn: trie path updates instead of re-tessellation
    # ------------------------------------------------------------------
    def _box_add(self, zone: Zone, owner: int) -> None:
        self._zone_boxes.setdefault(owner, []).append(zone)

    def _box_remove(self, zone: Zone, owner: int) -> None:
        boxes = self._zone_boxes[owner]
        boxes.remove(zone)
        if not boxes:
            del self._zone_boxes[owner]

    def _box_move(self, zone: Zone, frm: int, to: int) -> None:
        if frm == to:
            return
        self._box_remove(zone, frm)
        self._box_add(zone, to)

    def _subtree_leaves(self, node: _ZoneNode) -> List[_ZoneNode]:
        if node.lo is None:
            return [node]
        return self._subtree_leaves(node.lo) + self._subtree_leaves(node.hi)

    def _trie_add(
        self,
        node: _ZoneNode,
        key: int,
        point: Tuple[int, ...],
        changed: Set[int],
    ) -> _ZoneNode:
        """Insert ``key`` below ``node``; returns the (possibly replaced)
        subtree and accumulates owners whose zone changed."""
        if node.lo is None:
            if node.count == 0:
                # A previously-annexed empty half gains its first occupant:
                # the box transfers whole, no split (matches the oracle,
                # which now recurses into a singleton half).
                changed.add(node.owner)
                changed.add(key)
                self._box_move(node.zone, node.owner, key)
                node.owner = key
                node.count = 1
                node.min_key = key
                return node
            # An occupied box splits: re-tessellate just this box over its
            # two points — identical to the oracle's recursion there.
            occupant = node.owner
            changed.add(occupant)
            changed.add(key)
            self._box_remove(node.zone, occupant)
            members = [(occupant, self.point_of(occupant)), (key, point)]
            return self._build_trie(node.zone, members, node.depth)
        into_lo = point[node.axis] < node.mid
        child = node.lo if into_lo else node.hi
        sibling = node.hi if into_lo else node.lo
        new_child = self._trie_add(child, key, point, changed)
        if into_lo:
            node.lo = new_child
        else:
            node.hi = new_child
        node.count += 1
        node.min_key = key if node.min_key is None or key < node.min_key else node.min_key
        # An empty-leaf sibling is annexed by the minimum key of this
        # (occupied) side; the newcomer may now be that minimum.
        if sibling.lo is None and sibling.count == 0:
            new_owner = new_child.min_key
            assert new_owner is not None
            if sibling.owner != new_owner:
                changed.add(sibling.owner)
                changed.add(new_owner)
                self._box_move(sibling.zone, sibling.owner, new_owner)
                sibling.owner = new_owner
        return node

    def _trie_remove(
        self,
        node: _ZoneNode,
        key: int,
        point: Tuple[int, ...],
        changed: Set[int],
    ) -> _ZoneNode:
        """Remove ``key`` below ``node`` (which must contain it)."""
        if node.lo is None:
            # The home leaf empties; the caller annexes the returned
            # count-0 leaf into the surviving sibling's zone.
            changed.add(key)
            self._box_remove(node.zone, key)
            node.owner = -1
            node.count = 0
            node.min_key = None
            return node
        if node.count - 1 == 1:
            # One survivor below: the whole subtree collapses back to a
            # single box, exactly as the oracle stops splitting at one
            # member.
            survivor = -1
            for leaf in self._subtree_leaves(node):
                if leaf.count:
                    changed.add(leaf.owner)
                    self._box_remove(leaf.zone, leaf.owner)
                    if leaf.owner != key:
                        survivor = leaf.owner
                else:
                    changed.add(leaf.owner)
                    self._box_remove(leaf.zone, leaf.owner)
            assert survivor != -1
            changed.add(survivor)
            return self._make_leaf(node.zone, node.depth, survivor, count=1)
        into_lo = point[node.axis] < node.mid
        child = node.lo if into_lo else node.hi
        sibling = node.hi if into_lo else node.lo
        new_child = self._trie_remove(child, key, point, changed)
        if new_child.count == 0:
            # The half emptied: annex it to the lowest-keyed occupant of
            # the sibling half (the oracle's empty-half rule).
            annex = sibling.min_key
            assert annex is not None
            new_child.owner = annex
            self._box_add(new_child.zone, annex)
            changed.add(annex)
        if into_lo:
            node.lo = new_child
        else:
            node.hi = new_child
        node.count -= 1
        lo_min = node.lo.min_key
        hi_min = node.hi.min_key
        node.min_key = (
            lo_min if hi_min is None else hi_min if lo_min is None else min(lo_min, hi_min)
        )
        # Empty-leaf siblings annexed by the departed key re-home to the
        # new minimum of the occupied side.
        if sibling.lo is None and sibling.count == 0 and sibling.owner == key:
            new_owner = new_child.min_key
            assert new_owner is not None
            changed.add(key)
            changed.add(new_owner)
            self._box_move(sibling.zone, key, new_owner)
            sibling.owner = new_owner
        return node

    def _repair_neighbors(self, changed: Set[int], removed: Optional[int] = None) -> None:
        """Recompute adjacency for owners whose zones changed; adjacency
        between two untouched members cannot change."""
        if removed is not None:
            for m in self._neighbors.pop(removed, []):
                lst = self._neighbors.get(m)
                if lst is not None and removed in lst:
                    lst.remove(removed)
        live = sorted(k for k in changed if k in self._zone_boxes)
        if not live:
            return
        arrays = self._collect_box_arrays()
        for c in live:
            new = self._adjacent_owners(c, arrays)
            old = set(self._neighbors.get(c, ()))
            self._neighbors[c] = sorted(new)
            for dropped in old - new:
                lst = self._neighbors.get(dropped)
                if lst is not None and c in lst:
                    lst.remove(c)
            for gained in new - old:
                lst = self._neighbors.get(gained)
                if lst is not None and c not in lst:
                    lst.append(c)
                    lst.sort()

    def _on_add(self, key: int) -> None:
        assert self._root is not None
        point = self.point_of(key)
        changed: Set[int] = set()
        self._root = self._trie_add(self._root, key, point, changed)
        # Owners that lost territory to the newcomer may hold stale memo
        # entries (the ring-neighbour rule of the base class does not apply
        # to zone ownership).
        for owner in changed:
            self._evict_owner_group(owner)
        self._repair_neighbors(changed)
        self._record_repair(len(changed))

    def _on_remove(self, key: int) -> None:
        assert self._root is not None
        point = self.point_of(key)
        changed: Set[int] = set()
        self._root = self._trie_remove(self._root, key, point, changed)
        changed.discard(key)
        self._repair_neighbors(changed, removed=key)
        self._record_repair(len(changed))

    def _invalidate_owner_memo_add(self, key: int) -> None:
        # Zone ownership is not ring-local; eviction happens in _on_add
        # once the set of owners losing territory is known.  (Departures
        # only re-home keys the departed member owned, so the base rule
        # stands for _invalidate_owner_memo_remove.)
        return

    # ------------------------------------------------------------------
    # Ownership & routing
    # ------------------------------------------------------------------
    def zone_of(self, key: int) -> List[Zone]:
        """The member's zone boxes (KeyError for non-members)."""
        return list(self._zone_boxes[key])

    def zone_distance(self, member: int, point: Tuple[int, ...]) -> int:
        """L1 torus distance from a member's zone to ``point``."""
        return min(
            z.distance_to_point(point, self.axis_extent)
            for z in self._zone_boxes[member]
        )

    def _compute_owner(self, key: int) -> int:
        """The member whose zone contains the key's point (trie descent:
        an empty leaf belongs to the member that annexed it)."""
        if self._root is None:  # pragma: no cover - build precedes queries
            raise RoutingError("overlay has no tessellation")
        point = self.point_of(key)
        node = self._root
        while node.lo is not None:
            node = node.lo if point[node.axis] < node.mid else node.hi
        return node.owner

    def progress_key(self, node: int, target: int):
        """(zone L1 distance to the target point, key)."""
        return (self.zone_distance(node, self.point_of(target)), node)

    def next_hop(self, current: int, target: int) -> Optional[int]:
        """Face neighbour strictly closer to the target point."""
        if current not in self._zone_boxes:
            raise KeyError(f"{current} is not a member")
        point = self.point_of(target)
        cur_d = self.zone_distance(current, point)
        if cur_d == 0:
            return None
        best: Optional[int] = None
        best_d = cur_d
        for nbr in self._neighbors[current]:
            d = self.zone_distance(nbr, point)
            if d < best_d:
                best, best_d = nbr, d
        return best

    def route(self, source: int, target: int) -> RouteResult:
        """Greedy zone routing with plateau tolerance.

        CAN's greedy metric can plateau on equal-distance neighbours when
        zones are uneven; the walker permits sideways moves (loop-guarded
        by the visited set) rather than declaring failure.
        """
        if not self.is_member(source):
            raise ValueError(f"source {source} is not a member")
        self.space.validate(target)
        owner = self.owner_of(target)
        point = self.point_of(target)
        hops = [source]
        current = source
        seen = {source}
        while current != owner:
            cur_d = self.zone_distance(current, point)
            candidates = sorted(
                (self.zone_distance(n, point), n)
                for n in self._neighbors[current]
                if n not in seen and self.zone_distance(n, point) <= cur_d
            )
            if not candidates:
                return RouteResult(target=target, hops=hops, success=False)
            current = candidates[0][1]
            hops.append(current)
            seen.add(current)
            if len(hops) > self.MAX_ROUTE_HOPS:
                raise RoutingError(f"CAN route exceeded {self.MAX_ROUTE_HOPS} hops")
        return RouteResult(target=target, hops=hops, success=True)

    def neighbors_of(self, key: int) -> List[int]:
        """Zone-face neighbours of ``key``."""
        if key not in self._neighbors:
            raise KeyError(f"{key} is not a member")
        return list(self._neighbors[key])

"""CAN overlay (Ratnasamy et al., SIGCOMM 2001) — the d-dimensional
coordinate-space HS-P2P the paper contrasts throughout §2.3.2:

* "each node needs to maintain 2D neighbors" (constant state in N);
* lookups take O(D·N^(1/D)) hops — polynomial rather than logarithmic.

A node's key maps to a point in a ``d``-dimensional torus by bit
de-interleaving; the space is tessellated into axis-aligned boxes built
as a k-d trie over the member points (cells split cyclically by
dimension until each holds one member — the deterministic equivalent of
CAN's split-on-join).  A trie half that ends up empty is merged into the
zone of one member of the occupied half, so every node owns a *union of
boxes* and the tessellation always covers the whole torus.  A key is
owned by the node whose zone contains its point; routing greedily
forwards across zone faces toward the target point.

Bristle can run either layer over CAN; the hop-scaling bench shows why
the paper's log-N overlays are preferred.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .base import Overlay, RouteResult, RoutingError
from .keyspace import KeySpace

__all__ = ["CANOverlay", "Zone"]


@dataclasses.dataclass(frozen=True)
class Zone:
    """An axis-aligned box in the coordinate torus.

    ``start[i]`` / ``size[i]`` describe the half-open interval
    ``[start[i], start[i] + size[i])`` on axis ``i``; boxes are
    trie-aligned and never wrap.
    """

    start: Tuple[int, ...]
    size: Tuple[int, ...]

    def contains(self, point: Tuple[int, ...]) -> bool:
        """True when ``point`` lies inside the box."""
        return all(
            s <= c < s + sz for c, s, sz in zip(point, self.start, self.size)
        )

    def axis_distance(self, axis: int, coord: int, axis_extent: int) -> int:
        """Torus distance from ``coord`` to this box along one axis."""
        lo = self.start[axis]
        hi = lo + self.size[axis] - 1
        if lo <= coord <= hi:
            return 0
        d_lo = min((lo - coord) % axis_extent, (coord - lo) % axis_extent)
        d_hi = min((hi - coord) % axis_extent, (coord - hi) % axis_extent)
        return min(d_lo, d_hi)

    def distance_to_point(self, point: Tuple[int, ...], axis_extent: int) -> int:
        """L1 torus distance from the box to ``point`` (0 when inside)."""
        return sum(
            self.axis_distance(axis, c, axis_extent) for axis, c in enumerate(point)
        )

    def abuts(self, other: "Zone", axis_extent: int) -> bool:
        """True when the boxes share a (d−1)-dimensional face (torus)."""
        touching_axis = None
        for axis in range(len(self.start)):
            a_lo, a_sz = self.start[axis], self.size[axis]
            b_lo, b_sz = other.start[axis], other.size[axis]
            a_hi = a_lo + a_sz
            b_hi = b_lo + b_sz
            overlap = max(0, min(a_hi, b_hi) - max(a_lo, b_lo))
            if overlap > 0:
                continue
            touches = a_hi % axis_extent == b_lo or b_hi % axis_extent == a_lo
            if touches and touching_axis is None:
                touching_axis = axis
            else:
                return False
        return touching_axis is not None


class CANOverlay(Overlay):
    """CAN with a deterministic k-d-trie zone tessellation.

    Parameters
    ----------
    space:
        The key space; ``space.bits`` must be divisible by ``dims``.
    dims:
        Torus dimensionality ``d`` (the paper's D).
    """

    def __init__(self, space: KeySpace, dims: int = 2) -> None:
        super().__init__(space)
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if space.bits % dims != 0:
            raise ValueError(f"dims ({dims}) must divide key bits ({space.bits})")
        self.dims = dims
        self.bits_per_axis = space.bits // dims
        self.axis_extent = 1 << self.bits_per_axis
        #: member key → the boxes forming its zone
        self._zone_boxes: Dict[int, List[Zone]] = {}
        self._neighbors: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def point_of(self, key: int) -> Tuple[int, ...]:
        """De-interleave ``key``'s bits into d torus coordinates.

        Bit ``j`` of the key (MSB first) feeds axis ``j mod d``, matching
        the trie's cyclic splits — uniform keys give a balanced
        tessellation.
        """
        self.space.validate(key)
        coords = [0] * self.dims
        for j in range(self.space.bits):
            bit = (key >> (self.space.bits - 1 - j)) & 1
            axis = j % self.dims
            coords[axis] = (coords[axis] << 1) | bit
        return tuple(coords)

    # ------------------------------------------------------------------
    # Zone construction (k-d trie, empty halves merged)
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._zone_boxes.clear()
        self._neighbors.clear()
        if self._keys.size == 0:
            return
        members = [(int(k), self.point_of(int(k))) for k in self._keys]
        full = Zone(start=(0,) * self.dims, size=(self.axis_extent,) * self.dims)
        self._zone_boxes = {k: [] for k, _ in members}
        self._split(full, members, depth=0)
        keys = [k for k, _ in members]
        for a in keys:
            nbrs = []
            for b in keys:
                if b == a:
                    continue
                if self._zones_adjacent(a, b):
                    nbrs.append(b)
            self._neighbors[a] = sorted(nbrs)

    def _zones_adjacent(self, a: int, b: int) -> bool:
        for za in self._zone_boxes[a]:
            for zb in self._zone_boxes[b]:
                if za.abuts(zb, self.axis_extent):
                    return True
        return False

    def _split(
        self,
        zone: Zone,
        members: List[Tuple[int, Tuple[int, ...]]],
        depth: int,
    ) -> None:
        if len(members) == 1:
            self._zone_boxes[members[0][0]].append(zone)
            return
        axis = depth % self.dims
        if zone.size[axis] == 1:
            for off in range(1, self.dims + 1):
                cand = (depth + off) % self.dims
                if zone.size[cand] > 1:
                    axis = cand
                    break
            else:  # pragma: no cover - distinct keys ⇒ distinct points
                raise RoutingError("cannot split a unit zone with >1 member")
        half = zone.size[axis] // 2
        mid = zone.start[axis] + half
        lo_zone = Zone(
            start=zone.start,
            size=tuple(half if i == axis else s for i, s in enumerate(zone.size)),
        )
        hi_zone = Zone(
            start=tuple(mid if i == axis else s for i, s in enumerate(zone.start)),
            size=lo_zone.size,
        )
        lo = [(k, p) for k, p in members if p[axis] < mid]
        hi = [(k, p) for k, p in members if p[axis] >= mid]
        if not lo:
            # The empty half is annexed by the lowest-keyed occupant of
            # the other half (deterministic; keeps the tessellation
            # complete, mirroring CAN's zone-takeover on departure).
            annex = min(hi)[0]
            self._zone_boxes[annex].append(lo_zone)
            self._split(hi_zone, hi, depth + 1)
            return
        if not hi:
            annex = min(lo)[0]
            self._zone_boxes[annex].append(hi_zone)
            self._split(lo_zone, lo, depth + 1)
            return
        self._split(lo_zone, lo, depth + 1)
        self._split(hi_zone, hi, depth + 1)

    def _build_node(self, key: int) -> None:
        # All state is global (the tessellation), computed in _reset_state.
        return

    # ------------------------------------------------------------------
    # Ownership & routing
    # ------------------------------------------------------------------
    def zone_of(self, key: int) -> List[Zone]:
        """The member's zone boxes (KeyError for non-members)."""
        return list(self._zone_boxes[key])

    def zone_distance(self, member: int, point: Tuple[int, ...]) -> int:
        """L1 torus distance from a member's zone to ``point``."""
        return min(
            z.distance_to_point(point, self.axis_extent)
            for z in self._zone_boxes[member]
        )

    def _compute_owner(self, key: int) -> int:
        """The member whose zone contains the key's point."""
        point = self.point_of(key)
        for member, boxes in self._zone_boxes.items():
            if any(z.contains(point) for z in boxes):
                return member
        raise RoutingError(  # pragma: no cover - tessellation is complete
            f"no zone contains point {point}"
        )

    def progress_key(self, node: int, target: int):
        """(zone L1 distance to the target point, key)."""
        return (self.zone_distance(node, self.point_of(target)), node)

    def next_hop(self, current: int, target: int) -> Optional[int]:
        """Face neighbour strictly closer to the target point."""
        if current not in self._zone_boxes:
            raise KeyError(f"{current} is not a member")
        point = self.point_of(target)
        cur_d = self.zone_distance(current, point)
        if cur_d == 0:
            return None
        best: Optional[int] = None
        best_d = cur_d
        for nbr in self._neighbors[current]:
            d = self.zone_distance(nbr, point)
            if d < best_d:
                best, best_d = nbr, d
        return best

    def route(self, source: int, target: int) -> RouteResult:
        """Greedy zone routing with plateau tolerance.

        CAN's greedy metric can plateau on equal-distance neighbours when
        zones are uneven; the walker permits sideways moves (loop-guarded
        by the visited set) rather than declaring failure.
        """
        if not self.is_member(source):
            raise ValueError(f"source {source} is not a member")
        self.space.validate(target)
        owner = self.owner_of(target)
        point = self.point_of(target)
        hops = [source]
        current = source
        seen = {source}
        while current != owner:
            cur_d = self.zone_distance(current, point)
            candidates = sorted(
                (self.zone_distance(n, point), n)
                for n in self._neighbors[current]
                if n not in seen and self.zone_distance(n, point) <= cur_d
            )
            if not candidates:
                return RouteResult(target=target, hops=hops, success=False)
            current = candidates[0][1]
            hops.append(current)
            seen.add(current)
            if len(hops) > self.MAX_ROUTE_HOPS:
                raise RoutingError(f"CAN route exceeded {self.MAX_ROUTE_HOPS} hops")
        return RouteResult(target=target, hops=hops, success=True)

    def neighbors_of(self, key: int) -> List[int]:
        """Zone-face neighbours of ``key``."""
        if key not in self._neighbors:
            raise KeyError(f"{key} is not a member")
        return list(self._neighbors[key])

"""Construction helpers: build any named overlay from a spec string.

Experiments take an ``overlay="tornado"`` parameter; this module maps the
name to a configured instance so every harness supports all substrates
(§2.1: "The stationary layer can be any HS-P2P").
"""

from __future__ import annotations

from typing import Callable, Optional

from .base import Overlay, ProximityFn
from .can import CANOverlay
from .chord import ChordOverlay
from .keyspace import KeySpace
from .pastry import PastryOverlay
from .tapestry import TapestryOverlay
from .tornado import TornadoOverlay

__all__ = ["make_overlay", "OVERLAY_NAMES"]

OVERLAY_NAMES = ("chord", "pastry", "tornado", "tapestry", "can")


def make_overlay(
    name: str,
    space: KeySpace,
    *,
    proximity: Optional[ProximityFn] = None,
    capacity: Optional[Callable[[int], float]] = None,
    leaf_set_size: int = 8,
    successor_list_size: int = 4,
    can_dims: int = 2,
) -> Overlay:
    """Instantiate the overlay called ``name``.

    Parameters irrelevant to the chosen overlay are ignored (e.g. Chord
    takes no proximity callback — mobility-unaware substrates simply do not
    use it).
    """
    lowered = name.lower()
    if lowered == "chord":
        return ChordOverlay(space, successor_list_size=successor_list_size)
    if lowered == "pastry":
        return PastryOverlay(space, leaf_set_size=leaf_set_size, proximity=proximity)
    if lowered == "tornado":
        return TornadoOverlay(
            space, leaf_set_size=leaf_set_size, proximity=proximity, capacity=capacity
        )
    if lowered == "tapestry":
        return TapestryOverlay(
            space, leaf_set_size=leaf_set_size, proximity=proximity
        )
    if lowered == "can":
        return CANOverlay(space, dims=can_dims)
    raise ValueError(f"unknown overlay {name!r}; expected one of {OVERLAY_NAMES}")

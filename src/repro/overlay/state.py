"""State-pairs and per-node state tables.

The paper's central data object is the *state-pair* ``<hash key, network
address>`` (§1): "a state ... associates the hash key of a known peer and
its network address".  :class:`StatePair` adds the lease/TTL machinery of
§2.3.2 (a state "is associated with a time-to-live (TTL) value ... once the
contract of a state expires, the state is no longer valid") and the
``null``/invalid address states of Figure 2.

:class:`StateTable` is the per-node list of state-pairs with the lookup
primitives routing needs ("does there exist a node closer to the designated
key j?").
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from .. import sanitize as _sanitize
from ..net.address import NetworkAddress
from .keyspace import KeySpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..sim.columnar import StatePairColumns

__all__ = ["StatePair", "StateTable"]


@dataclasses.dataclass
class StatePair:
    """One routing-table entry: a known peer's key and (maybe) its address.

    Attributes
    ----------
    key:
        The peer's hash key.
    addr:
        Its network address, or ``None`` when unresolved (the paper's
        ``null``).
    ttl:
        Lease duration granted at each refresh; ``math.inf`` for
        non-expiring entries (stationary peers under early binding).
    refreshed_at:
        Virtual time of the most recent refresh.
    capacity:
        The peer's advertised capacity ``C_X`` (§2.3.1) — carried with the
        state so LDT scheduling can sort registries by capacity.
    """

    key: int
    addr: Optional[NetworkAddress] = None
    ttl: float = math.inf
    refreshed_at: float = 0.0
    capacity: float = 1.0

    @property
    def expires_at(self) -> float:
        return self.refreshed_at + self.ttl

    def is_fresh(self, now: float) -> bool:
        """Lease still in force at ``now``."""
        return now <= self.expires_at

    def is_resolved(self, now: float) -> bool:
        """Address known *and* lease fresh — usable for direct forwarding."""
        return self.addr is not None and self.is_fresh(now)

    def invalidate(self) -> None:
        """Drop the address (peer moved; cached location is void)."""
        self.addr = None

    def refresh(self, now: float, addr: Optional[NetworkAddress] = None, ttl: Optional[float] = None) -> None:
        """Renew the lease, optionally updating address and TTL."""
        if _sanitize.ACTIVE:
            _sanitize.check_lease_refresh(self, now, ttl)
        self.refreshed_at = now
        if addr is not None:
            self.addr = addr
        if ttl is not None:
            self.ttl = ttl


class StateTable:
    """The set of state-pairs a node maintains (``state[i]`` in the paper).

    One entry per known peer key; inserting an existing key merges (keeps
    the fresher information).  Lookup primitives implement the closeness
    tests of Figure 2 and Figure 5.
    """

    def __init__(self, space: KeySpace, owner_key: int) -> None:
        self.space = space
        self.owner_key = space.validate(owner_key)
        self._entries: Dict[int, StatePair] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, pair: StatePair) -> StatePair:
        """Add or merge ``pair``; returns the stored entry.

        A node never stores a state for itself.
        """
        if pair.key == self.owner_key:
            raise ValueError("a node does not keep a state-pair for itself")
        self.space.validate(pair.key)
        existing = self._entries.get(pair.key)
        if existing is None:
            self._entries[pair.key] = pair
            return pair
        # Merge: prefer the newer refresh; carry capacity forward.
        if pair.refreshed_at >= existing.refreshed_at:
            existing.refresh(pair.refreshed_at, addr=pair.addr, ttl=pair.ttl)
            existing.capacity = pair.capacity
        return existing

    def remove(self, key: int) -> None:
        """Drop the entry for ``key`` (KeyError when absent)."""
        del self._entries[key]

    def discard(self, key: int) -> None:
        """Drop the entry for ``key`` if present."""
        self._entries.pop(key, None)

    def invalidate(self, key: int) -> bool:
        """Void the cached address for ``key``; True when an entry existed."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.invalidate()
        return True

    def expire(self, now: float) -> List[int]:
        """Remove all entries whose lease lapsed; returns the removed keys."""
        dead = [k for k, e in self._entries.items() if not e.is_fresh(now)]
        for k in dead:
            del self._entries[k]
        return dead

    # ------------------------------------------------------------------
    # Columnar bridge
    # ------------------------------------------------------------------
    def to_columns(self) -> "StatePairColumns":
        """This table's entries as one struct-of-arrays column set
        (:class:`repro.sim.columnar.StatePairColumns` rows keyed by this
        node), so the columnar lease kernels can run over it."""
        from ..sim.columnar import StatePairColumns

        return StatePairColumns.from_tables({self.owner_key: self})

    def load_columns(self, columns: "StatePairColumns") -> int:
        """Replace this table's entries with ``columns``' rows for this
        node (the inverse of :meth:`to_columns`); returns the entry count.

        An address triple of ``(-1, -1, -1)`` round-trips back to an
        unresolved (``None``) address.
        """
        self._entries.clear()
        count = 0
        for row in columns.rows():
            registrant, key, router, port, epoch, refreshed, ttl, capacity = row
            if registrant != self.owner_key:
                continue
            addr = (
                None
                if (router, port, epoch) == (-1, -1, -1)
                else NetworkAddress(router=router, port=port, epoch=epoch)
            )
            self.insert(
                StatePair(
                    key=key,
                    addr=addr,
                    ttl=ttl,
                    refreshed_at=refreshed,
                    capacity=capacity,
                )
            )
            count += 1
        return count

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[StatePair]:
        """The entry for ``key``, or ``None``."""
        return self._entries.get(key)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StatePair]:
        # Deterministic iteration order (sorted by key) keeps simulations
        # reproducible across Python hash randomisation.
        for k in sorted(self._entries):
            yield self._entries[k]

    def keys(self) -> List[int]:
        """All entry keys, ascending."""
        return sorted(self._entries)

    def closest_to(self, target: int) -> Optional[StatePair]:
        """Entry whose key is nearest ``target`` (ring metric, ties small)."""
        best: Optional[StatePair] = None
        for entry in self:
            if best is None or self.space.is_closer(entry.key, best.key, target):
                best = entry
        return best

    def closer_than_owner(self, target: int) -> Optional[StatePair]:
        """The Figure-2 test: an entry strictly closer to ``target`` than
        this node itself, or ``None`` (meaning the owner is the closest
        node it knows — routing terminates here)."""
        best = self.closest_to(target)
        if best is not None and self.space.is_closer(best.key, self.owner_key, target):
            return best
        return None

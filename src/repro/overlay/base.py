"""Abstract HS-P2P overlay contract.

The stationary layer "can be any HS-P2P, e.g., CAN, Chord, Pastry,
Tapestry, Tornado" (§2.1) — Bristle only relies on a small contract, which
this module pins down:

* every node keeps ``O(log N)`` state-pairs (:meth:`Overlay.neighbors_of`);
* a key is *owned* by the node whose key is closest to it
  (:meth:`Overlay.owner_of`);
* greedy key-space routing reaches the owner in ``O(log N)`` hops
  (:meth:`Overlay.route`).

Concrete implementations (:mod:`~repro.overlay.chord`,
:mod:`~repro.overlay.pastry`, :mod:`~repro.overlay.tornado`) are built two
ways: an *oracle build* that computes routing state directly from the
membership set (fast; used by the large parameter sweeps) and incremental
``add_node`` / ``remove_node`` updates (used by churn scenarios).  Tests
assert the two agree.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

import numpy as np

from .. import sanitize as _sanitize
from .keyspace import KeySpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..sim.metrics import MetricsRegistry

__all__ = ["RouteResult", "Overlay", "ProximityFn", "RoutingError"]

#: Optional network-proximity callback ``(key_a, key_b) -> cost`` used by
#: proximity-aware overlays (Tornado, and the §3 optimisation) to choose
#: among key-wise equivalent neighbour candidates.
ProximityFn = Callable[[int, int], float]


class RoutingError(RuntimeError):
    """Raised when greedy routing cannot make progress (overlay corrupt)."""


@dataclasses.dataclass
class RouteResult:
    """Outcome of routing a message toward a key.

    Attributes
    ----------
    target:
        The key routed toward.
    hops:
        Node keys visited, source first, owner last.  A route that starts
        at the owner has ``hops == [source]``.
    success:
        Whether the route terminated at the key's owner.
    """

    target: int
    hops: List[int]
    success: bool

    @property
    def hop_count(self) -> int:
        """Number of overlay hops (edges) traversed."""
        return max(len(self.hops) - 1, 0)

    @property
    def source(self) -> int:
        return self.hops[0]

    @property
    def terminus(self) -> int:
        return self.hops[-1]


class Overlay(abc.ABC):
    """Base class for hash-structured overlays.

    Subclasses populate per-node routing state in :meth:`_build_node` and
    pick the next hop in :meth:`next_hop`; the shared :meth:`route` loop,
    membership bookkeeping and owner resolution live here.
    """

    #: Guard against routing loops; honest overlays of 2^20 nodes route in
    #: well under 100 hops.
    MAX_ROUTE_HOPS = 512

    #: Cap on the owner-resolution memo (cleared wholesale when full).
    #: Ownership is a pure function of the member set, and routing asks for
    #: the same owner ~5 times per hop; membership changes evict only the
    #: entries the change can actually divert (:meth:`_invalidate_owner_memo_add`
    #: / :meth:`_invalidate_owner_memo_remove`).
    OWNER_MEMO_MAX = 1 << 17

    def __init__(self, space: KeySpace, proximity: Optional[ProximityFn] = None) -> None:
        self.space = space
        self.proximity = proximity
        # Membership is a sorted uint64 array held in an amortised
        # capacity-doubling buffer so per-event add/remove is a memmove of
        # the tail, not a fresh O(N) allocation (np.insert/np.delete).
        self._key_buf: np.ndarray = np.empty(0, dtype=np.uint64)
        self._key_count: int = 0
        self._member_set: set = set()
        self._owner_memo: Dict[int, int] = {}
        #: reverse index owner -> memoised targets, enabling targeted
        #: eviction of exactly the entries a membership change can divert.
        self._memo_owners: Dict[int, List[int]] = {}
        self._metrics: Optional["MetricsRegistry"] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def _keys(self) -> np.ndarray:
        """Sorted member keys (a view into the amortised buffer)."""
        return self._key_buf[: self._key_count]

    @property
    def keys(self) -> np.ndarray:
        """Sorted array of member keys."""
        return self._keys

    @property
    def num_nodes(self) -> int:
        return self._key_count

    def is_member(self, key: int) -> bool:
        """True when ``key`` is a current member."""
        return key in self._member_set

    def bind_metrics(self, metrics: Optional["MetricsRegistry"]) -> None:
        """Attach a metrics registry; churn repairs then record
        ``overlay.repairs`` / ``overlay.repaired_nodes`` counters there."""
        self._metrics = metrics

    def _record_repair(self, repaired_nodes: int) -> None:
        """Count one churn-repair event touching ``repaired_nodes`` members."""
        m = self._metrics
        if m is None:
            from ..sim.telemetry import active_telemetry

            tel = active_telemetry()
            if tel is None:
                return
            m = tel.metrics
        m.counter("overlay.repairs").inc()
        m.counter("overlay.repaired_nodes").inc(int(repaired_nodes))

    def build(self, keys: Iterable[int], *, bulk: bool = True) -> None:
        """Oracle-build the overlay over ``keys`` (replaces any prior state).

        ``bulk=True`` (the default) routes through :meth:`_build_all`, which
        overlays may vectorise; ``bulk=False`` forces the per-node reference
        path (used by parity tests).
        """
        key_list = sorted({self.space.validate(int(k)) for k in keys})
        if not key_list:
            raise ValueError("cannot build an overlay with no members")
        self._key_buf = np.asarray(key_list, dtype=np.uint64)
        self._key_count = len(key_list)
        self._member_set = set(key_list)
        self._owner_memo.clear()
        self._memo_owners.clear()
        self._reset_state()
        if bulk:
            self._build_all()
        else:
            for k in key_list:
                self._build_node(k)

    def _insert_key(self, key: int) -> int:
        """Insert ``key`` into the sorted buffer; return its index."""
        n = self._key_count
        if n == self._key_buf.size:
            grown = np.empty(max(16, 2 * self._key_buf.size), dtype=np.uint64)
            grown[:n] = self._key_buf[:n]
            self._key_buf = grown
        idx = int(np.searchsorted(self._key_buf[:n], np.uint64(key)))
        self._key_buf[idx + 1 : n + 1] = self._key_buf[idx:n]
        self._key_buf[idx] = np.uint64(key)
        self._key_count = n + 1
        return idx

    def _delete_key(self, key: int) -> int:
        """Delete ``key`` from the sorted buffer; return its old index."""
        n = self._key_count
        idx = int(np.searchsorted(self._key_buf[:n], np.uint64(key)))
        self._key_buf[idx : n - 1] = self._key_buf[idx + 1 : n]
        self._key_count = n - 1
        return idx

    def add_node(self, key: int) -> None:
        """Incrementally admit ``key`` and repair affected routing state."""
        key = self.space.validate(int(key))
        if key in self._member_set:
            raise ValueError(f"key {key} is already a member")
        self._member_set.add(key)
        self._insert_key(key)
        self._invalidate_owner_memo_add(key)
        self._on_add(key)
        if _sanitize.ACTIVE:
            _sanitize.check_overlay_consistency(self, key)

    def remove_node(self, key: int) -> None:
        """Remove ``key`` and repair affected routing state."""
        if key not in self._member_set:
            raise KeyError(f"key {key} is not a member")
        if len(self._member_set) == 1:
            raise ValueError("cannot remove the last member")
        self._member_set.remove(key)
        self._delete_key(key)
        self._invalidate_owner_memo_remove(key)
        self._on_remove(key)
        if _sanitize.ACTIVE:
            _sanitize.check_overlay_consistency(self, key)

    # ------------------------------------------------------------------
    # Ownership and routing
    # ------------------------------------------------------------------
    def owner_of(self, key: int) -> int:
        """Member key responsible for ``key``.

        The paper's storage rule (§1): "store a data item with a hash key k
        in a peer node whose hash key is the closest to k."  Ownership is a
        pure function of the member set, so the answer is memoized here
        (membership changes evict exactly the entries they can divert,
        keeping the memo warm across churn); subclasses override
        :meth:`_compute_owner` with their storage rule instead of this.
        """
        cached = self._owner_memo.get(key)
        if cached is not None:
            return cached
        self.space.validate(key)
        if self._key_count == 0:
            raise RuntimeError("overlay has no members")
        owner = self._compute_owner(key)
        if len(self._owner_memo) >= self.OWNER_MEMO_MAX:
            self._owner_memo.clear()
            self._memo_owners.clear()
        self._owner_memo[key] = owner
        self._memo_owners.setdefault(owner, []).append(key)
        return owner

    def _evict_owner_group(self, owner: int) -> None:
        """Drop every memo entry currently resolving to ``owner``."""
        group = self._memo_owners.pop(owner, None)
        if not group:
            return
        memo = self._owner_memo
        for target in group:
            if memo.get(target) == owner:
                del memo[target]

    def _invalidate_owner_memo_add(self, key: int) -> None:
        """Evict memo entries an admission of ``key`` can divert.

        Under the default ring-nearest storage rule a new member only steals
        keys from its two ring neighbours, so those two owner groups are the
        only stale entries (Chord's successor rule is covered too: the old
        owner of any diverted key is the new key's successor).  Overlays
        with a non-local :meth:`_compute_owner` (e.g. CAN's zones, Tapestry's
        surrogate descent) must override this alongside it.

        Called with the membership already updated (``key`` is in
        :attr:`keys`).
        """
        keys = self._keys
        n = int(keys.size)
        if n <= 1:
            self._owner_memo.clear()
            self._memo_owners.clear()
            return
        idx = int(np.searchsorted(keys, np.uint64(key)))
        self._evict_owner_group(int(keys[(idx - 1) % n]))
        self._evict_owner_group(int(keys[(idx + 1) % n]))

    def _invalidate_owner_memo_remove(self, key: int) -> None:
        """Evict memo entries a departure of ``key`` can divert.

        Removing a member can only re-home the keys that member owned: for
        every storage rule in this package, an owner other than ``key``
        keeps winning over any subset of the membership that still contains
        it.  Evicting ``key``'s own group is therefore exact.
        """
        self._evict_owner_group(key)

    def _compute_owner(self, key: int) -> int:
        """The storage rule: ring-nearest by default; Chord uses successor,
        Tapestry the surrogate root, CAN the zone tessellation."""
        return self.space.nearest_key(self._keys, key)

    def progress_key(self, node: int, target: int):
        """Totally-ordered progress measure; strictly decreases per hop.

        The default (ring distance, key) suits numeric-closeness overlays;
        Chord overrides with clockwise distance, prefix overlays with
        (digit mismatch, ring distance).
        """
        return (self.space.ring_distance(node, target), node)

    def route(self, source: int, target: int) -> RouteResult:
        """Greedily route from member ``source`` toward key ``target``.

        Returns the hop sequence ending at the owner of ``target``.  Raises
        :class:`RoutingError` on a loop or dead end (which indicates a bug
        in the overlay's state — greedy routing on correct state always
        terminates).
        """
        if not self.is_member(source):
            raise ValueError(f"source {source} is not a member")
        self.space.validate(target)
        owner = self.owner_of(target)
        hops = [source]
        current = source
        seen = {source}
        while current != owner:
            nxt = self.next_hop(current, target)
            if nxt is None:
                # No strictly-closer neighbour: greedy termination. Correct
                # overlays only hit this at the owner; elsewhere it's a gap.
                return RouteResult(target=target, hops=hops, success=current == owner)
            if nxt in seen:
                raise RoutingError(
                    f"routing loop at node {nxt} while targeting {target}"
                )
            # A hop must make progress: either by the overlay's own measure
            # (prefix/clockwise) or by ring distance toward the owner (the
            # leaf-set delivery mode of prefix overlays).
            progressed = self.progress_key(nxt, target) < self.progress_key(
                current, target
            ) or self.space.ring_distance(nxt, owner) < self.space.ring_distance(
                current, owner
            )
            if not progressed:
                raise RoutingError(
                    f"non-monotone hop {current}->{nxt} targeting {target}"
                )
            hops.append(nxt)
            seen.add(nxt)
            current = nxt
            if len(hops) > self.MAX_ROUTE_HOPS:
                raise RoutingError(f"route exceeded {self.MAX_ROUTE_HOPS} hops")
        return RouteResult(target=target, hops=hops, success=True)

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def next_hop(self, current: int, target: int) -> Optional[int]:
        """The neighbour of ``current`` to forward toward ``target``.

        Must return a member key whose :meth:`progress_key` toward
        ``target`` is strictly smaller than ``current``'s, or ``None`` when
        no such neighbour is known (routing terminates).
        """

    @abc.abstractmethod
    def neighbors_of(self, key: int) -> List[int]:
        """All neighbour keys in ``key``'s routing state (deduplicated)."""

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Clear all per-node routing state (before an oracle build)."""

    @abc.abstractmethod
    def _build_node(self, key: int) -> None:
        """Compute routing state for member ``key`` from the member array."""

    def _build_all(self) -> None:
        """Build routing state for every member at once.

        The default is the per-node reference loop; overlays override with
        a vectorised bulk construction that must produce bit-identical
        state (asserted by the contract tests).
        """
        for k in self._keys.tolist():
            self._build_node(int(k))

    def _on_add(self, key: int) -> None:
        """Repair state after ``key`` joined; default rebuilds everything.

        Subclasses override with targeted repairs (and report their cost
        through :meth:`_record_repair`); the default is correct but
        O(N log N) per event.
        """
        self._reset_state()
        for k in self._member_set:
            self._build_node(int(k))
        self._record_repair(len(self._member_set))

    def _on_remove(self, key: int) -> None:
        """Repair state after ``key`` left; default rebuilds everything."""
        self._reset_state()
        for k in self._member_set:
            self._build_node(int(k))
        self._record_repair(len(self._member_set))

    def route_avoiding(
        self, source: int, target: int, avoid: "set[int]"
    ) -> RouteResult:
        """Greedy routing that detours around ``avoid``\\ ed members.

        §2.3.2's reliability argument: "a route towards its destination
        can be adaptive by maintaining multiple paths to the neighbors" —
        when the preferred next hop is down, any *other* neighbour that
        still makes progress is taken instead.  The walk is loop-guarded
        by a visited set and reports failure (rather than raising) when
        the failed set disconnects every progressing path.

        The owner itself being in ``avoid`` is unreachable by definition
        and returns ``success=False`` immediately.
        """
        if not self.is_member(source):
            raise ValueError(f"source {source} is not a member")
        if source in avoid:
            raise ValueError("source node is itself failed")
        self.space.validate(target)
        owner = self.owner_of(target)
        hops = [source]
        if owner in avoid:
            return RouteResult(target=target, hops=hops, success=False)
        current = source
        seen = {source}
        while current != owner:
            cur_pk = self.progress_key(current, target)
            best: Optional[int] = None
            best_pk = None
            for cand in self.neighbors_of(current):
                if cand in avoid or cand in seen:
                    continue
                if cand == owner:
                    best = cand
                    break
                pk = self.progress_key(cand, target)
                if pk < cur_pk and (best_pk is None or pk < best_pk):
                    best, best_pk = cand, pk
            if best is None:
                # No live progressing neighbour: allow a live sideways hop
                # toward the owner (ring metric) before giving up.
                cur_ring = self.space.ring_distance(current, owner)
                for cand in self.neighbors_of(current):
                    if cand in avoid or cand in seen:
                        continue
                    if self.space.ring_distance(cand, owner) < cur_ring:
                        best = cand
                        break
            if best is None:
                return RouteResult(target=target, hops=hops, success=False)
            hops.append(best)
            seen.add(best)
            current = best
            if len(hops) > self.MAX_ROUTE_HOPS:
                return RouteResult(target=target, hops=hops, success=False)
        return RouteResult(target=target, hops=hops, success=True)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def state_size_stats(self) -> Dict[str, float]:
        """Mean/max routing-state size across members (the §2.3.2 claim of
        ``O(log N)`` memory overhead per node)."""
        sizes = [len(self.neighbors_of(int(k))) for k in self._keys]
        arr = np.asarray(sizes, dtype=np.float64)
        return {
            "mean": float(arr.mean()),
            "max": float(arr.max()),
            "min": float(arr.min()),
        }

"""Location management: the stationary-layer directory and registrations.

Two cooperating pieces implement §2.1/§2.3:

* :class:`LocationDirectory` — the "location information repository" the
  stationary layer forms.  A mobile node *publishes* its current address
  to the stationary node whose key is closest to its own (plus ``k − 1``
  replicas clustered around that key, per §2.3.2's availability rule);
  a *discovery* message routed to that key resolves the address.
* :class:`RegistrationManager` — the register/update bookkeeping of
  §2.3.1: which nodes are interested in which mobile node (``R(i)``),
  derived by default from overlay state replication ("X registers itself
  to nodes whose state-pairs are replicated in X").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..net.address import NetworkAddress
from ..overlay.base import Overlay
from ..overlay.keyspace import KeySpace
from ..sim.columnar import ExpiryHeap
from ..sim.metrics import MetricsRegistry
from ..sim.nodestats import NodeLoadLedger
from .node import BristleNode, RegistryEntry

__all__ = [
    "LocationRecord",
    "LocationDirectory",
    "RegistrationManager",
    "BatchPublishResult",
    "shared_multicast_hops",
]


def shared_multicast_hops(
    overlay: Overlay, holders: Iterable[int], entry: Optional[int] = None
) -> int:
    """Overlay hops of one *shared* ring multicast visiting ``holders``.

    The per-holder baseline routes one full overlay traversal per distinct
    holder (O(holders · log N) hops).  The shared multicast enters the
    stationary layer once and the batched update then travels
    holder-to-holder around the ring: ``entry → first holder`` in ring
    order, then one short leg between each pair of consecutive distinct
    holders — holders cluster around record owners, so the legs are
    near-neighbour routes and the whole batch costs roughly one traversal
    plus O(holders) short legs.

    ``Overlay.route`` is side-effect-free (no metrics, no state), so this
    is pure message accounting; the directory contents are unaffected.
    Returns the total overlay hop count.
    """
    hs = sorted({int(h) for h in holders})
    if not hs:
        return 0
    start = int(entry) if entry is not None else hs[0]
    pos = int(np.searchsorted(np.asarray(hs, dtype=np.uint64), start))
    ordered = [hs[(pos + j) % len(hs)] for j in range(len(hs))]
    hops = 0
    if ordered[0] != start:
        hops += overlay.route(start, ordered[0]).hop_count
    for a, b in zip(ordered, ordered[1:]):
        hops += overlay.route(a, b).hop_count
    return hops


@dataclasses.dataclass
class LocationRecord:
    """One published binding: mobile key → address, with lease metadata."""

    key: int
    addr: NetworkAddress
    published_at: float
    ttl: float

    def fresh(self, now: float) -> bool:
        """Lease still valid at ``now``."""
        return now <= self.published_at + self.ttl


@dataclasses.dataclass
class BatchPublishResult:
    """Outcome of one :meth:`LocationDirectory.publish_many` call.

    Attributes
    ----------
    holders:
        mobile key → the stationary holders now storing its record (the
        same value :meth:`LocationDirectory.publish` returns per key).
    holder_batches:
        stationary holder → the batch keys it received.  Each entry is one
        *message*: the batched path sends a holder a single update carrying
        every co-hosted record it is responsible for, instead of one
        message per record.
    """

    holders: Dict[int, List[int]]
    holder_batches: Dict[int, List[int]]

    @property
    def num_records(self) -> int:
        """Records published in the batch (K)."""
        return len(self.holders)

    @property
    def distinct_holders(self) -> int:
        """Stationary nodes contacted — one batched message each."""
        return len(self.holder_batches)

    @property
    def message_count(self) -> int:
        """Update messages the batch costs (one per distinct holder),
        versus ``sum(len(h) for h in holders.values())`` for the per-key
        baseline."""
        return len(self.holder_batches)


class LocationDirectory:
    """Distributed location store over the stationary layer.

    The directory maps each *stationary holder* to the records it stores.
    Holder selection follows the HS-P2P placement rule: the record for key
    ``k`` lives on the stationary node owning ``k`` plus the next closest
    stationary keys, ``replication`` in total (§2.3.2: "a data item ...
    can simply be replicated to k nodes clustered with the hash keys
    closest to the one represented the data item").
    """

    def __init__(
        self,
        space: KeySpace,
        stationary_overlay: Overlay,
        replication: int = 3,
        ledger: Optional["NodeLoadLedger"] = None,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.space = space
        self.overlay = stationary_overlay
        self.replication = replication
        #: Optional per-node load ledger; when set, every stored replica
        #: charges its holder one ``registrations`` unit (§2.3.1 update
        #: fan-in) so manifests can report who carries the directory.
        self.ledger = ledger
        # holder key -> {mobile key -> record}
        self._stores: Dict[int, Dict[int, LocationRecord]] = {}
        # mobile key -> holders that actually store its record right now.
        # This is the withdrawal index: ``holders_for`` recomputed later may
        # name a *different* holder set once the stationary membership has
        # churned, so removal must consult where records really live.
        self._holders_by_key: Dict[int, Tuple[int, ...]] = {}
        #: Min-expiry index (shared kernel with the columnar store): lease
        #: expiry pops the overdue prefix in O(expired · log K) instead of
        #: the O(total records) ``fresh(now)`` sweep it replaces.
        self._expiry_heap = ExpiryHeap()
        self.publish_count = 0
        self.batch_publish_count = 0
        self.resolve_count = 0

    # ------------------------------------------------------------------
    # Holder selection
    # ------------------------------------------------------------------
    def _holders_near(self, owner: int, idx: int) -> List[int]:
        """Holder set for a record owned by ``owner`` at sorted index
        ``idx``: the owner plus its ring neighbours, alternately
        right/left, ``replication`` holders total (bounded by layer size).
        """
        keys = self.overlay.keys
        n = int(keys.size)
        count = min(self.replication, n)
        holders = [owner]
        step = 1
        while len(holders) < count:
            right = int(keys[(idx + step) % n])
            if right not in holders:
                holders.append(right)
            if len(holders) >= count:
                break
            left = int(keys[(idx - step) % n])
            if left not in holders:
                holders.append(left)
            step += 1
        return holders

    def holders_for(self, key: int) -> List[int]:
        """The stationary nodes storing the record for ``key``.

        The owner plus its ring neighbours, ``replication`` holders total
        (bounded by the layer size).
        """
        owner = self.overlay.owner_of(key)
        idx = int(np.searchsorted(self.overlay.keys, owner))
        return self._holders_near(owner, idx)

    def holders_for_many(self, keys: Iterable[int]) -> Dict[int, List[int]]:
        """Holder sets for many keys at once (batched counterpart of
        :meth:`holders_for`).

        Keys are grouped by responsible owner — the owner lookup rides the
        overlay's warm ``owner_of`` memo, the owner indices are resolved
        with a single vectorised ``searchsorted``, and the replica
        expansion runs once per *distinct* owner rather than once per key.
        Co-hosted keys with a shared owner therefore cost O(distinct
        owners), not O(K).
        """
        key_list = [int(k) for k in keys]
        owner_of = self.overlay.owner_of
        owners = {k: owner_of(k) for k in key_list}
        distinct = sorted(set(owners.values()))
        if not distinct:
            return {}
        idxs = np.searchsorted(self.overlay.keys, np.asarray(distinct, dtype=np.uint64))
        per_owner = {
            o: self._holders_near(o, int(i)) for o, i in zip(distinct, idxs)
        }
        return {k: list(per_owner[owners[k]]) for k in key_list}

    # ------------------------------------------------------------------
    # Publish / resolve
    # ------------------------------------------------------------------
    def _place(self, key: int, record: LocationRecord, holders: List[int]) -> None:
        """Store ``record`` at ``holders`` and retire stale replicas.

        A republish after stationary churn may target a different holder
        set; replicas left behind on former holders are removed here so a
        record never outlives its key's current placement.
        """
        previous = self._holders_by_key.get(key)
        if previous is not None:
            current = set(holders)
            for h in previous:
                if h not in current:
                    self._stores.get(h, {}).pop(key, None)
        for h in holders:
            self._stores.setdefault(h, {})[key] = record
        self._holders_by_key[key] = tuple(holders)
        self._expiry_heap.push(record.published_at + record.ttl, key)
        if self.ledger is not None:
            self.ledger.add_many("registrations", holders)

    def publish(self, key: int, addr: NetworkAddress, now: float, ttl: float) -> List[int]:
        """Store ``key → addr`` at every holder; returns the holder keys."""
        record = LocationRecord(key=key, addr=addr, published_at=now, ttl=ttl)
        holders = self.holders_for(key)
        self._place(key, record, holders)
        self.publish_count += 1
        return holders

    def publish_many(
        self,
        updates: Mapping[int, NetworkAddress],
        now: float,
        ttl: float,
    ) -> BatchPublishResult:
        """Store ``key → addr`` for every entry of ``updates`` in one batch.

        The directory state afterwards is bit-identical to ``len(updates)``
        sequential :meth:`publish` calls at the same virtual time; the
        difference is message accounting — records sharing a stationary
        holder travel in one update message, so a K-record batch costs one
        message per *distinct* holder (see
        :attr:`BatchPublishResult.message_count`) instead of
        ``K × replication``.
        """
        items = sorted((int(k), addr) for k, addr in updates.items())
        holders_map = self.holders_for_many(k for k, _ in items)
        holder_batches: Dict[int, List[int]] = {}
        for key, addr in items:
            record = LocationRecord(key=key, addr=addr, published_at=now, ttl=ttl)
            holders = holders_map[key]
            self._place(key, record, holders)
            for h in holders:
                holder_batches.setdefault(h, []).append(key)
            self.publish_count += 1
        self.batch_publish_count += 1
        return BatchPublishResult(holders=holders_map, holder_batches=holder_batches)

    def resolve(self, key: int, now: float) -> Optional[NetworkAddress]:
        """Look up the freshest record for ``key`` among its holders."""
        self.resolve_count += 1
        best: Optional[LocationRecord] = None
        for h in self.holders_for(key):
            rec = self._stores.get(h, {}).get(key)
            if rec is not None and rec.fresh(now):
                if best is None or rec.published_at > best.published_at:
                    best = rec
        return best.addr if best is not None else None

    def resolve_at(self, holder: int, key: int, now: float) -> Optional[NetworkAddress]:
        """Look up ``key`` at one specific holder (used when the discovery
        route terminates at a replica rather than the primary owner)."""
        rec = self._stores.get(holder, {}).get(key)
        if rec is not None and rec.fresh(now):
            return rec.addr
        return None

    def withdraw(self, key: int) -> int:
        """Remove all records for ``key`` (the node left the system).

        Removal targets the holders that *actually store* the record (the
        index maintained by publish/rebalance), not ``holders_for(key)``
        recomputed at withdrawal time: stationary churn between publish and
        withdraw can re-home ownership, and recomputing would leave the
        record alive on its former holders forever.  Returns the number of
        replicas removed.
        """
        removed = 0
        holders = self._holders_by_key.pop(key, None)
        if holders is None:
            # Not published through this directory (or already withdrawn):
            # sweep every store so no replica can survive regardless.
            for recs in self._stores.values():
                if recs.pop(key, None) is not None:
                    removed += 1
            return removed
        for h in holders:
            if self._stores.get(h, {}).pop(key, None) is not None:
                removed += 1
        return removed

    def expire_leases(self, now: float) -> List[int]:
        """Drop every record whose lease lapsed before ``now``.

        Pops the overdue prefix of the min-expiry heap — O(expired · log K)
        — and validates each entry against the live record table (lazy
        deletion: a re-published or withdrawn key leaves a stale heap entry
        behind, recognised by a missing record or a different expiry).
        Returns the expired keys, ascending — bit-identical to the columnar
        store's sorted-expiry prefix sweep.
        """
        expired: List[int] = []
        for expiry, key in self._expiry_heap.pop_expired(now):
            holders = self._holders_by_key.get(key)
            if holders is None:
                continue  # withdrawn since the entry was pushed
            record = None
            for h in holders:
                record = self._stores.get(h, {}).get(key)
                if record is not None:
                    break
            if record is None or record.published_at + record.ttl != expiry:
                continue  # re-published since; a newer heap entry covers it
            for h in holders:
                self._stores.get(h, {}).pop(key, None)
            self._holders_by_key.pop(key, None)
            expired.append(key)
        return sorted(expired)

    def records_at(self, holder: int) -> Dict[int, LocationRecord]:
        """All records a holder currently stores (the Figure-3 notion of
        per-node *responsibility*)."""
        return dict(self._stores.get(holder, {}))

    def holder_load(self) -> Dict[int, int]:
        """record count per stationary holder — responsibility measured."""
        return {h: len(recs) for h, recs in self._stores.items()}

    def rebalance_after_membership_change(
        self, all_keys: Optional[Iterable[int]], now: float
    ) -> None:
        """Re-place every record on the holders implied by the current
        stationary membership (called after stationary churn).

        Only the freshest replica of each key survives, and only if

        * its lease is still valid at ``now`` — an expired record must not
          be resurrected with a new placement, and
        * its key appears in ``all_keys``, the keys still live in the
          system (``None`` skips this pruning when the caller cannot
          enumerate them) — records for departed keys are dropped rather
          than endlessly re-replicated.
        """
        live = None if all_keys is None else {int(k) for k in all_keys}
        existing: Dict[int, LocationRecord] = {}
        for recs in self._stores.values():
            for k, rec in recs.items():
                if live is not None and k not in live:
                    continue
                if not rec.fresh(now):
                    continue
                cur = existing.get(k)
                if cur is None or rec.published_at > cur.published_at:
                    existing[k] = rec
        self._stores.clear()
        self._holders_by_key.clear()
        # Every surviving record is re-placed below (re-pushing its expiry),
        # so the heap can drop its accumulated stale entries wholesale.
        self._expiry_heap.clear()
        holders_map = self.holders_for_many(sorted(existing))
        for k in sorted(existing):
            self._place(k, existing[k], holders_map[k])

    def snapshot(self) -> Tuple[tuple, ...]:
        """Canonical state: (key, holder, router, port, epoch, published,
        ttl) rows sorted by (key, holder) — the parity contract shared with
        ``ColumnarDirectory.snapshot``."""
        rows = []
        for holder, recs in self._stores.items():
            for key, rec in recs.items():
                rows.append(
                    (
                        int(key),
                        int(holder),
                        int(rec.addr.router),
                        int(rec.addr.port),
                        int(rec.addr.epoch),
                        float(rec.published_at),
                        float(rec.ttl),
                    )
                )
        rows.sort()
        return tuple(rows)


class RegistrationManager:
    """Register / unregister bookkeeping (§2.3.1).

    The default interest relation mirrors the paper: a node X registers to
    the mobile nodes whose state-pairs X replicates — i.e. to its mobile
    overlay neighbours.  ``R(Y)`` is then the reverse-neighbour set of Y,
    of expected size O((M/N)·log N)·(N/M) ... = O(log N) per mobile node.
    """

    def __init__(
        self,
        nodes: Dict[int, BristleNode],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._nodes = nodes
        self._metrics = metrics
        self.registration_count = 0

    def register(self, registrant: int, target: int, now: float = 0.0) -> bool:
        """``registrant`` declares interest in ``target``'s movement.

        Idempotent: re-registering an existing interest (e.g. when
        ``register_from_overlay`` re-runs after churn repair) refreshes the
        entry's timestamp/capacity in place and is *not* counted as a new
        registration.  Returns True when the registration is new.
        """
        reg = self._nodes[registrant]
        tgt = self._nodes[target]
        is_new = registrant not in tgt.registry
        tgt.register(
            RegistryEntry(key=registrant, capacity=reg.capacity, registered_at=now)
        )
        reg.subscriptions.add(target)
        if not is_new:
            if self._metrics is not None:
                self._metrics.counter("op.register.refreshed").inc()
            return False
        self.registration_count += 1
        if self._metrics is not None:
            self._metrics.counter("op.register.count").inc()
        return True

    def unregister(self, registrant: int, target: int) -> None:
        """Withdraw ``registrant``'s interest in ``target``."""
        self._nodes[target].unregister(registrant)
        self._nodes[registrant].subscriptions.discard(target)
        if self._metrics is not None:
            self._metrics.counter("op.unregister.count").inc()

    def register_from_overlay(self, overlay: Overlay, *, mobile_only: bool = True) -> int:
        """Derive registrations from overlay state replication.

        For every member X and every neighbour Y in X's routing state, X
        registers to Y (when ``mobile_only``, only to mobile Y — §2.3.1:
        "X can register itself to those mobile nodes only").  Returns the
        number of *new* registrations issued — re-running after churn
        repair refreshes existing interests without double-counting them.
        """
        issued = 0
        for key in overlay.keys:
            x = int(key)
            for y in overlay.neighbors_of(x):
                tgt = self._nodes.get(y)
                if tgt is None:
                    continue
                if mobile_only and not tgt.mobile:
                    continue
                if self.register(x, y):
                    issued += 1
        return issued

    def registry_sizes(self, *, mobile_only: bool = True) -> List[int]:
        """|R(i)| for every (mobile) node — the §2.3.1 scaling claim."""
        out = []
        for node in self._nodes.values():
            if mobile_only and not node.mobile:
                continue
            out.append(len(node.registry))
        return out

"""Location management: the stationary-layer directory and registrations.

Two cooperating pieces implement §2.1/§2.3:

* :class:`LocationDirectory` — the "location information repository" the
  stationary layer forms.  A mobile node *publishes* its current address
  to the stationary node whose key is closest to its own (plus ``k − 1``
  replicas clustered around that key, per §2.3.2's availability rule);
  a *discovery* message routed to that key resolves the address.
* :class:`RegistrationManager` — the register/update bookkeeping of
  §2.3.1: which nodes are interested in which mobile node (``R(i)``),
  derived by default from overlay state replication ("X registers itself
  to nodes whose state-pairs are replicated in X").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..net.address import NetworkAddress
from ..overlay.base import Overlay
from ..overlay.keyspace import KeySpace
from ..sim.metrics import MetricsRegistry
from .node import BristleNode, RegistryEntry

__all__ = ["LocationRecord", "LocationDirectory", "RegistrationManager"]


@dataclasses.dataclass
class LocationRecord:
    """One published binding: mobile key → address, with lease metadata."""

    key: int
    addr: NetworkAddress
    published_at: float
    ttl: float

    def fresh(self, now: float) -> bool:
        """Lease still valid at ``now``."""
        return now <= self.published_at + self.ttl


class LocationDirectory:
    """Distributed location store over the stationary layer.

    The directory maps each *stationary holder* to the records it stores.
    Holder selection follows the HS-P2P placement rule: the record for key
    ``k`` lives on the stationary node owning ``k`` plus the next closest
    stationary keys, ``replication`` in total (§2.3.2: "a data item ...
    can simply be replicated to k nodes clustered with the hash keys
    closest to the one represented the data item").
    """

    def __init__(self, space: KeySpace, stationary_overlay: Overlay, replication: int = 3) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.space = space
        self.overlay = stationary_overlay
        self.replication = replication
        # holder key -> {mobile key -> record}
        self._stores: Dict[int, Dict[int, LocationRecord]] = {}
        self.publish_count = 0
        self.resolve_count = 0

    # ------------------------------------------------------------------
    # Holder selection
    # ------------------------------------------------------------------
    def holders_for(self, key: int) -> List[int]:
        """The stationary nodes storing the record for ``key``.

        The owner plus its ring neighbours, ``replication`` holders total
        (bounded by the layer size).
        """
        keys = self.overlay.keys
        n = int(keys.size)
        count = min(self.replication, n)
        owner = self.overlay.owner_of(key)
        idx = int(np.searchsorted(keys, owner))
        # Expand alternately right/left around the owner for "clustered"
        # replicas.
        holders = [owner]
        step = 1
        while len(holders) < count:
            right = int(keys[(idx + step) % n])
            if right not in holders:
                holders.append(right)
            if len(holders) >= count:
                break
            left = int(keys[(idx - step) % n])
            if left not in holders:
                holders.append(left)
            step += 1
        return holders

    # ------------------------------------------------------------------
    # Publish / resolve
    # ------------------------------------------------------------------
    def publish(self, key: int, addr: NetworkAddress, now: float, ttl: float) -> List[int]:
        """Store ``key → addr`` at every holder; returns the holder keys."""
        record = LocationRecord(key=key, addr=addr, published_at=now, ttl=ttl)
        holders = self.holders_for(key)
        for h in holders:
            self._stores.setdefault(h, {})[key] = record
        self.publish_count += 1
        return holders

    def resolve(self, key: int, now: float) -> Optional[NetworkAddress]:
        """Look up the freshest record for ``key`` among its holders."""
        self.resolve_count += 1
        best: Optional[LocationRecord] = None
        for h in self.holders_for(key):
            rec = self._stores.get(h, {}).get(key)
            if rec is not None and rec.fresh(now):
                if best is None or rec.published_at > best.published_at:
                    best = rec
        return best.addr if best is not None else None

    def resolve_at(self, holder: int, key: int, now: float) -> Optional[NetworkAddress]:
        """Look up ``key`` at one specific holder (used when the discovery
        route terminates at a replica rather than the primary owner)."""
        rec = self._stores.get(holder, {}).get(key)
        if rec is not None and rec.fresh(now):
            return rec.addr
        return None

    def withdraw(self, key: int) -> None:
        """Remove all records for ``key`` (the node left the system)."""
        for h in self.holders_for(key):
            self._stores.get(h, {}).pop(key, None)

    def records_at(self, holder: int) -> Dict[int, LocationRecord]:
        """All records a holder currently stores (the Figure-3 notion of
        per-node *responsibility*)."""
        return dict(self._stores.get(holder, {}))

    def holder_load(self) -> Dict[int, int]:
        """record count per stationary holder — responsibility measured."""
        return {h: len(recs) for h, recs in self._stores.items()}

    def rebalance_after_membership_change(self, all_keys: Iterable[int], now: float) -> None:
        """Re-place every record on the holders implied by the current
        stationary membership (called after stationary churn)."""
        existing: Dict[int, LocationRecord] = {}
        for recs in self._stores.values():
            for k, rec in recs.items():
                cur = existing.get(k)
                if cur is None or rec.published_at > cur.published_at:
                    existing[k] = rec
        self._stores.clear()
        for k, rec in existing.items():
            for h in self.holders_for(k):
                self._stores.setdefault(h, {})[k] = rec


class RegistrationManager:
    """Register / unregister bookkeeping (§2.3.1).

    The default interest relation mirrors the paper: a node X registers to
    the mobile nodes whose state-pairs X replicates — i.e. to its mobile
    overlay neighbours.  ``R(Y)`` is then the reverse-neighbour set of Y,
    of expected size O((M/N)·log N)·(N/M) ... = O(log N) per mobile node.
    """

    def __init__(
        self,
        nodes: Dict[int, BristleNode],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._nodes = nodes
        self._metrics = metrics
        self.registration_count = 0

    def register(self, registrant: int, target: int, now: float = 0.0) -> None:
        """``registrant`` declares interest in ``target``'s movement."""
        reg = self._nodes[registrant]
        tgt = self._nodes[target]
        tgt.register(
            RegistryEntry(key=registrant, capacity=reg.capacity, registered_at=now)
        )
        reg.subscriptions.add(target)
        self.registration_count += 1
        if self._metrics is not None:
            self._metrics.counter("op.register.count").inc()

    def unregister(self, registrant: int, target: int) -> None:
        """Withdraw ``registrant``'s interest in ``target``."""
        self._nodes[target].unregister(registrant)
        self._nodes[registrant].subscriptions.discard(target)
        if self._metrics is not None:
            self._metrics.counter("op.unregister.count").inc()

    def register_from_overlay(self, overlay: Overlay, *, mobile_only: bool = True) -> int:
        """Derive registrations from overlay state replication.

        For every member X and every neighbour Y in X's routing state, X
        registers to Y (when ``mobile_only``, only to mobile Y — §2.3.1:
        "X can register itself to those mobile nodes only").  Returns the
        number of registrations issued.
        """
        issued = 0
        for key in overlay.keys:
            x = int(key)
            for y in overlay.neighbors_of(x):
                tgt = self._nodes.get(y)
                if tgt is None:
                    continue
                if mobile_only and not tgt.mobile:
                    continue
                self.register(x, y)
                issued += 1
        return issued

    def registry_sizes(self, *, mobile_only: bool = True) -> List[int]:
        """|R(i)| for every (mobile) node — the §2.3.1 scaling claim."""
        out = []
        for node in self._nodes.values():
            if mobile_only and not node.mobile:
                continue
            out.append(len(node.registry))
        return out

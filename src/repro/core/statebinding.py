"""Early and late state binding over TTL leases (§2.3.2).

Every state a mobile-layer node caches is leased.  Under **early
binding** both sides refresh proactively: the mobile node periodically
publishes its state to its registry nodes, and each registry node
periodically re-registers.  Under **late binding** a registry node that
missed the periodic advertisement (because it was itself moving) resolves
the address reactively with a discovery message.

:class:`BindingPolicy` drives both behaviours against a simulation engine
and records how many refreshes/discoveries each policy costs — the
trade-off the Table-1 "performance vs reliability" row captures.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Set

from ..sim.engine import Engine
from .bristle import BristleNetwork
from .ldt import LDTree

__all__ = ["BindingPolicy", "EarlyBinding", "LateBinding", "BindingStats"]


@dataclasses.dataclass
class BindingStats:
    """Message accounting for a binding policy run."""

    advertisements: int = 0
    registrations: int = 0
    discoveries: int = 0
    publishes: int = 0

    @property
    def total_messages(self) -> int:
        return (
            self.advertisements
            + self.registrations
            + self.discoveries
            + self.publishes
        )


class BindingPolicy:
    """Base: owns the stats and the refresh plumbing."""

    def __init__(self, net: BristleNetwork, engine: Engine) -> None:
        self.net = net
        self.engine = engine
        self.stats = BindingStats()
        self._cancels: List[Callable[[], None]] = []

    def start(self) -> None:
        """Install the policy's periodic behaviour on the engine."""
        raise NotImplementedError

    def stop(self) -> None:
        """Cancel the policy's periodic work."""
        for cancel in self._cancels:
            cancel()
        self._cancels.clear()

    def lookup(self, registrant: int, mobile_key: int) -> bool:
        """A registry node needs the mobile node's address *now*.

        Returns True when the locally-cached state suffices, False when
        the policy had to (or could not) take remedial action.
        """
        raise NotImplementedError


class EarlyBinding(BindingPolicy):
    """Proactive refresh on both sides.

    "Each mobile periodically publishes its state to the registry nodes
    and each registry node also periodically registers itself to the
    mobile node it interested in." (§2.3.2)

    ``host_groups`` optionally declares sets of co-hosted mobile keys (the
    resources one physical host carries).  Grouped keys refresh through
    the batched path: one :meth:`LocationDirectory.publish_many` per group
    (one message per distinct holder), one cached union-LDT wave, and one
    re-registration message per distinct registrant — O(K + log N) per
    period instead of O(K · log N).  Ungrouped keys keep the per-key path,
    with the dissemination tree served from :meth:`BristleNetwork.ldt_for`
    so an unchanged registry costs no rebuild.

    ``shared_multicast`` switches the *accounting* of each grouped refresh
    from one message per distinct holder to the hops of one shared ring
    multicast (:func:`repro.core.location.shared_multicast_hops`): the
    batch enters the stationary layer once and travels holder-to-holder.
    Directory state is identical either way — only the message model
    changes.
    """

    def __init__(
        self,
        net: BristleNetwork,
        engine: Engine,
        *,
        host_groups: Optional[Sequence[Sequence[int]]] = None,
        shared_multicast: bool = False,
    ) -> None:
        super().__init__(net, engine)
        self.shared_multicast = bool(shared_multicast)
        self.host_groups: List[List[int]] = (
            [sorted({int(k) for k in g}) for g in host_groups]
            if host_groups is not None
            else []
        )
        grouped: Set[int] = set()
        for g in self.host_groups:
            if not g:
                raise ValueError("empty host group")
            dup = grouped.intersection(g)
            if dup:
                raise ValueError(f"keys in more than one host group: {sorted(dup)}")
            grouped.update(g)
        self._grouped = grouped

    def start(self) -> None:
        """Install the periodic two-sided refresh."""
        period = self.net.config.refresh_period
        self._cancels.append(
            self.engine.schedule_every(period, self._refresh_all, label="early-binding")
        )

    def _refresh_all(self) -> None:
        net = self.net
        net.now = self.engine.now
        for group in self.host_groups:
            # Departed members (leave_mobile_node) drop out of the group.
            live = [k for k in group if k in net.nodes]
            if live:
                self._refresh_group(live)
        ungrouped = [mk for mk in net.mobile_keys if mk not in self._grouped]
        # One columnar forest pass rebuilds every cache-missed tree for the
        # period; cache hits and trees are identical to per-key ldt_for.
        trees = net.ldt_for_many(
            [mk for mk in ungrouped if net.nodes[mk].registry]
        )
        for mk in ungrouped:
            self._refresh_one(mk, tree=trees.get(mk))

    def _refresh_one(self, mk: int, tree: Optional["LDTree"] = None) -> None:
        net = self.net
        node = net.nodes[mk]
        # §2.3.1 note (2): besides the LDT advertisement, the node
        # "also publishes its state to the location management layer"
        # so reactive discovery never sees an expired record.
        holders = net.directory.publish(
            mk, node.address, now=self.engine.now, ttl=net.config.state_ttl
        )
        self.stats.publishes += len(holders)
        if not node.registry:
            return
        # Mobile node advertises its state down the (cached) LDT — served
        # from the caller's batched ldt_for_many pass when present.
        if tree is None:
            tree = net.ldt_for(mk)
        self.stats.advertisements += tree.message_count
        for entry in node.registry_entries():
            registrant = net.nodes.get(entry.key)
            if registrant is None:
                continue
            # ...registry nodes' caches are renewed...
            st = registrant.state.get(mk)
            if st is None:
                from ..overlay.state import StatePair

                st = registrant.state.insert(
                    StatePair(key=mk, addr=node.address, ttl=net.config.state_ttl)
                )
            st.refresh(self.engine.now, addr=node.address, ttl=net.config.state_ttl)
            # ...and each registry node re-registers (one message each).
            self.stats.registrations += 1

    def _refresh_group(self, live: List[int]) -> None:
        net = self.net
        result = net.directory.publish_many(
            {k: net.nodes[k].address for k in live},
            now=self.engine.now,
            ttl=net.config.state_ttl,
        )
        if self.shared_multicast:
            # One shared ring multicast: entry traversal + holder legs.
            from .location import shared_multicast_hops

            self.stats.publishes += shared_multicast_hops(
                net.stationary_layer,
                result.holder_batches,
                entry=net.stationary_layer.owner_of(live[0]),
            )
        else:
            # Batched publish: one message per distinct stationary holder.
            self.stats.publishes += result.message_count
        with_registry = [k for k in live if net.nodes[k].registry]
        if not with_registry:
            return
        # One coalesced wave over the union of the group's registries.
        _, tree = net.ldt_for_group(live)
        self.stats.advertisements += tree.message_count
        group_set = set(live)
        refreshers: Set[int] = set()
        for mk in with_registry:
            node = net.nodes[mk]
            for entry in node.registry_entries():
                registrant = net.nodes.get(entry.key)
                if registrant is None:
                    continue
                st = registrant.state.get(mk)
                if st is None:
                    from ..overlay.state import StatePair

                    st = registrant.state.insert(
                        StatePair(key=mk, addr=node.address, ttl=net.config.state_ttl)
                    )
                st.refresh(
                    self.engine.now, addr=node.address, ttl=net.config.state_ttl
                )
                # Co-hosted registrants renew locally — no network message.
                if entry.key not in group_set:
                    refreshers.add(entry.key)
        # Each registrant re-registers once per period; one message renews
        # all of its co-hosted subscriptions.
        self.stats.registrations += len(refreshers)

    def lookup(self, registrant: int, mobile_key: int) -> bool:
        """True when the proactively-refreshed cache is usable."""
        st = self.net.nodes[registrant].state.get(mobile_key)
        return st is not None and st.is_resolved(self.engine.now)


class LateBinding(BindingPolicy):
    """Reactive resolution: no periodic advertisement; a registry node
    that finds its cached state expired issues a discovery (§2.3.2:
    "The registry node can thus issue a discovery message to the location
    management layer to resolve the network address of the mobile
    node.")."""

    def start(self) -> None:
        """Late binding installs no periodic work."""
        # Late binding installs no periodic work.
        return

    def lookup(self, registrant: int, mobile_key: int) -> bool:
        """Serve from cache, else resolve reactively via discovery."""
        net = self.net
        node = net.nodes[registrant]
        st = node.state.get(mobile_key)
        if st is not None and st.is_resolved(self.engine.now):
            return True
        disc = net.discover(registrant, mobile_key)
        self.stats.discoveries += 1
        if not disc.found:
            return False
        from ..overlay.state import StatePair

        if st is None:
            node.state.insert(
                StatePair(
                    key=mobile_key,
                    addr=disc.address,
                    ttl=net.config.state_ttl,
                    refreshed_at=self.engine.now,
                )
            )
        else:
            st.refresh(self.engine.now, addr=disc.address, ttl=net.config.state_ttl)
        return False

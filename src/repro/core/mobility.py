"""Mobility models: who moves, when, and where to.

The paper's evaluation treats movement abstractly (a mobile node changes
its network attachment point and must re-publish its location).  This
module provides the workload side: a Poisson-like per-node move process
driven by the simulation engine, and a one-shot "shuffle" used by the
batch experiments (move every mobile node once, then measure).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from ..sim.engine import Engine
from ..sim.events import EventKind
from .bristle import BristleNetwork, MoveReport

__all__ = ["MobilityProcess", "shuffle_all_mobile"]


@dataclasses.dataclass
class MobilityProcess:
    """Exponential-interarrival movement for every mobile node.

    Parameters
    ----------
    net:
        The Bristle network whose mobile nodes move.
    engine:
        Simulation engine driving virtual time.
    rate:
        Per-node moves per unit virtual time (λ of the exponential
        inter-move distribution).
    on_move:
        Optional observer invoked with each :class:`MoveReport`.
    advertise:
        Whether moves trigger LDT advertisement (Bristle behaviour) or
        only the stationary-layer publish.
    """

    net: BristleNetwork
    engine: Engine
    rate: float
    on_move: Optional[Callable[[MoveReport], None]] = None
    advertise: bool = True
    moves_performed: int = dataclasses.field(default=0, init=False)
    _stopped: bool = dataclasses.field(default=False, init=False)

    def start(self) -> None:
        """Schedule the first move of every mobile node."""
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        for key in self.net.mobile_keys:
            self._schedule_next(key)

    def stop(self) -> None:
        """Stop generating new moves (already-queued ones are skipped)."""
        self._stopped = True

    def _schedule_next(self, key: int) -> None:
        delay = float(self.net.rng.stream("mobility.timing").exponential(1.0 / self.rate))
        self.engine.schedule_in(
            delay,
            lambda k=key: self._fire(k),
            kind=EventKind.CONTROL,
            label=f"move:{key:#x}",
        )

    def _fire(self, key: int) -> None:
        if self._stopped or key not in self.net.nodes:
            return
        self.net.now = self.engine.now
        report = self.net.move(key, advertise=self.advertise)
        self.moves_performed += 1
        if self.on_move is not None:
            self.on_move(report)
        self._schedule_next(key)


def shuffle_all_mobile(
    net: BristleNetwork, *, advertise: bool = False, publish: bool = True
) -> List[MoveReport]:
    """Move every mobile node once to a fresh random attachment point.

    The batch experiments (Figure 7) use this to put the system in the
    "all caches cold" worst case before sampling routes.
    """
    reports = []
    for key in list(net.mobile_keys):
        reports.append(net.move(key, advertise=advertise, publish=publish))
    return reports

"""The Bristle network facade — the paper's two-layer architecture (§2.1).

:class:`BristleNetwork` wires every substrate together:

* an underlay (transit-stub topology + placement + shortest-path oracle);
* the **stationary layer** — an HS-P2P over the stationary nodes, acting
  as the location-information repository;
* the **mobile layer** — an HS-P2P over *all* nodes, whose cached
  addresses for mobile peers may go stale;
* naming (clustered or scrambled key assignment, §3);
* the location directory, registrations and LDTs of §2.3.

The facade exposes the paper's operations: :meth:`move` (a mobile node
changes attachment point, publishes its new address and advertises down
its LDT), :meth:`discover` (reactive state discovery through the
stationary layer) and — via :mod:`repro.core.routing` — Figure-2 routing
with address resolution.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import sanitize as _sanitize
from ..net.address import NetworkAddress
from ..net.placement import Placement
from ..net.shortest_path import PathOracle
from ..net.transit_stub import (
    TransitStubTopology,
    generate_transit_stub,
    params_for_router_count,
)
from ..net.underlay import UnderlayBundle
from ..overlay.base import Overlay
from ..overlay.factory import make_overlay
from ..overlay.keyspace import KeySpace
from ..sim.rng import RngStreams
from ..sim.telemetry import Telemetry, active_telemetry
from .config import BristleConfig
from .ldt import LDTMember, LDTree, build_ldt, merge_registry_members
from .ldt_forest import ForestSpec, build_ldt_forest
from .location import (
    BatchPublishResult,
    LocationDirectory,
    RegistrationManager,
    shared_multicast_hops,
)
from .naming import make_naming
from .node import BristleNode

__all__ = ["BristleNetwork", "MoveReport", "BatchMoveReport"]


@dataclasses.dataclass
class MoveReport:
    """Accounting for one mobile-node move.

    Attributes
    ----------
    key:
        The node that moved.
    new_address:
        Its address after the move.
    publish_holders:
        Stationary nodes that received the location update.
    publish_hops:
        Overlay hops taken to publish into the stationary layer.
    ldt:
        The advertisement tree used to notify registered nodes (``None``
        when the node has no registrants or advertisement was disabled).
    """

    key: int
    new_address: NetworkAddress
    publish_holders: List[int]
    publish_hops: int
    ldt: Optional[LDTree]

    @property
    def ldt_messages(self) -> int:
        return self.ldt.message_count if self.ldt is not None else 0

    @property
    def ldt_depth(self) -> int:
        return self.ldt.depth if self.ldt is not None else 0

    @property
    def total_messages(self) -> int:
        """Publish messages (one per holder) plus LDT advertisements."""
        return len(self.publish_holders) + self.ldt_messages


@dataclasses.dataclass
class BatchMoveReport:
    """Accounting for one batched multi-resource movement (§2.3.1 update,
    amortised across a mobile host's co-hosted keys).

    Attributes
    ----------
    keys:
        The co-hosted mobile keys that moved together.
    new_addresses:
        key → address after the move (same router, per-key ports/epochs).
    publish:
        The batched directory update (``None`` when publishing was
        disabled); one message per *distinct* stationary holder.
    publish_hops:
        Overlay hops for the single batched publish into the stationary
        layer (the per-key baseline pays this once per key).
    multicast_hops:
        Overlay hops of the shared ring multicast that delivers the batch
        to its distinct holders — one traversal into the layer plus
        holder-to-holder legs (``shared_multicast_hops``), versus one full
        traversal per distinct holder on the per-holder path.
    ldt_root:
        The representative key that ran the coalesced advertisement.
    ldt:
        The single union dissemination tree (``None`` when no key has
        registrants or advertisement was disabled).
    """

    keys: List[int]
    new_addresses: Dict[int, NetworkAddress]
    publish: Optional[BatchPublishResult]
    publish_hops: int
    ldt_root: Optional[int]
    ldt: Optional[LDTree]
    multicast_hops: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.keys)

    @property
    def publish_messages(self) -> int:
        """Directory update messages (one per distinct holder)."""
        return self.publish.message_count if self.publish is not None else 0

    @property
    def ldt_messages(self) -> int:
        return self.ldt.message_count if self.ldt is not None else 0

    @property
    def ldt_depth(self) -> int:
        return self.ldt.depth if self.ldt is not None else 0

    @property
    def total_messages(self) -> int:
        """Batched publish messages plus the single LDT wave —
        O(K + log N) where the per-key baseline pays O(K · log N)."""
        return self.publish_messages + self.ldt_messages


class BristleNetwork:
    """A fully-built Bristle deployment.

    Parameters
    ----------
    config:
        All protocol tunables.
    num_stationary / num_mobile:
        Population sizes (N = sum; M = num_mobile).
    topology:
        An existing underlay, or ``None`` to generate one.
    underlay:
        A prebuilt :class:`~repro.net.underlay.UnderlayBundle` whose
        topology *and* path oracle this network shares (sweep drivers use
        this so many points reuse one Dijkstra cache).  Mutually exclusive
        with ``topology``/``router_count``; placement stays per-network.
    router_count:
        When generating, approximate underlay size (default scales with
        the population).
    capacities:
        Optional explicit capacity per node key; default draws uniform
        integer capacities in ``[1, max_capacity]``.
    max_capacity:
        Upper bound for the default capacity draw (Fig 8's ``MAX``).
    """

    def __init__(
        self,
        config: BristleConfig,
        num_stationary: int,
        num_mobile: int,
        *,
        topology: Optional[TransitStubTopology] = None,
        underlay: Optional[UnderlayBundle] = None,
        router_count: Optional[int] = None,
        capacities: Optional[Dict[int, float]] = None,
        max_capacity: int = 15,
        naming_scheme=None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if num_stationary < 2:
            raise ValueError("need at least two stationary nodes")
        if num_mobile < 0:
            raise ValueError("num_mobile must be non-negative")
        self.config = config
        self.rng = RngStreams(config.seed)
        # Telemetry: an explicit bundle, else the ambient session (opened
        # by the CLI's --trace/--metrics/--profile flags), else a private
        # tracing-disabled bundle so call sites never need a None check.
        tel = telemetry if telemetry is not None else active_telemetry()
        self.telemetry = tel if tel is not None else Telemetry()
        self.space = KeySpace(bits=config.key_bits, digit_bits=config.digit_bits)
        self.num_stationary = num_stationary
        self.num_mobile = num_mobile
        self.now = 0.0  # simple virtual clock for lease bookkeeping

        # --- naming -------------------------------------------------------
        # ``naming_scheme`` overrides the config-selected scheme (used by
        # the band-placement ablation, which positions [L, U] explicitly).
        self.naming = (
            naming_scheme
            if naming_scheme is not None
            else make_naming(config.naming, self.space, num_stationary, num_mobile)
        )
        assignment = self.naming.assign(num_stationary, num_mobile, self.rng)
        self.stationary_keys: List[int] = sorted(assignment.stationary_keys)
        self.mobile_keys: List[int] = sorted(assignment.mobile_keys)

        # --- underlay -----------------------------------------------------
        if underlay is not None:
            if topology is not None or router_count is not None:
                raise ValueError(
                    "underlay= is mutually exclusive with topology=/router_count="
                )
            topology = underlay.topology
            self.oracle = underlay.oracle  # shared, stays warm across points
        else:
            if topology is None:
                total = num_stationary + num_mobile
                routers = (
                    router_count if router_count is not None else max(100, total // 4)
                )
                topology = generate_transit_stub(
                    params_for_router_count(routers), self.rng
                )
            self.oracle = PathOracle(topology.graph)
        self.topology = topology
        self.underlay = underlay
        self.placement = Placement(topology, self.rng)

        # --- nodes ----------------------------------------------------------
        cap_gen = self.rng.stream("capacities")
        self.nodes: Dict[int, BristleNode] = {}
        for key in self.stationary_keys + self.mobile_keys:
            if capacities is not None and key in capacities:
                cap = float(capacities[key])
            else:
                cap = float(cap_gen.integers(1, max_capacity + 1))
            node = BristleNode(
                key=key,
                mobile=key in set(self.mobile_keys),
                capacity=cap,
                space=self.space,
            )
            node.address = self.placement.attach(key)
            self.nodes[key] = node
        # Recompute mobile membership cheaply (set built once).
        self._mobile_set = set(self.mobile_keys)

        # --- overlays -------------------------------------------------------
        proximity = self.network_distance_between_keys
        capacity_fn = lambda k: self.nodes[k].capacity  # noqa: E731
        tracer = self.telemetry.tracer
        self.stationary_layer: Overlay = make_overlay(
            config.stationary_layer_overlay,
            self.space,
            proximity=None,  # stationary-layer tables are key-determined
            capacity=capacity_fn,
        )
        with tracer.span("overlay.build", layer="stationary", members=num_stationary):
            self.stationary_layer.build(self.stationary_keys)
        self.mobile_layer: Overlay = make_overlay(
            config.mobile_layer_overlay,
            self.space,
            proximity=None,
            capacity=capacity_fn,
        )
        with tracer.span(
            "overlay.build", layer="mobile", members=num_stationary + num_mobile
        ):
            self.mobile_layer.build(self.stationary_keys + self.mobile_keys)
        # Churn repairs report overlay.repairs / overlay.repaired_nodes here.
        self.stationary_layer.bind_metrics(self.telemetry.metrics)
        self.mobile_layer.bind_metrics(self.telemetry.metrics)
        if _sanitize.ACTIVE:
            _sanitize.check_overlay_consistency(self.stationary_layer)
            _sanitize.check_overlay_consistency(self.mobile_layer)
        self._proximity = proximity

        # --- location management ---------------------------------------------
        # Either backend: the object directory is the default (and the
        # parity oracle); ``config.columnar_directory`` swaps in the
        # struct-of-arrays store with bit-identical state evolution.
        if config.columnar_directory:
            from ..sim.columnar import ColumnarDirectory

            self.directory = ColumnarDirectory(
                self.space,
                self.stationary_layer,
                replication=config.replication,
                ledger=self.telemetry.nodeload,
            )
        else:
            self.directory = LocationDirectory(
                self.space,
                self.stationary_layer,
                replication=config.replication,
                ledger=self.telemetry.nodeload,
            )
        self.registrations = RegistrationManager(
            self.nodes, metrics=self.telemetry.metrics
        )
        # Pre-register the stationary population at zero load so the
        # ledger's imbalance statistics (Gini, max/mean) range over every
        # candidate holder, not just the nodes traffic happened to hit.
        self.telemetry.nodeload.register_nodes(self.stationary_keys)
        #: discovery relays served per stationary holder — the Table-1
        #: "infrastructure load" counter (comparable to Type B's per-agent
        #: packet counts).
        self.resolution_load: Dict[int, int] = {}
        # Cached dissemination trees (see :meth:`ldt_for`).  Each entry maps
        # a mobile key (or a co-hosted key group) to the fingerprint it was
        # built under plus the tree; a fingerprint mismatch triggers a
        # rebuild.  Moves never invalidate: trees depend on registries,
        # capacities and workloads, not addresses.
        self._ldt_cache: Dict[int, Tuple[tuple, LDTree]] = {}
        self._group_ldt_cache: Dict[Tuple[int, ...], Tuple[tuple, int, LDTree]] = {}
        # Every node (mobile ones included) starts published so discovery
        # succeeds from time zero.
        for key in self.mobile_keys:
            self.directory.publish(
                key, self.nodes[key].address, now=0.0, ttl=config.state_ttl
            )
        # Provenance note for the run manifest (seed, sizes, config).
        note = {
            "seed": config.seed,
            "num_stationary": num_stationary,
            "num_mobile": num_mobile,
            "naming": config.naming,
            "config": dataclasses.asdict(config),
        }
        if underlay is not None:
            note["underlay"] = {
                "seed": underlay.seed,
                "router_count": underlay.router_count,
            }
        self.telemetry.note_network(note)

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.num_stationary + self.num_mobile

    def is_mobile(self, key: int) -> bool:
        """True when ``key`` belongs to a mobile-layer-only node."""
        return key in self._mobile_set

    def node(self, key: int) -> BristleNode:
        """The node object for ``key`` (KeyError when absent)."""
        return self.nodes[key]

    def network_distance_between_keys(self, a: int, b: int) -> float:
        """Current underlay shortest-path weight between two nodes."""
        if a == b:
            return 0.0
        return self.oracle.distance(
            self.placement.router_of(a), self.placement.router_of(b)
        )

    def route_costs_between_keys(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> np.ndarray:
        """Underlay shortest-path weight for every ``(a, b)`` key pair.

        Vectorised counterpart of :meth:`network_distance_between_keys`:
        the pairs are mapped to attachment routers and charged through
        :meth:`PathOracle.route_costs` in one batched gather.
        """
        router = self.placement.router_of
        return self.oracle.route_costs(
            [(router(a), router(b)) for a, b in pairs]
        )

    @property
    def ldt_cost_oracle(self) -> "_KeyCostOracle":
        """Batched edge-cost oracle for :meth:`LDTree.edge_costs`.

        Duck-types both ``distance`` forms the tree accepts: calling it
        prices one key pair, while its ``route_costs`` prices a whole
        edge list through :meth:`route_costs_between_keys` in one
        multi-source Dijkstra gather.
        """
        return _KeyCostOracle(self)

    def prewarm_oracle(self, keys: Optional[Sequence[int]] = None) -> int:
        """Batch-compute oracle rows for the attachment routers of ``keys``
        (default: every node) — one multi-source Dijkstra call instead of
        one per source.  A sweep whose hop endpoints are all members then
        only ever reads the cache.  Returns the number of rows computed.
        """
        targets = keys if keys is not None else list(self.nodes)
        return self.oracle.prewarm(
            sorted({self.placement.router_of(k) for k in targets})
        )

    def registry_size_for(self, key: int) -> int:
        """Configured LDT registry size (⌈log₂ N⌉ by default)."""
        return self.config.effective_registry_size(self.num_nodes)

    # ------------------------------------------------------------------
    # Registration setup
    # ------------------------------------------------------------------
    def setup_registrations_from_overlay(self) -> int:
        """Populate every mobile node's ``R(i)`` from mobile-layer state
        replication (the §2.3.1 default interest relation)."""
        return self.registrations.register_from_overlay(self.mobile_layer)

    def setup_random_registrations(
        self,
        registry_size: Optional[int] = None,
        *,
        only_keys: Optional[Sequence[int]] = None,
    ) -> None:
        """Give every mobile node ``registry_size`` random registrants —
        the Figure-8 experimental setup (⌈log₂ N⌉ interested nodes).

        ``only_keys`` restricts the setup to those mobile nodes (used by
        experiments that sample a subset of trees).
        """
        size = registry_size if registry_size is not None else self.registry_size_for(0)
        all_keys = self.stationary_keys + self.mobile_keys
        targets = list(only_keys) if only_keys is not None else self.mobile_keys
        for mk in targets:
            pool = [k for k in all_keys if k != mk]
            chosen = self.rng.sample("registrations", pool, min(size, len(pool)))
            for c in chosen:
                self.registrations.register(c, mk, now=self.now)

    def setup_local_registrations(
        self,
        registry_size: Optional[int] = None,
        *,
        only_keys: Optional[Sequence[int]] = None,
    ) -> None:
        """Locality-aware registration (§4.3): each mobile node's
        registrants are the *network-closest* candidates, modelling the
        steady state after nodes "periodically re-perform joining
        operations to refresh ... registrations to those nodes it is
        likely interested in"."""
        size = registry_size if registry_size is not None else self.registry_size_for(0)
        all_keys = self.stationary_keys + self.mobile_keys
        routers = np.asarray([self.placement.router_of(k) for k in all_keys])
        targets = list(only_keys) if only_keys is not None else self.mobile_keys
        for mk in targets:
            my_router = self.placement.router_of(mk)
            dists = self.oracle.distances_from(my_router)[routers]
            order = np.argsort(dists, kind="stable")
            chosen: List[int] = []
            for idx in order:
                cand = all_keys[int(idx)]
                if cand == mk:
                    continue
                chosen.append(cand)
                if len(chosen) >= size:
                    break
            for c in chosen:
                self.registrations.register(c, mk, now=self.now)

    # ------------------------------------------------------------------
    # Mobility (update operation, §2.3.1)
    # ------------------------------------------------------------------
    def move(
        self,
        key: int,
        router: Optional[int] = None,
        *,
        advertise: bool = True,
        publish: bool = True,
    ) -> MoveReport:
        """Move mobile node ``key`` to a new attachment point.

        The node updates the stationary layer ("publish") and multicasts
        the new address down its LDT ("advertise"), per §2.1/§2.3.1.
        """
        node = self.nodes[key]
        if not node.mobile:
            raise ValueError(f"node {key} is stationary; only mobile nodes move")
        tel = self.telemetry
        sid = (
            tel.tracer.span_begin(self.now, "op.update", key=key)
            if tel.tracer.enabled
            else 0
        )
        new_addr = self.placement.move(key, router)
        node.address = new_addr
        node.moves += 1

        publish_holders: List[int] = []
        publish_hops = 0
        if publish:
            publish_holders = self.directory.publish(
                key, new_addr, now=self.now, ttl=self.config.state_ttl
            )
            # Publishing sends one message to the mover's stationary entry
            # point — which, being the stationary node closest to the
            # mover's key, is itself the record owner — plus the replica
            # fan-out counted in ``total_messages``.
            publish_hops = 1

        ldt: Optional[LDTree] = None
        if advertise and node.registry:
            ldt = self.build_ldt_for(key)
        report = MoveReport(
            key=key,
            new_address=new_addr,
            publish_holders=publish_holders,
            publish_hops=publish_hops,
            ldt=ldt,
        )
        m = tel.metrics
        m.counter("op.update.count").inc()
        m.counter("op.update.publish_messages").inc(len(publish_holders))
        m.histogram("op.update.total_messages").observe(report.total_messages)
        if ldt is not None:
            m.histogram("op.update.ldt_messages").observe(report.ldt_messages)
            m.histogram("op.update.ldt_depth").observe(report.ldt_depth)
        if sid:
            # Detailed accounting (tracing only — it costs oracle reads):
            # underlay cost of pushing the update to every record holder.
            publish_cost = sum(
                self.network_distance_between_keys(key, h) for h in publish_holders
            )
            m.histogram("op.update.path_cost").observe(publish_cost)
            tel.tracer.span_end(
                self.now,
                sid,
                holders=len(publish_holders),
                ldt_messages=report.ldt_messages,
                total_messages=report.total_messages,
                publish_cost=publish_cost,
            )
        return report

    def build_ldt_for(
        self, key: int, *, locality_tie_break: bool = False
    ) -> LDTree:
        """Construct the advertisement tree for mobile node ``key`` from
        its current registry (Fig 4).

        Stays on the sequential recursion — this is the parity oracle the
        forest builder is tested against; batch call sites go through
        :meth:`build_ldt_for_many`.
        """
        spec = self._ldt_spec_for(key, locality_tie_break=locality_tie_break)
        tree = build_ldt(
            spec.root,
            spec.registry,
            unit_cost=spec.unit_cost,
            tie_break=spec.tie_break,
        )
        self._ldt_metrics(tree)
        return tree

    def _ldt_spec_for(
        self, key: int, *, locality_tie_break: bool = False
    ) -> ForestSpec:
        """The Fig-4 inputs of ``key``'s tree as one forest spec."""
        node = self.nodes[key]
        root = LDTMember(key=key, capacity=node.capacity, used=node.used)
        members = [
            LDTMember(
                key=e.key,
                capacity=self.nodes[e.key].capacity,
                used=self.nodes[e.key].used,
            )
            for e in node.registry_entries()
        ]
        tie = None
        if locality_tie_break:
            tie = lambda m: self.network_distance_between_keys(key, m.key)  # noqa: E731
        return ForestSpec(
            root=root,
            registry=members,
            unit_cost=self.config.unit_advertise_cost,
            tie_break=tie,
        )

    def build_ldt_for_many(
        self, keys: Sequence[int], *, locality_tie_break: bool = False
    ) -> Dict[int, LDTree]:
        """Construct the advertisement trees of many mobile keys in one
        vectorised pass through :func:`build_ldt_forest`.

        Bit-identical to calling :meth:`build_ldt_for` per key (the forest
        builder's parity guarantee), with the capacity sort and the Fig-4
        recursion amortised across the whole batch; per-tree telemetry is
        recorded in ``keys`` order, exactly as the sequential loop would.
        """
        key_list = [int(k) for k in keys]
        forest = build_ldt_forest(
            [
                self._ldt_spec_for(k, locality_tie_break=locality_tie_break)
                for k in key_list
            ]
        )
        out: Dict[int, LDTree] = {}
        for index, key in enumerate(key_list):
            tree = forest.tree(index)
            self._ldt_metrics(tree)
            out[key] = tree
        return out

    def ldt_for_many(self, keys: Sequence[int]) -> Dict[int, LDTree]:
        """Cached batch variant of :meth:`ldt_for`.

        Every key pays the same fingerprint check (and the same
        ``ldt.cache_hits``/``ldt.cache_misses`` accounting) as the scalar
        path; the cache misses are then rebuilt together through the
        forest builder instead of one recursion per key.
        """
        m = self.telemetry.metrics
        out: Dict[int, LDTree] = {}
        misses: List[int] = []
        fingerprints: Dict[int, tuple] = {}
        for key in keys:
            key = int(key)
            node = self.nodes[key]
            fp = (
                node.ldt_epoch,
                tuple(self.nodes[r].ldt_epoch for r in sorted(node.registry)),
            )
            cached = self._ldt_cache.get(key)
            if cached is not None and cached[0] == fp:
                m.counter("ldt.cache_hits").inc()
                out[key] = cached[1]
                continue
            m.counter("ldt.cache_misses").inc()
            fingerprints[key] = fp
            misses.append(key)
        if misses:
            rebuilt = self.build_ldt_for_many(misses)
            for key in misses:
                tree = rebuilt[key]
                self._ldt_cache[key] = (fingerprints[key], tree)
                out[key] = tree
        return out

    def _ldt_metrics(self, tree: LDTree) -> None:
        m = self.telemetry.metrics
        m.counter("ldt.built").inc()
        m.histogram("ldt.depth").observe(tree.depth)
        m.histogram("ldt.messages").observe(tree.message_count)
        m.histogram("ldt.fanout").observe_many(
            len(n.children) for n in tree.nodes.values() if n.children
        )
        # Ledger: each interior node serves one advertisement copy per
        # child when this tree disseminates (Fig 4 fan-out served).
        # Counted once at build time so cached-tree reuse and repeated
        # waves do not inflate the per-node structural load.
        ledger = self.telemetry.nodeload
        for n in tree.nodes.values():
            if n.children:
                ledger.add("ldt_fanout", n.key, len(n.children))
        if _sanitize.ACTIVE:
            _sanitize.check_ldt(tree, self.config.unit_advertise_cost)

    def ldt_for(self, key: int) -> LDTree:
        """Cached variant of :meth:`build_ldt_for`.

        The tree is re-derived only when its Fig-4 inputs changed: the
        fingerprint covers the root's ``ldt_epoch`` (registry membership,
        registrant capacities, own workload) and every current registrant's
        epoch (their capacity/workload), so a pure movement or timestamp
        refresh hits the cache.  Periodic refreshers
        (:class:`~repro.core.statebinding.EarlyBinding`) use this to avoid
        rebuilding an unchanged tree every period; :meth:`move` keeps
        building fresh trees so its accounting is self-contained.
        """
        node = self.nodes[key]
        fp = (
            node.ldt_epoch,
            tuple(self.nodes[r].ldt_epoch for r in sorted(node.registry)),
        )
        cached = self._ldt_cache.get(key)
        m = self.telemetry.metrics
        if cached is not None and cached[0] == fp:
            m.counter("ldt.cache_hits").inc()
            return cached[1]
        m.counter("ldt.cache_misses").inc()
        tree = self.build_ldt_for(key)
        self._ldt_cache[key] = (fp, tree)
        return tree

    def build_ldt_for_group(
        self, keys: Sequence[int], *, locality_tie_break: bool = False
    ) -> Tuple[int, LDTree]:
        """One coalesced advertisement tree for co-hosted mobile keys.

        The batched update multicasts the host's new address once, over the
        *union* of the group's registries (deduplicated — a registrant
        interested in several co-hosted resources is visited once).  The
        root is the group member with the most available capacity (ties
        broken by key, deterministically); group members themselves are
        excluded from the wave since they share the host.  Returns
        ``(root_key, tree)``.
        """
        group = sorted({int(k) for k in keys})
        if not group:
            raise ValueError("build_ldt_for_group needs at least one key")
        rep = max(group, key=lambda k: (self.nodes[k].available, -k))
        rep_node = self.nodes[rep]
        root = LDTMember(key=rep, capacity=rep_node.capacity, used=rep_node.used)
        members = merge_registry_members(
            (
                [
                    LDTMember(
                        key=e.key,
                        capacity=self.nodes[e.key].capacity,
                        used=self.nodes[e.key].used,
                    )
                    for e in self.nodes[k].registry_entries()
                ]
                for k in group
            ),
            exclude=group,
        )
        tie = None
        if locality_tie_break:
            tie = lambda m: self.network_distance_between_keys(rep, m.key)  # noqa: E731
        # Routed through the columnar forest builder (a batch of one):
        # bit-identical to build_ldt on the same inputs, and the batched
        # update path shares one construction code path with
        # build_ldt_for_many / the scale engine.
        forest = build_ldt_forest(
            [
                ForestSpec(
                    root=root,
                    registry=members,
                    unit_cost=self.config.unit_advertise_cost,
                    tie_break=tie,
                )
            ]
        )
        tree = forest.tree(0)
        self._ldt_metrics(tree)
        return rep, tree

    def ldt_for_group(self, keys: Sequence[int]) -> Tuple[int, LDTree]:
        """Cached variant of :meth:`build_ldt_for_group` (same epoch
        fingerprinting as :meth:`ldt_for`, extended over the group and the
        union of its registrants)."""
        group = tuple(sorted({int(k) for k in keys}))
        if not group:
            raise ValueError("ldt_for_group needs at least one key")
        union = sorted({r for k in group for r in self.nodes[k].registry})
        fp = (
            tuple(self.nodes[k].ldt_epoch for k in group),
            tuple(self.nodes[r].ldt_epoch for r in union),
        )
        cached = self._group_ldt_cache.get(group)
        m = self.telemetry.metrics
        if cached is not None and cached[0] == fp:
            m.counter("ldt.cache_hits").inc()
            return cached[1], cached[2]
        m.counter("ldt.cache_misses").inc()
        rep, tree = self.build_ldt_for_group(list(group))
        self._group_ldt_cache[group] = (fp, rep, tree)
        return rep, tree

    # ------------------------------------------------------------------
    # Batched mobility (update_many, ROADMAP item 3)
    # ------------------------------------------------------------------
    def move_many(
        self,
        keys: Sequence[int],
        router: Optional[int] = None,
        *,
        advertise: bool = True,
        publish: bool = True,
    ) -> BatchMoveReport:
        """Move a mobile host carrying ``keys`` co-hosted resource keys.

        The host changes attachment point once; all of its keys land on
        the same router.  The location update is batched: one
        :meth:`LocationDirectory.publish_many` (one message per *distinct*
        stationary holder, with co-hosted keys grouped by responsible
        holder) and one coalesced advertisement wave over the union of the
        group's registries.  A K-resource movement therefore costs
        O(K + log N) messages where K per-key :meth:`move` calls cost
        O(K · log N).  Directory state afterwards is identical to K
        sequential publishes at the same virtual time.
        """
        group = sorted({int(k) for k in keys})
        if not group:
            raise ValueError("move_many needs at least one key")
        for k in group:
            if not self.nodes[k].mobile:
                raise ValueError(f"node {k} is stationary; only mobile nodes move")
        tel = self.telemetry
        sid = (
            tel.tracer.span_begin(self.now, "op.update_many", batch=len(group))
            if tel.tracer.enabled
            else 0
        )
        new_addresses = self.placement.move_group(group, router)
        for k, addr in new_addresses.items():
            node = self.nodes[k]
            node.address = addr
            node.moves += 1

        result: Optional[BatchPublishResult] = None
        publish_hops = 0
        multicast_hops = 0
        if publish:
            result = self.directory.publish_many(
                new_addresses, now=self.now, ttl=self.config.state_ttl
            )
            # One routed entry into the stationary layer carries the whole
            # batch; the per-holder fan-out is counted in publish_messages.
            publish_hops = 1
            # Shared ring multicast: the batch enters the layer once (at
            # the first key's owner) and travels holder-to-holder instead
            # of one full traversal per distinct holder.
            multicast_hops = shared_multicast_hops(
                self.stationary_layer,
                result.holder_batches,
                entry=self.stationary_layer.owner_of(group[0]),
            )

        ldt_root: Optional[int] = None
        ldt: Optional[LDTree] = None
        if advertise and any(self.nodes[k].registry for k in group):
            ldt_root, ldt = self.build_ldt_for_group(group)
        report = BatchMoveReport(
            keys=group,
            new_addresses=new_addresses,
            publish=result,
            publish_hops=publish_hops,
            ldt_root=ldt_root,
            ldt=ldt,
            multicast_hops=multicast_hops,
        )
        m = tel.metrics
        m.counter("op.update_many.count").inc()
        m.histogram("op.update_many.batch_size").observe(report.batch_size)
        m.counter("op.update_many.publish_messages").inc(report.publish_messages)
        m.counter("op.update_many.multicast_hops").inc(report.multicast_hops)
        m.histogram("op.update_many.total_messages").observe(report.total_messages)
        if ldt is not None:
            m.histogram("op.update_many.ldt_messages").observe(report.ldt_messages)
            m.histogram("op.update_many.ldt_depth").observe(report.ldt_depth)
        if sid:
            tel.tracer.span_end(
                self.now,
                sid,
                holders=report.publish_messages,
                ldt_messages=report.ldt_messages,
                total_messages=report.total_messages,
            )
        return report

    # ------------------------------------------------------------------
    # Discovery (reactive state resolution, §2.3.2)
    # ------------------------------------------------------------------
    def discover(self, from_key: int, target_key: int) -> "DiscoveryResult":
        """Resolve ``target_key``'s address through the stationary layer.

        The requester injects a discovery message into the stationary
        layer; it routes to the stationary node closest to the target key
        (the record holder Z), which returns the registered address.
        """
        entry = (
            from_key
            if not self.is_mobile(from_key)
            else self.stationary_layer.owner_of(from_key)
        )
        stat_route = self.stationary_layer.route(entry, target_key)
        holder = stat_route.terminus
        self.resolution_load[holder] = self.resolution_load.get(holder, 0) + 1
        self.telemetry.nodeload.add("detour", holder)
        addr = self.directory.resolve_at(holder, target_key, now=self.now)
        if addr is None:
            # Replica fallback (§2.3.2 availability).
            addr = self.directory.resolve(target_key, now=self.now)
        hops = [from_key] if entry == from_key else [from_key, entry]
        hops.extend(stat_route.hops[1:])
        result = DiscoveryResult(
            target=target_key, hops=hops, address=addr, holder=holder
        )
        m = self.telemetry.metrics
        m.counter("op.discover.count").inc()
        m.histogram("discovery.hops").observe(result.hop_count)
        if addr is None:
            m.counter("discovery.misses").inc()
        if self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit(
                self.now,
                "discovery",
                requester=from_key,
                target=target_key,
                holder=holder,
                hops=result.hop_count,
                found=result.found,
            )
        return result

    # ------------------------------------------------------------------
    # Join / leave (§2.3.3) — mobile-layer membership churn
    # ------------------------------------------------------------------
    def join_mobile_node(self, key: int, capacity: float = 1.0) -> BristleNode:
        """Admit a new mobile node: place it, add it to the mobile layer,
        publish its location, and register it to its new neighbours'
        mobile peers (Fig 5's reciprocal registrations)."""
        self.space.validate(key)
        if key in self.nodes:
            raise ValueError(f"key {key} already present")
        tel = self.telemetry
        sid = (
            tel.tracer.span_begin(self.now, "op.join", key=key)
            if tel.tracer.enabled
            else 0
        )
        node = BristleNode(key=key, mobile=True, capacity=capacity, space=self.space)
        node.address = self.placement.attach(key)
        self.nodes[key] = node
        self.mobile_keys.append(key)
        self.mobile_keys.sort()
        self._mobile_set.add(key)
        self.num_mobile += 1
        self.mobile_layer.add_node(key)
        tel.metrics.counter("overlay.mobile.add_node").inc()
        self.directory.publish(key, node.address, now=self.now, ttl=self.config.state_ttl)
        # Reciprocal registrations with the new neighbourhood (Fig 5).
        issued = 0
        for nb in self.mobile_layer.neighbors_of(key):
            if self.is_mobile(nb):
                self.registrations.register(key, nb, now=self.now)
                issued += 1
            self.registrations.register(nb, key, now=self.now)
            issued += 1
        tel.metrics.counter("op.join.count").inc()
        tel.metrics.histogram("op.join.registrations").observe(issued)
        if _sanitize.ACTIVE:
            _sanitize.check_overlay_consistency(self.mobile_layer, key)
        if sid:
            tel.tracer.span_end(self.now, sid, registrations=issued)
        return node

    def leave_mobile_node(self, key: int) -> None:
        """Remove a mobile node: withdraw its records, unregister it
        everywhere, drop it from the mobile layer and the underlay."""
        node = self.nodes.get(key)
        if node is None or not node.mobile:
            raise ValueError(f"{key} is not a mobile member")
        tel = self.telemetry
        sid = (
            tel.tracer.span_begin(self.now, "op.leave", key=key)
            if tel.tracer.enabled
            else 0
        )
        self.directory.withdraw(key)
        withdrawn = len(node.subscriptions) + len(node.registry)
        for target in list(node.subscriptions):
            self.registrations.unregister(key, target)
        for registrant in list(node.registry):
            self.registrations.unregister(registrant, key)
        self._ldt_cache.pop(key, None)
        for g in [g for g in self._group_ldt_cache if key in g]:
            del self._group_ldt_cache[g]
        self.mobile_layer.remove_node(key)
        self.placement.detach(key)
        self.mobile_keys.remove(key)
        self._mobile_set.discard(key)
        self.num_mobile -= 1
        del self.nodes[key]
        tel.metrics.counter("op.leave.count").inc()
        tel.metrics.counter("overlay.mobile.remove_node").inc()
        tel.metrics.histogram("op.leave.unregistrations").observe(withdrawn)
        if _sanitize.ACTIVE:
            _sanitize.check_overlay_consistency(self.mobile_layer, key)
        if sid:
            tel.tracer.span_end(self.now, sid, unregistrations=withdrawn)

    def advance_time(self, dt: float) -> None:
        """Advance the lease clock (directory records age against it)."""
        if dt < 0:
            raise ValueError("time cannot go backwards")
        self.now += dt


@dataclasses.dataclass
class DiscoveryResult:
    """Outcome of a reactive state discovery.

    ``hops`` is the full node-key path the discovery message travelled
    (requester, optional stationary entry point, stationary route to the
    holder).  ``address`` is ``None`` when no fresh record existed.
    """

    target: int
    hops: List[int]
    address: Optional[NetworkAddress]
    holder: int

    @property
    def hop_count(self) -> int:
        return max(len(self.hops) - 1, 0)

    @property
    def found(self) -> bool:
        return self.address is not None


__all__.append("DiscoveryResult")


class _KeyCostOracle:
    """Key-level edge-cost adapter over the network's path oracle.

    Passed to :meth:`LDTree.edge_costs`/:meth:`LDTree.total_cost` as the
    ``distance`` argument: the batched ``route_costs`` form prices every
    tree edge in one oracle gather, and the scalar call form keeps the
    plain-callable contract for code that prices one pair at a time.
    """

    __slots__ = ("_net",)

    def __init__(self, net: BristleNetwork) -> None:
        self._net = net

    def __call__(self, a: int, b: int) -> float:
        return self._net.network_distance_between_keys(a, b)

    def route_costs(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        return self._net.route_costs_between_keys(pairs)


__all__.append("_KeyCostOracle")

"""Mobile-layer routing with address resolution — Figure 2.

``_route (node i, key j, payload d)``: at each hop the current node finds
the state-pair closest to the destination key; if that peer's network
address is unknown or invalidated, the node first resolves it through the
stationary layer (``_discovery``) and the packet travels the detour
``X → (stationary route to the holder Z) → Y`` instead of the direct hop
``X → Y``.

The module accounts both quantities Figure 7 reports:

* **application-level hops** — every overlay-level forwarding step,
  including the stationary hops of each discovery detour;
* **path cost** — per §4.1, the sum over application-level hops of the
  shortest-path weight between the two endpoints' attachment points.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from .bristle import BristleNetwork

__all__ = ["HopRecord", "RouteTrace", "route_with_resolution"]


def _record_route_telemetry(
    net: BristleNetwork, trace: "RouteTrace", span_id: int
) -> "RouteTrace":
    """Account one finished route in the network's telemetry.

    Per-route histograms (``route.app_hops``, ``route.path_cost``,
    ``route.resolutions``) always record — cheap O(1) appends; the
    discovery-detour breakdown (``discovery.detour_cost`` /
    ``discovery.detour_hops``, the stationary-layer share of the route)
    records whenever resolutions happened.  The per-node ledger charges
    every forwarding node one ``routed`` unit, the final node one
    ``terminated`` unit on success, and each resolving record holder
    (Fig 2's Z, the source of a ``deliver`` hop) one ``detour`` unit —
    pure integer counting, always on.  When a span is open it is closed
    with the route's aggregates plus the causal hop path (per-hop
    ``[src, dst, kind, cost]`` records), so one lookup can be traced
    end-to-end through stationary routing → detour → delivery.
    """
    m = net.telemetry.metrics
    path_cost = trace.path_cost
    m.counter("route.count").inc()
    m.histogram("route.app_hops").observe(trace.app_hops)
    m.histogram("route.path_cost").observe(path_cost)
    m.histogram("route.resolutions").observe(trace.resolutions)
    if not trace.success:
        m.counter("route.failures").inc()
    if trace.resolutions:
        detour_cost = 0.0
        detour_hops = 0
        for r in trace.records:
            if r.kind != "direct":
                detour_cost += r.cost
                detour_hops += 1
        m.histogram("discovery.detour_cost").observe(detour_cost)
        m.histogram("discovery.detour_hops").observe(detour_hops)
    ledger = net.telemetry.nodeload
    if trace.records:
        ledger.add_many("routed", (r.src for r in trace.records))
        if trace.success:
            ledger.add("terminated", trace.records[-1].dst)
        for r in trace.records:
            if r.kind == "deliver":
                ledger.add("detour", r.src)
    elif trace.success:
        ledger.add("terminated", trace.source)
    if span_id:
        net.telemetry.tracer.span_end(
            net.now,
            span_id,
            hops=trace.app_hops,
            cost=path_cost,
            resolutions=trace.resolutions,
            success=trace.success,
            path=trace.hop_path,
        )
    return trace


@dataclasses.dataclass(frozen=True)
class HopRecord:
    """One application-level hop of a routed packet.

    ``kind`` is ``"direct"`` for a plain mobile-layer hop, ``"inject"``
    for a mobile node handing a discovery to its stationary entry point,
    ``"stationary"`` for hops of the discovery route inside the stationary
    layer, and ``"deliver"`` for the resolved holder forwarding the packet
    to the (mobile) next hop.
    """

    src: int
    dst: int
    kind: str
    cost: float


@dataclasses.dataclass
class RouteTrace:
    """Full accounting for one routed message."""

    source: int
    target: int
    records: List[HopRecord]
    resolutions: int
    success: bool

    @property
    def app_hops(self) -> int:
        """Application-level hop count (Figure 7a's metric)."""
        return len(self.records)

    @property
    def path_cost(self) -> float:
        """Total underlay path cost (Figure 7b's second metric)."""
        return sum(r.cost for r in self.records)

    @property
    def node_path(self) -> List[int]:
        """The node-key sequence the packet visited."""
        if not self.records:
            return [self.source]
        return [self.records[0].src] + [r.dst for r in self.records]

    @property
    def hop_path(self) -> List[List[object]]:
        """Causal per-hop records for span attachment: one
        ``[src, dst, kind, cost]`` entry per application-level hop, in
        traversal order — the end-to-end story of this packet."""
        return [[r.src, r.dst, r.kind, r.cost] for r in self.records]


def route_with_resolution(
    net: BristleNetwork,
    source: int,
    target_key: int,
    *,
    p_stale: Optional[float] = None,
    stale_stream: str = "routing.stale",
) -> RouteTrace:
    """Route from node ``source`` toward ``target_key`` in the mobile
    layer, paying a stationary-layer discovery for every stale mobile hop.

    Parameters
    ----------
    net:
        The Bristle network.
    source:
        Key of the originating node (must be a mobile-layer member).
    target_key:
        Destination key (a node key or a data key — routing terminates at
        its owner).
    p_stale:
        Probability that a mobile next-hop's cached address is invalid and
        needs resolution; defaults to ``net.config.p_stale``.  The paper's
        Figure-7 setup corresponds to 1.0 ("a mobile node only advertises
        its updated location to the stationary layer", so en-route caches
        are cold).
    """
    if p_stale is None:
        p_stale = net.config.p_stale
    tracer = net.telemetry.tracer
    span_id = (
        tracer.span_begin(net.now, "route", src=source, target=target_key)
        if tracer.enabled
        else 0
    )
    overlay_route = net.mobile_layer.route(source, target_key)
    records: List[HopRecord] = []
    resolutions = 0
    dist = net.network_distance_between_keys

    for a, b in zip(overlay_route.hops, overlay_route.hops[1:]):
        needs_resolution = (
            net.is_mobile(b)
            and p_stale > 0.0
            and (p_stale >= 1.0 or net.rng.random(stale_stream) < p_stale)
        )
        if not needs_resolution:
            records.append(HopRecord(src=a, dst=b, kind="direct", cost=dist(a, b)))
            continue

        resolutions += 1
        # Discovery detour: a → entry → ... → holder Z → b  (Fig 2's
        # _discovery plus Z forwarding the packet to the destination,
        # §2.2: "Once Z determines the network address of k ... it
        # forwards the message to the destination node Y").
        entry = (
            a if not net.is_mobile(a) else net.stationary_layer.owner_of(a)
        )
        if entry != a:
            records.append(
                HopRecord(src=a, dst=entry, kind="inject", cost=dist(a, entry))
            )
        stat_route = net.stationary_layer.route(entry, b)
        for sa, sb in zip(stat_route.hops, stat_route.hops[1:]):
            records.append(
                HopRecord(src=sa, dst=sb, kind="stationary", cost=dist(sa, sb))
            )
        holder = stat_route.terminus
        net.resolution_load[holder] = net.resolution_load.get(holder, 0) + 1
        records.append(
            HopRecord(src=holder, dst=b, kind="deliver", cost=dist(holder, b))
        )
        if tracer.enabled:
            tracer.emit(
                net.now,
                "discovery.detour",
                at=a,
                next_hop=b,
                holder=holder,
                stationary_hops=len(stat_route.hops) - 1,
            )

    return _record_route_telemetry(
        net,
        RouteTrace(
            source=source,
            target=target_key,
            records=records,
            resolutions=resolutions,
            success=overlay_route.success,
        ),
        span_id,
    )


def route_preferring_resolved(
    net: BristleNetwork,
    source: int,
    target_key: int,
    *,
    p_stale: Optional[float] = None,
    stale_stream: str = "routing.stale",
) -> RouteTrace:
    """Bristle-optimised routing: among neighbours that make key-space
    progress, prefer one whose address is already resolved (a stationary
    node), falling back to mobile hops only when unavoidable.

    This implements §3's goal that "communication between nodes in the
    stationary layer should reduce the help of nodes in the mobile layer"
    as a *routing* policy (the naming scheme achieves it structurally);
    exposed for the ablation benchmarks.

    ``p_stale`` follows the same semantics (and the same ``routing.stale``
    RNG stream) as :func:`route_with_resolution`, so the two policies are
    comparable at any staleness level, not just the cold-cache extreme.
    """
    if p_stale is None:
        p_stale = net.config.p_stale
    tracer = net.telemetry.tracer
    span_id = (
        tracer.span_begin(
            net.now, "route", src=source, target=target_key, policy="prefer_resolved"
        )
        if tracer.enabled
        else 0
    )
    overlay = net.mobile_layer
    owner = overlay.owner_of(target_key)
    dist = net.network_distance_between_keys
    records: List[HopRecord] = []
    resolutions = 0
    current = source
    seen = {source}
    while current != owner:
        cur_pk = overlay.progress_key(current, target_key)
        best_stationary: Optional[int] = None
        best_stationary_pk = cur_pk
        best_any: Optional[int] = None
        best_any_pk = cur_pk
        for cand in overlay.neighbors_of(current):
            if cand in seen:
                continue
            pk = overlay.progress_key(cand, target_key)
            if pk < best_any_pk:
                best_any, best_any_pk = cand, pk
            if not net.is_mobile(cand) and pk < best_stationary_pk:
                best_stationary, best_stationary_pk = cand, pk
        nxt = best_stationary if best_stationary is not None else best_any
        if nxt is None:
            nxt = overlay.next_hop(current, target_key)
            if nxt is None or nxt in seen:
                # Dead end under the progress measure: attempt the same
                # ring-distance sideways hop toward the owner that
                # ``Overlay.route_avoiding`` uses, so the two policies
                # report comparable failures instead of this one silently
                # giving up first.
                nxt = None
                cur_ring = overlay.space.ring_distance(current, owner)
                for cand in overlay.neighbors_of(current):
                    if cand in seen:
                        continue
                    if overlay.space.ring_distance(cand, owner) < cur_ring:
                        nxt = cand
                        break
                if nxt is None:
                    break
        needs_resolution = (
            net.is_mobile(nxt)
            and p_stale > 0.0
            and (p_stale >= 1.0 or net.rng.random(stale_stream) < p_stale)
        )
        if needs_resolution:
            resolutions += 1
            entry = (
                current
                if not net.is_mobile(current)
                else net.stationary_layer.owner_of(current)
            )
            if entry != current:
                records.append(
                    HopRecord(src=current, dst=entry, kind="inject", cost=dist(current, entry))
                )
            stat_route = net.stationary_layer.route(entry, nxt)
            for sa, sb in zip(stat_route.hops, stat_route.hops[1:]):
                records.append(
                    HopRecord(src=sa, dst=sb, kind="stationary", cost=dist(sa, sb))
                )
            net.resolution_load[stat_route.terminus] = (
                net.resolution_load.get(stat_route.terminus, 0) + 1
            )
            records.append(
                HopRecord(
                    src=stat_route.terminus, dst=nxt, kind="deliver",
                    cost=dist(stat_route.terminus, nxt),
                )
            )
            if tracer.enabled:
                tracer.emit(
                    net.now,
                    "discovery.detour",
                    at=current,
                    next_hop=nxt,
                    holder=stat_route.terminus,
                    stationary_hops=len(stat_route.hops) - 1,
                )
        else:
            records.append(
                HopRecord(src=current, dst=nxt, kind="direct", cost=dist(current, nxt))
            )
        seen.add(nxt)
        current = nxt
        if len(seen) > overlay.MAX_ROUTE_HOPS:
            break
    return _record_route_telemetry(
        net,
        RouteTrace(
            source=source,
            target=target_key,
            records=records,
            resolutions=resolutions,
            success=current == owner,
        ),
        span_id,
    )


__all__.append("route_preferring_resolved")

"""The Figure-5 joining protocol, with message accounting (§2.3.3).

"Consider a node i joins Bristle.  It publishes its state to O(log N)
nodes and then these nodes return their registrations ... This at most
takes 2 × O(log N) messages sent and received by node i."

The algorithm walks the join message's route through the mobile layer;
every visited node ``k``:

1. admits ``i`` into ``state[k]`` when ``i``'s key is closer to ``k``
   than some existing entry (``i`` then registers itself to ``k``);
2. offers ``k`` and all of ``state[k]`` back to ``i``, which adopts a
   candidate ``r`` when ``r`` is key-closer than some current entry *and*
   network-closer (``distance(r, i) < distance(q, i)``) — the proximity
   test that makes Bristle state locality-aware.

:func:`figure5_join` performs the structural join (placement, overlay
membership, directory publish) and then runs the algorithm to populate
the newcomer's :class:`~repro.overlay.state.StateTable`, returning a
:class:`JoinReport` whose message count the bound test checks against
``2·⌈log₂ N⌉`` (plus the visited-route constant).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

from ..overlay.state import StatePair
from .bristle import BristleNetwork

__all__ = ["JoinReport", "figure5_join"]


@dataclasses.dataclass
class JoinReport:
    """Accounting for one Figure-5 join."""

    key: int
    visited: List[int]
    registrations_sent: int  # i → k ("i registers itself to k")
    registrations_received: int  # r → i ("r registers itself to i")
    state_size: int
    #: members whose routing state the overlay's incremental admission
    #: repaired (the maintenance cost §2.3 attributes to a join; 0 when
    #: the overlay fell back to a full rebuild before repairs existed).
    overlay_repaired_nodes: int = 0

    @property
    def messages(self) -> int:
        """Messages sent and received by the joining node: the join route
        plus both registration directions."""
        return len(self.visited) + self.registrations_sent + self.registrations_received

    def within_bound(self, num_nodes: int, constant: float = 3.0) -> bool:
        """The §2.3.3 claim: messages ≤ 2·O(log N) (generous constant)."""
        return self.messages <= constant * 2 * max(math.log2(max(num_nodes, 2)), 1.0)


def figure5_join(
    net: BristleNetwork,
    key: int,
    capacity: float = 1.0,
    bootstrap: Optional[int] = None,
) -> JoinReport:
    """Join mobile node ``key`` per Figure 5 and account its messages.

    Parameters
    ----------
    net:
        The network to join.
    key:
        The newcomer's hash key (must be fresh).
    capacity:
        The newcomer's ``C_X``.
    bootstrap:
        Member the join message starts from (default: a random existing
        member — joins arrive from arbitrary points of the overlay, which
        is what makes the route visit O(log N) nodes).
    """
    net.space.validate(key)
    if key in net.nodes:
        raise ValueError(f"key {key} is already a member")
    if bootstrap is None:
        members = net.stationary_keys + net.mobile_keys
        bootstrap = net.rng.choice("join.bootstrap", members)
    if bootstrap not in net.nodes:
        raise ValueError(f"bootstrap {bootstrap} is not a member")

    # The join message visits the nodes along the route toward i's key
    # *before* i becomes a member.
    route = net.mobile_layer.route(bootstrap, key)
    visited = list(route.hops)

    # Structural join: placement, overlay membership, directory publish.
    # (join_mobile_node also performs reciprocal registrations with the
    # overlay neighbours; the Figure-5 walk below additionally populates
    # the newcomer's state table with the proximity-filtered candidates.)
    repaired_counter = net.telemetry.metrics.counter("overlay.repaired_nodes")
    repaired_before = repaired_counter.value
    node = net.join_mobile_node(key, capacity=capacity)
    overlay_repaired = repaired_counter.value - repaired_before

    registrations_sent = 0
    registrations_received = 0
    dist = net.network_distance_between_keys
    space = net.space

    for k in visited:
        k_node = net.nodes[k]
        k_state = k_node.state
        # (1) does i become k's neighbour?  "∃p ∈ state[k] such that
        # i.key is closer to k than p.key" — with an empty table the
        # newcomer is trivially admitted.
        admit = len(k_state) == 0
        for p in k_state:
            if space.is_closer(key, p.key, k):
                admit = True
                break
        if admit and key not in k_state:
            k_state.insert(
                StatePair(key=key, addr=node.address, capacity=capacity)
            )
            # The registration message is always sent; the interest
            # relation is only recorded for mobile targets (§2.3.1's
            # "register itself to those mobile nodes only").
            registrations_sent += 1
        # (2) can each of k and state[k] become i's neighbour?
        for r in [k] + [p.key for p in k_state]:
            if r == key or r in node.state:
                continue
            r_node = net.nodes.get(r)
            if r_node is None:
                continue
            if len(node.state) == 0:
                closer_exists = True
            else:
                closer_exists = any(
                    space.is_closer(r, q.key, key) for q in node.state
                )
                # Network-proximity test: distance(r, i) < distance(q, i)
                # for the displaced candidate.
                if closer_exists:
                    worst = max(
                        (q for q in node.state),
                        key=lambda q: dist(q.key, key),
                    )
                    closer_exists = dist(r, key) < dist(worst.key, key) or len(
                        node.state
                    ) < net.config.effective_registry_size(net.num_nodes)
            if closer_exists:
                node.state.insert(
                    StatePair(
                        key=r,
                        addr=r_node.address,
                        capacity=r_node.capacity,
                    )
                )
                if node.mobile:
                    net.registrations.register(r, key, now=net.now)
                registrations_received += 1

    return JoinReport(
        key=key,
        visited=visited,
        registrations_sent=registrations_sent,
        registrations_received=registrations_received,
        state_size=len(node.state),
        overlay_repaired_nodes=overlay_repaired,
    )

"""Location dissemination trees (LDTs) and the Fig-4 advertisement scheduler.

Every mobile node is associated with one LDT whose members are the nodes
registered to it (§2.3).  When the mobile node moves, its new address is
multicast down the tree.  The tree is *not* stored — it is the recursion
structure of the state-advertisement algorithm of Fig 4, re-derived from
the registry's capacities and workloads at each advertisement:

1. sort ``R(i)`` by capacity, decreasing;
2. if the advertising node is overloaded (``Avail_i − v ≤ 0``), hand the
   entire list to the single highest-capacity registry node, which
   continues the advertisement (chain step);
3. otherwise split the list round-robin into ``k = ⌊Avail_i / v⌋``
   partitions (so partition sizes are "nearly equal" and partition heads
   are the ``k`` highest-capacity nodes), send the new address to each
   head together with its partition remainder, and recurse.

The module represents one advertisement wave as an explicit
:class:`LDTree` so experiments can measure structure (Fig 8a: level
distribution), load balance (Fig 8b: partition sizes vs capacity) and cost
(Fig 9: per-edge network cost).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "LDTMember",
    "LDTNode",
    "LDTree",
    "build_ldt",
    "merge_registry_members",
    "ldt_depth_bound",
]


@dataclasses.dataclass(frozen=True)
class LDTMember:
    """Input descriptor for one participant in an advertisement wave.

    Attributes
    ----------
    key:
        Node key.
    capacity:
        The node's ``C`` (Fig 8 uses the number of network connections).
    used:
        Present workload ``Used`` — subtracted to get ``Avail``.
    """

    key: int
    capacity: float
    used: float = 0.0

    @property
    def available(self) -> float:
        return self.capacity - self.used


@dataclasses.dataclass
class LDTNode:
    """One node's position in a constructed LDT.

    ``level`` is 0 for the root (the mobile node); registry members start
    at level 1 — Fig 8(a)'s "level-1 node" is thus the first member tier.
    ``assigned`` is the size of the partition handed to this node
    (including itself), i.e. Fig 8(b)'s "Number of Nodes Assigned";
    non-head members have ``assigned == 0``.
    """

    member: LDTMember
    level: int
    parent: Optional[int]
    children: List[int] = dataclasses.field(default_factory=list)
    assigned: int = 0

    @property
    def key(self) -> int:
        return self.member.key


@dataclasses.dataclass
class LDTree:
    """A materialised advertisement tree.

    Attributes
    ----------
    root_key:
        The mobile node's key.
    nodes:
        key → :class:`LDTNode` for the root and every registry member.
    edges:
        ``(parent_key, child_key)`` pairs — each is one ``_send`` message.
    """

    root_key: int
    nodes: Dict[int, LDTNode]
    edges: List[Tuple[int, int]]
    #: Derived-value cache — trees are immutable after build, so cached
    #: levels/depth/message counts are never invalidated.  Excluded from
    #: equality/repr so cached and fresh trees still compare equal.
    _cache: Dict[str, Any] = dataclasses.field(
        default_factory=dict, repr=False, compare=False
    )

    def _level_array(self) -> np.ndarray:
        """Member levels as one cached int64 array (root included)."""
        levels = self._cache.get("levels")
        if levels is None:
            levels = np.fromiter(
                (n.level for n in self.nodes.values()),
                dtype=np.int64,
                count=len(self.nodes),
            )
            self._cache["levels"] = levels
        return levels

    @property
    def depth(self) -> int:
        """Maximum member level (0 when the tree has no members)."""
        depth = self._cache.get("depth")
        if depth is None:
            levels = self._level_array()
            depth = int(levels.max()) if levels.size else 0
            self._cache["depth"] = depth
        return depth

    @property
    def num_members(self) -> int:
        """Registry members reached (excludes the root)."""
        return len(self.nodes) - 1

    @property
    def message_count(self) -> int:
        """Advertisement messages sent (one per edge)."""
        count = self._cache.get("messages")
        if count is None:
            count = len(self.edges)
            self._cache["messages"] = count
        return count

    def level_histogram(self) -> Dict[int, int]:
        """member count per level (root level 0 excluded)."""
        counts = np.bincount(self._level_array())
        return {
            level: int(count)
            for level, count in enumerate(counts)
            if level > 0 and count > 0
        }

    def children_of(self, key: int) -> List[int]:
        """Child keys of ``key`` in the tree."""
        return list(self.nodes[key].children)

    def edge_costs(self, distance: Callable[[int, int], float]) -> List[float]:
        """Cost of each tree edge under a network-distance function.

        Fig 9's metric: "E_ij is the minimal sum of path weights for the
        network links assembling the edge" — i.e. the shortest-path weight
        between the two endpoints.

        ``distance`` is either a scalar ``(a, b) -> cost`` callable or a
        batched oracle exposing ``route_costs(pairs)`` (``PathOracle`` /
        ``BristleNetwork.ldt_cost_oracle``); the batched form prices all
        edges in one multi-source Dijkstra pass instead of one scalar
        ``distance(a, b)`` query per edge.
        """
        if not self.edges:
            return []
        route_costs = getattr(distance, "route_costs", None)
        if route_costs is not None:
            return [float(c) for c in np.asarray(route_costs(self.edges), dtype=float)]
        return [distance(a, b) for a, b in self.edges]

    def total_cost(self, distance: Callable[[int, int], float]) -> float:
        """Sum of all edge costs under ``distance`` (batched when the
        oracle form is passed — see :meth:`edge_costs`)."""
        return float(sum(self.edge_costs(distance)))

    def validate(self) -> None:
        """Internal consistency checks (used by property tests).

        Every member appears exactly once, every edge links a parent one
        level above its child, and the structure is a tree rooted at
        ``root_key``.
        """
        assert self.root_key in self.nodes, "root missing from node map"
        assert self.nodes[self.root_key].level == 0, "root must be level 0"
        seen_children = set()
        for a, b in self.edges:
            na, nb = self.nodes[a], self.nodes[b]
            assert nb.level == na.level + 1, f"edge {a}->{b} skips levels"
            assert nb.parent == a, f"child {b} disagrees about its parent"
            assert b not in seen_children, f"node {b} has two parents"
            seen_children.add(b)
        member_keys = {k for k in self.nodes if k != self.root_key}
        assert seen_children == member_keys, "every member must have exactly one parent"


def _round_robin_partitions(items: Sequence[LDTMember], k: int) -> List[List[LDTMember]]:
    """Split a capacity-sorted list into ``k`` near-equal partitions.

    Round-robin over a decreasing list: partition ``j`` receives items
    ``j, j+k, j+2k, ...`` — sizes differ by at most one (the Fig-4
    guarantee "the numbers of registry nodes of different disjoint subsets
    are nearly equal") and each partition's head is among the ``k``
    highest-capacity nodes.
    """
    parts: List[List[LDTMember]] = [[] for _ in range(k)]
    for idx, item in enumerate(items):
        parts[idx % k].append(item)
    return [p for p in parts if p]


def build_ldt(
    root: LDTMember,
    registry: Sequence[LDTMember],
    unit_cost: float = 1.0,
    *,
    tie_break: Optional[Callable[[LDTMember], float]] = None,
) -> LDTree:
    """Run the Fig-4 advertisement recursion and materialise the tree.

    Parameters
    ----------
    root:
        The advertising mobile node ``i``.
    registry:
        ``R(i)`` — the registered (interested) nodes, any order.
    unit_cost:
        ``v``, "the unit cost to send an update message".
    tie_break:
        Optional secondary sort key for equal capacities (e.g. network
        proximity to the advertiser); defaults to the node key, which keeps
        construction deterministic.

    Returns
    -------
    LDTree
        The dissemination structure; every registry member appears exactly
        once (the algorithm's partitions are disjoint and exhaustive).
    """
    if unit_cost <= 0:
        raise ValueError("unit_cost must be positive")
    keys = [m.key for m in registry]
    if len(set(keys)) != len(keys):
        raise ValueError("registry contains duplicate keys")
    if root.key in set(keys):
        raise ValueError("the root must not appear in its own registry")

    nodes: Dict[int, LDTNode] = {root.key: LDTNode(member=root, level=0, parent=None)}
    edges: List[Tuple[int, int]] = []

    def sort_key(m: LDTMember) -> Tuple[float, float]:
        secondary = tie_break(m) if tie_break is not None else float(m.key)
        return (-m.capacity, secondary)

    def advertise(sender: LDTMember, sender_level: int, pending: List[LDTMember]) -> None:
        """``sender`` forwards the update to ``pending`` (Fig 4)."""
        if not pending:
            return
        ordered = sorted(pending, key=sort_key)
        avail = sender.available
        if avail - unit_cost <= 0:
            # Overloaded: delegate everything to the strongest node.
            head, rest = ordered[0], ordered[1:]
            _attach(head, sender, sender_level, assigned=len(ordered))
            advertise(head, sender_level + 1, rest)
            return
        k = int(math.floor(avail / unit_cost))
        k = max(1, min(k, len(ordered)))
        for part in _round_robin_partitions(ordered, k):
            head, rest = part[0], part[1:]
            _attach(head, sender, sender_level, assigned=len(part))
            advertise(head, sender_level + 1, rest)

    def _attach(child: LDTMember, parent: LDTMember, parent_level: int, assigned: int) -> None:
        nodes[child.key] = LDTNode(
            member=child, level=parent_level + 1, parent=parent.key, assigned=assigned
        )
        nodes[parent.key].children.append(child.key)
        edges.append((parent.key, child.key))

    advertise(root, 0, list(registry))
    tree = LDTree(root_key=root.key, nodes=nodes, edges=edges)
    return tree


def merge_registry_members(
    groups: Iterable[Sequence[LDTMember]],
    *,
    exclude: Optional[Iterable[int]] = None,
) -> List[LDTMember]:
    """Union of several registries as one deduplicated member list.

    The batched-update path coalesces the LDT dissemination of co-hosted
    mobile keys: one wave over the union of their registries reaches every
    interested node exactly once, instead of one wave per key re-visiting
    the shared registrants.  Keys in ``exclude`` (the co-hosted group
    itself — already informed by construction) are dropped; the first
    occurrence of a duplicated registrant wins, and the output is sorted by
    key so construction stays deterministic regardless of group order.
    """
    banned = set(exclude) if exclude is not None else set()
    merged: Dict[int, LDTMember] = {}
    for group in groups:
        for member in group:
            if member.key in banned or member.key in merged:
                continue
            merged[member.key] = member
    return [merged[k] for k in sorted(merged)]


def ldt_depth_bound(registry_size: int, branching: int) -> float:
    """The §2.3 ideal bound: a ``k``-way complete tree advertises in
    ``O(log_k |R|)`` hops ("if a LDT is a k-way complete tree, then
    perform a state advertisement takes O(log(log N)/log k) hops")."""
    if registry_size <= 0:
        return 0.0
    if branching <= 1:
        return float(registry_size)
    return math.log(max(registry_size, 1), branching) + 1

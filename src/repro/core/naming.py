"""Naming schemes: scrambled vs clustered hash-key assignment (§3).

Under the **scrambled** scheme every node draws a uniform key, so "a route
may frequently need state discovery for resolving network addresses of
mobile nodes" (Fig 6a).  The **clustered** scheme assigns a stationary node
a key ``k_S`` with ``0 < L ≤ k_S ≤ U < ρ`` and a mobile node a key ``k_M``
outside ``[L, U]``, sized so that ``(U − L)/ρ = ∇ ≈ (N − M)/N`` — routes
between stationary nodes can then "possibly utilize the paths comprising of
stationary nodes" (Fig 6b), and §3's eq. (1) shows they *always* can when
∇ ≥ 1/2.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..overlay.keyspace import KeySpace
from ..sim.rng import RngStreams

__all__ = ["NameAssignment", "ScrambledNaming", "ClusteredNaming", "make_naming"]


@dataclasses.dataclass(frozen=True)
class NameAssignment:
    """Keys produced by a naming scheme.

    ``stationary_keys[i]`` / ``mobile_keys[j]`` are the hash keys of the
    i-th stationary and j-th mobile node; all keys are distinct.
    """

    stationary_keys: List[int]
    mobile_keys: List[int]

    @property
    def all_keys(self) -> List[int]:
        return self.stationary_keys + self.mobile_keys


class ScrambledNaming:
    """Uniform keys for everyone — mobility-oblivious (Fig 6a)."""

    name = "scrambled"

    def __init__(self, space: KeySpace) -> None:
        self.space = space

    def assign(self, num_stationary: int, num_mobile: int, rng: RngStreams) -> NameAssignment:
        """Draw ``num_stationary + num_mobile`` distinct uniform keys and
        split them arbitrarily (uniformity makes the split immaterial)."""
        total = num_stationary + num_mobile
        if num_stationary < 1:
            raise ValueError("need at least one stationary node")
        keys = self.space.random_keys(rng, "naming", total)
        return NameAssignment(
            stationary_keys=[int(k) for k in keys[:num_stationary]],
            mobile_keys=[int(k) for k in keys[num_stationary:]],
        )

    def is_stationary_key(self, key: int) -> bool:  # pragma: no cover - trivial
        """Scrambled naming encodes nothing in the key."""
        raise NotImplementedError("scrambled keys carry no mobility information")


class ClusteredNaming:
    """Mobility-clustered keys (§3).

    Parameters
    ----------
    space:
        The identifier ring.
    nabla:
        The stationary fraction ∇ = (U − L)/ρ.  Callers normally pass
        ``(N − M)/N``; :meth:`for_population` does that arithmetic.
    low:
        The lower bound ``L`` (defaults to centring the stationary band:
        L = (ρ − span)/2, which keeps both mobile sub-ranges non-empty).
    """

    name = "clustered"

    def __init__(self, space: KeySpace, nabla: float, low: int | None = None) -> None:
        if not 0.0 < nabla <= 1.0:
            raise ValueError(f"nabla must be in (0, 1], got {nabla}")
        self.space = space
        self.nabla = float(nabla)
        span = max(1, int(round(nabla * space.size)))
        span = min(span, space.size - 2)  # keep room for mobile keys and L > 0
        if low is None:
            low = max(1, (space.size - span) // 2)
        if not 0 < low:
            raise ValueError("L must be positive (paper: 0 < L)")
        high = low + span
        if high >= space.size - 1:
            high = space.size - 2
        if high <= low:
            raise ValueError("stationary range collapsed; increase key_bits")
        #: inclusive stationary band [L, U]
        self.low = low
        self.high = high

    @classmethod
    def for_population(
        cls, space: KeySpace, num_stationary: int, num_mobile: int
    ) -> "ClusteredNaming":
        """Build with ∇ = (N − M)/N for the given population."""
        total = num_stationary + num_mobile
        if num_stationary < 1:
            raise ValueError("need at least one stationary node")
        return cls(space, nabla=num_stationary / total)

    def is_stationary_key(self, key: int) -> bool:
        """True for keys inside the stationary band [L, U]."""
        return self.low <= key <= self.high

    def assign(self, num_stationary: int, num_mobile: int, rng: RngStreams) -> NameAssignment:
        """Stationary keys uniform in [L, U]; mobile keys uniform outside."""
        stat = self.space.random_keys_in_range(
            rng, "naming.stationary", num_stationary, self.low, self.high
        )
        mobile: List[int] = []
        if num_mobile:
            # The mobile region is [0, L) ∪ (U, ρ); draw uniformly over its
            # total measure by drawing offsets into the combined length.
            left = self.low  # size of [0, L)
            right = self.space.size - self.high - 1  # size of (U, ρ)
            if left + right < num_mobile:
                raise ValueError(
                    f"mobile region of size {left + right} cannot hold "
                    f"{num_mobile} distinct keys"
                )
            offsets = self._draw_unique_offsets(rng, num_mobile, left + right)
            for off in offsets:
                if off < left:
                    mobile.append(int(off))
                else:
                    mobile.append(int(self.high + 1 + (off - left)))
        return NameAssignment(
            stationary_keys=[int(k) for k in stat], mobile_keys=mobile
        )

    def _draw_unique_offsets(self, rng: RngStreams, count: int, measure: int) -> np.ndarray:
        gen = rng.stream("naming.mobile")
        offs = np.unique(gen.integers(0, measure, size=count, dtype=np.uint64))
        while offs.size < count:
            extra = gen.integers(0, measure, size=count - offs.size, dtype=np.uint64)
            offs = np.unique(np.concatenate([offs, extra]))
        gen.shuffle(offs)
        return offs[:count]


def make_naming(
    name: str, space: KeySpace, num_stationary: int, num_mobile: int
):
    """Instantiate the naming scheme called ``name`` for a population."""
    if name == "scrambled":
        return ScrambledNaming(space)
    if name == "clustered":
        return ClusteredNaming.for_population(space, num_stationary, num_mobile)
    raise ValueError(f"unknown naming scheme {name!r}")

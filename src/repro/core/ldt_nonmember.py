"""Non-member-only LDTs — the design alternative Bristle rejects (§2.3).

"A non-member-only LDT may contain other nodes in addition to Y and those
interested nodes ... [it] shares several similar aspects with the
IP-multicast and the Scribe protocols, which organize the tree by
utilizing the nodes along the routes from the leaves to the root."

Construction (Scribe-style): every interested node routes a JOIN message
through the overlay toward the tree root's key; each node on the route
becomes a *forwarder* and the JOIN stops at the first node already on the
tree.  The tree therefore contains up to
``O(log N)`` forwarders per leaf — ``S(τ) = O((log N)²)`` nodes per tree —
and with M mobile nodes the per-stationary-node *responsibility* grows to
``O((M/(N−M))·(log N)²)``, the upper curve of Figure 3.

To avoid recursively resolving forwarders' own addresses, the paper notes
forwarders "can be elected from the other N − M nodes in the stationary
layer" — so JOINs here are routed through the *stationary* overlay.

This module exists to measure the alternative Bristle argues against:
the Figure-3 empirical bench builds both tree kinds over the same
population and compares measured responsibility.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Set, Tuple

from ..overlay.base import Overlay

__all__ = ["NonMemberTree", "build_non_member_tree"]


@dataclasses.dataclass
class NonMemberTree:
    """A Scribe-style dissemination tree with forwarder (non-member) nodes.

    Attributes
    ----------
    root_key:
        The mobile node whose movement the tree disseminates.
    rendezvous:
        The stationary node owning the root key (the tree's anchor in the
        overlay — JOINs route toward it).
    parent:
        child → parent map over *all* tree nodes (leaves + forwarders).
    members:
        The interested (leaf) nodes.
    forwarders:
        Nodes recruited purely to forward (not interested themselves).
    """

    root_key: int
    rendezvous: int
    parent: Dict[int, int]
    members: Set[int]
    forwarders: Set[int]

    @property
    def all_nodes(self) -> Set[int]:
        """Every node participating in the tree (excluding the root)."""
        return self.members | self.forwarders | {self.rendezvous}

    @property
    def size(self) -> int:
        """Participating node count — the paper's ``S(τ)``."""
        return len(self.all_nodes)

    def depth_of(self, node: int) -> int:
        """Hops from ``node`` up to the root."""
        depth = 0
        cur = node
        while cur != self.root_key:
            cur = self.parent[cur]
            depth += 1
            if depth > len(self.parent) + 1:  # pragma: no cover - corrupt tree
                raise RuntimeError("cycle in non-member tree")
        return depth

    @property
    def depth(self) -> int:
        """Maximum leaf depth."""
        return max((self.depth_of(m) for m in self.members), default=0)

    def edges(self) -> List[Tuple[int, int]]:
        """(parent, child) pairs — one advertisement message each."""
        return [(p, c) for c, p in sorted(self.parent.items())]

    def forwarding_load(self) -> Dict[int, int]:
        """children count per interior node — the responsibility each
        forwarder carries for this tree."""
        load: Dict[int, int] = {}
        for child, parent in self.parent.items():
            load[parent] = load.get(parent, 0) + 1
        return load

    def validate(self) -> None:
        """Structural checks used by property tests."""
        for m in self.members:
            self.depth_of(m)  # raises on a cycle / dangling parent
        for f in self.forwarders:
            assert f not in self.members, f"forwarder {f} is also a member"
        assert self.root_key not in self.parent, "root must have no parent"


def build_non_member_tree(
    root_key: int,
    members: Sequence[int],
    stationary_overlay: Overlay,
) -> NonMemberTree:
    """Build a non-member-only LDT by routing JOINs toward the root key.

    Parameters
    ----------
    root_key:
        The mobile node's hash key (need not be an overlay member — the
        rendezvous is its owner in the stationary layer).
    members:
        Interested nodes.  Members that are stationary-layer participants
        join from themselves; others join from their stationary entry
        point (the owner of their key), mirroring §2.2's injection rule.
    stationary_overlay:
        The overlay whose routes recruit the forwarders.

    Returns
    -------
    NonMemberTree
        Tree spanning the rendezvous, all member entry points, and every
        recruited forwarder.
    """
    rendezvous = stationary_overlay.owner_of(root_key)
    parent: Dict[int, int] = {rendezvous: root_key}
    on_tree: Set[int] = {root_key, rendezvous}
    member_set: Set[int] = set()
    forwarders: Set[int] = set()

    for m in sorted(set(members)):
        if m == root_key:
            raise ValueError("the root does not join its own tree")
        entry = m if stationary_overlay.is_member(m) else stationary_overlay.owner_of(m)
        member_set.add(entry)
        if entry in on_tree:
            continue
        route = stationary_overlay.route(entry, root_key)
        # Graft the JOIN path onto the tree: walk from the joining node
        # toward the rendezvous, stopping at the first on-tree node.
        hops = route.hops
        for child, nxt in zip(hops, hops[1:]):
            if child in on_tree:
                break
            parent[child] = nxt
            on_tree.add(child)
            if nxt != rendezvous and nxt not in member_set:
                forwarders.add(nxt)

    forwarders -= member_set
    forwarders.discard(rendezvous)
    # Any routed-through node that neither asked to join nor anchors the
    # tree is a forwarder.
    interior = set(parent) - member_set - {rendezvous}
    forwarders |= interior
    return NonMemberTree(
        root_key=root_key,
        rendezvous=rendezvous,
        parent=parent,
        members=member_set,
        forwarders=forwarders,
    )

"""Bristle node model.

A :class:`BristleNode` is one participant: its hash key, mobility class
(stationary layer vs mobile layer, §2.1), capacity ``C_X`` and present
workload ``Used_i`` (the Fig-4 inputs), its state-pair table, and the
registration bookkeeping of §2.3.1 — the set ``R(i)`` of nodes registered
*to* it (interested in its movement) and the set of keys it registered
interest *in*.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set

from ..net.address import NetworkAddress
from ..overlay.keyspace import KeySpace
from ..overlay.state import StateTable

__all__ = ["BristleNode", "RegistryEntry"]


@dataclasses.dataclass
class RegistryEntry:
    """One member of ``R(i)``: a node registered to a mobile node.

    Registration carries the registrant's capacity (§2.3.1: "when X
    registers itself to the nodes it is interested in, it also reports its
    capacity C_X") so the Fig-4 scheduler can sort by it.
    """

    key: int
    capacity: float
    registered_at: float = 0.0


class BristleNode:
    """One Bristle participant.

    Parameters
    ----------
    key:
        Hash key (also used as the host id for placement).
    mobile:
        True for mobile-layer nodes that may change attachment points.
    capacity:
        The node's ability ``C_X`` — "the maximum network bandwidth, the
        number of maximum network connections, the computational power,
        etc." (§2.3.1).  The Fig-8 experiments use network connections.
    space:
        Identifier ring (for the node's state table).
    """

    def __init__(
        self,
        key: int,
        mobile: bool,
        capacity: float,
        space: KeySpace,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.key = space.validate(key)
        self.mobile = mobile
        self.capacity = float(capacity)
        self.used = 0.0  # present workload Used_i
        self.state = StateTable(space, owner_key=key)
        #: nodes registered to this node (R(i)) — populated for nodes whose
        #: movement others are interested in (primarily mobile nodes).
        self.registry: Dict[int, RegistryEntry] = {}
        #: keys this node registered interest in (it appears in their R).
        self.subscriptions: Set[int] = set()
        #: current network address; managed by the network's Placement.
        self.address: Optional[NetworkAddress] = None
        #: movement counter (mirrors the address epoch).
        self.moves = 0
        #: bumped whenever anything a Fig-4 LDT depends on changes —
        #: registry membership, capacity of a registrant, or this node's
        #: workload.  Cached dissemination trees compare epochs instead of
        #: rebuilding (moves alone never invalidate a tree: it does not
        #: depend on addresses).
        self.ldt_epoch = 0

    # ------------------------------------------------------------------
    # Capacity / workload
    # ------------------------------------------------------------------
    @property
    def available(self) -> float:
        """Remaining capacity ``Avail_i = C_i − Used_i`` (Fig 4)."""
        return self.capacity - self.used

    def consume(self, amount: float) -> None:
        """Account ``amount`` of workload (may push the node to overload)."""
        if amount < 0:
            raise ValueError("workload amount must be non-negative")
        if amount > 0:
            self.used += amount
            self.ldt_epoch += 1

    def release(self, amount: float) -> None:
        """Release previously-consumed workload."""
        if amount < 0:
            raise ValueError("workload amount must be non-negative")
        released = min(amount, self.used)
        if released > 0:
            self.used -= released
            self.ldt_epoch += 1

    # ------------------------------------------------------------------
    # Registration (§2.3.1)
    # ------------------------------------------------------------------
    def register(self, entry: RegistryEntry) -> None:
        """Admit ``entry`` into ``R(self)`` (idempotent per key)."""
        if entry.key == self.key:
            raise ValueError("a node does not register to itself")
        prev = self.registry.get(entry.key)
        self.registry[entry.key] = entry
        # A pure timestamp refresh leaves the dissemination tree intact.
        if prev is None or prev.capacity != entry.capacity:
            self.ldt_epoch += 1

    def unregister(self, key: int) -> None:
        """Remove ``key`` from ``R(self)`` if present."""
        if self.registry.pop(key, None) is not None:
            self.ldt_epoch += 1

    def registry_entries(self) -> list:
        """``R(self)`` in deterministic (key-sorted) order."""
        return [self.registry[k] for k in sorted(self.registry)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "mobile" if self.mobile else "stationary"
        return f"BristleNode(key={self.key:#x}, {kind}, C={self.capacity})"

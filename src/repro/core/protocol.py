"""Message-level protocol simulation on the discrete-event engine.

The batch experiments (Figures 7–9) account hops and path costs
analytically; this module runs the same protocols as *timed messages* so
latency-level questions can be asked: how long does an LDT advertisement
wave take to reach every registrant?  How long does a discovery
round-trip take?  Message latency between two nodes is their underlay
shortest-path weight (times ``latency_scale``), the same metric §4.1
charges per application-level hop.

The two protocol drivers:

* :class:`AdvertisementWave` — a Fig-4 LDT multicast propagated level by
  level: the root sends to each partition head, each head forwards to its
  children on arrival, and the wave completes when the last registrant
  holds the new address.  Makespan = deepest latency chain, the timed
  counterpart of the ``O(log_k log N)`` depth bound.
* :class:`DiscoveryExchange` — a Fig-2 ``_discovery``: hop-by-hop routing
  of the query through the stationary layer to the record holder, then a
  direct reply.  Round-trip time = query path latency + reply latency.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.metrics import MetricsRegistry
from ..sim.trace import NULL_TRACER, Tracer
from .bristle import BristleNetwork
from .ldt import LDTree

__all__ = ["BristleProtocol", "AdvertisementWave", "DiscoveryExchange"]


@dataclasses.dataclass
class AdvertisementWave:
    """State of one in-flight LDT multicast.

    Attributes
    ----------
    root_key:
        The advertising mobile node.
    started_at:
        Virtual time the wave began.
    arrival_times:
        member key → virtual time its copy of the update arrived.
    expected:
        Number of registrants the wave must reach.
    """

    root_key: int
    started_at: float
    expected: int
    arrival_times: Dict[int, float] = dataclasses.field(default_factory=dict)
    on_complete: Optional[Callable[["AdvertisementWave"], None]] = None

    @property
    def complete(self) -> bool:
        return len(self.arrival_times) >= self.expected

    @property
    def completed_at(self) -> float:
        """Arrival time of the last registrant (valid once complete)."""
        if not self.arrival_times:
            return self.started_at
        return max(self.arrival_times.values())

    @property
    def makespan(self) -> float:
        """Wall-clock (virtual) duration of the wave."""
        return self.completed_at - self.started_at


def _wave_path(wave: AdvertisementWave) -> List[List[float]]:
    """Causal descent record for span attachment: ``[node, arrival]``
    pairs in arrival order (ties broken by key), tracing the LDT wave
    front from root to the last registrant."""
    return [
        [int(node), t]
        for node, t in sorted(wave.arrival_times.items(), key=lambda kv: (kv[1], kv[0]))
    ]


@dataclasses.dataclass
class DiscoveryExchange:
    """State of one in-flight discovery round-trip."""

    requester: int
    target: int
    started_at: float
    resolved_at: Optional[float] = None
    address: Optional[object] = None
    query_hops: int = 0
    on_complete: Optional[Callable[["DiscoveryExchange"], None]] = None

    @property
    def complete(self) -> bool:
        return self.resolved_at is not None

    @property
    def rtt(self) -> float:
        """Round-trip time (valid once complete)."""
        if self.resolved_at is None:
            raise RuntimeError("discovery still in flight")
        return self.resolved_at - self.started_at


class BristleProtocol:
    """Timed protocol driver over a built :class:`BristleNetwork`.

    Parameters
    ----------
    net:
        The network (topology, layers, directory already built).
    engine:
        The event engine supplying virtual time.
    latency_scale:
        Multiplier from underlay path weight to message latency.
    tracer:
        Optional :class:`Tracer` receiving per-message records; defaults
        to the network telemetry's tracer (disabled outside a session).
    metrics:
        Optional registry; defaults to the network telemetry's registry so
        protocol counters land in the same run manifest as everything else.
    """

    def __init__(
        self,
        net: BristleNetwork,
        engine: Engine,
        *,
        latency_scale: float = 1.0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if latency_scale <= 0:
            raise ValueError("latency_scale must be positive")
        self.net = net
        self.engine = engine
        self.latency_scale = latency_scale
        if tracer is not None:
            self.tracer = tracer
        elif net.telemetry.tracer.enabled:
            self.tracer = net.telemetry.tracer
        else:
            self.tracer = NULL_TRACER
        self.metrics = metrics if metrics is not None else net.telemetry.metrics

    # ------------------------------------------------------------------
    # Message primitive
    # ------------------------------------------------------------------
    def latency(self, src: int, dst: int) -> float:
        """Message latency between two nodes (underlay shortest path)."""
        return self.net.network_distance_between_keys(src, dst) * self.latency_scale

    def send(self, src: int, dst: int, kind: str, deliver: Callable[[], None]) -> float:
        """Schedule delivery of one message; returns its arrival time."""
        arrival = self.engine.now + self.latency(src, dst)
        self.metrics.counter(f"messages.{kind}").inc()
        self.metrics.histogram("latency." + kind).observe(arrival - self.engine.now)
        self.tracer.emit(self.engine.now, "send", kind=kind, src=src, dst=dst)
        self.engine.schedule(
            arrival, deliver, kind=EventKind.MESSAGE, label=f"{kind}:{src:#x}->{dst:#x}"
        )
        return arrival

    # ------------------------------------------------------------------
    # LDT advertisement (Fig 4, timed)
    # ------------------------------------------------------------------
    def advertise(
        self,
        mobile_key: int,
        *,
        tree: Optional[LDTree] = None,
        on_complete: Optional[Callable[[AdvertisementWave], None]] = None,
    ) -> AdvertisementWave:
        """Start a timed LDT multicast of ``mobile_key``'s current address.

        Returns the wave object immediately; run the engine to progress
        it.  ``on_complete`` fires when the last registrant is reached.
        """
        if tree is None:
            tree = self.net.build_ldt_for(mobile_key)
        wave = AdvertisementWave(
            root_key=mobile_key,
            started_at=self.engine.now,
            expected=tree.num_members,
            on_complete=on_complete,
        )
        span_id = (
            self.tracer.span_begin(
                self.engine.now,
                "protocol.advertise",
                root=mobile_key,
                members=tree.num_members,
            )
            if self.tracer.enabled
            else 0
        )
        if tree.num_members == 0:
            self.tracer.span_end(self.engine.now, span_id, makespan=0.0)
            if on_complete is not None:
                on_complete(wave)
            return wave

        def forward(sender: int) -> None:
            children = tree.children_of(sender)
            if children:
                self.metrics.histogram("ldt.multicast.fanout").observe(len(children))
            for child in children:
                self.send(
                    sender,
                    child,
                    "advertise",
                    deliver=lambda c=child: arrive(c),
                )

        def arrive(node_key: int) -> None:
            wave.arrival_times[node_key] = self.engine.now
            self.tracer.emit(
                self.engine.now, "advertised", root=mobile_key, node=node_key
            )
            # Update the registrant's cached state-pair.
            registrant = self.net.nodes.get(node_key)
            if registrant is not None:
                from ..overlay.state import StatePair

                mobile_node = self.net.nodes[wave.root_key]
                pair = registrant.state.get(wave.root_key)
                if pair is None:
                    registrant.state.insert(
                        StatePair(
                            key=wave.root_key,
                            addr=mobile_node.address,
                            ttl=self.net.config.state_ttl,
                            refreshed_at=self.engine.now,
                        )
                    )
                else:
                    pair.refresh(
                        self.engine.now,
                        addr=mobile_node.address,
                        ttl=self.net.config.state_ttl,
                    )
            forward(node_key)
            if wave.complete:
                self.metrics.histogram("advertise.makespan").observe(wave.makespan)
                if span_id:
                    self.tracer.span_end(
                        self.engine.now,
                        span_id,
                        makespan=wave.makespan,
                        path=_wave_path(wave),
                    )
                if wave.on_complete is not None:
                    wave.on_complete(wave)

        forward(mobile_key)
        return wave

    def advertise_many(
        self,
        keys: Sequence[int],
        *,
        tree: Optional[LDTree] = None,
        on_complete: Optional[Callable[[AdvertisementWave], None]] = None,
    ) -> AdvertisementWave:
        """Start one coalesced multicast for co-hosted mobile ``keys``.

        The batched counterpart of :meth:`advertise`: a single wave runs
        over the union dissemination tree
        (:meth:`BristleNetwork.build_ldt_for_group`), and each arriving
        registrant refreshes its cached state-pair for *every* batch key it
        is registered to — one message per registrant instead of one per
        (key, registrant) subscription.
        """
        group = sorted({int(k) for k in keys})
        if not group:
            raise ValueError("advertise_many needs at least one key")
        if tree is None:
            _, tree = self.net.build_ldt_for_group(group)
        wave = AdvertisementWave(
            root_key=tree.root_key,
            started_at=self.engine.now,
            expected=tree.num_members,
            on_complete=on_complete,
        )
        span_id = (
            self.tracer.span_begin(
                self.engine.now,
                "protocol.advertise_many",
                root=tree.root_key,
                batch=len(group),
                members=tree.num_members,
            )
            if self.tracer.enabled
            else 0
        )
        if tree.num_members == 0:
            self.tracer.span_end(self.engine.now, span_id, makespan=0.0)
            if on_complete is not None:
                on_complete(wave)
            return wave

        def forward(sender: int) -> None:
            children = tree.children_of(sender)
            if children:
                self.metrics.histogram("ldt.multicast.fanout").observe(len(children))
            for child in children:
                self.send(
                    sender,
                    child,
                    "advertise",
                    deliver=lambda c=child: arrive(c),
                )

        def arrive(node_key: int) -> None:
            wave.arrival_times[node_key] = self.engine.now
            self.tracer.emit(
                self.engine.now, "advertised", root=tree.root_key, node=node_key
            )
            registrant = self.net.nodes.get(node_key)
            if registrant is not None:
                from ..overlay.state import StatePair

                # One delivery refreshes every co-hosted subscription.
                for mk in group:
                    mobile_node = self.net.nodes.get(mk)
                    if mobile_node is None or node_key not in mobile_node.registry:
                        continue
                    pair = registrant.state.get(mk)
                    if pair is None:
                        registrant.state.insert(
                            StatePair(
                                key=mk,
                                addr=mobile_node.address,
                                ttl=self.net.config.state_ttl,
                                refreshed_at=self.engine.now,
                            )
                        )
                    else:
                        pair.refresh(
                            self.engine.now,
                            addr=mobile_node.address,
                            ttl=self.net.config.state_ttl,
                        )
            forward(node_key)
            if wave.complete:
                self.metrics.histogram("advertise.makespan").observe(wave.makespan)
                if span_id:
                    self.tracer.span_end(
                        self.engine.now,
                        span_id,
                        makespan=wave.makespan,
                        path=_wave_path(wave),
                    )
                if wave.on_complete is not None:
                    wave.on_complete(wave)

        forward(tree.root_key)
        return wave

    # ------------------------------------------------------------------
    # Discovery (Fig 2, timed)
    # ------------------------------------------------------------------
    def discover(
        self,
        requester: int,
        target: int,
        *,
        on_complete: Optional[Callable[[DiscoveryExchange], None]] = None,
    ) -> DiscoveryExchange:
        """Start a timed discovery for ``target``'s address.

        The query routes hop-by-hop through the stationary layer (each
        hop is a message); the holder replies directly to the requester.
        """
        exchange = DiscoveryExchange(
            requester=requester,
            target=target,
            started_at=self.engine.now,
            on_complete=on_complete,
        )
        span_id = (
            self.tracer.span_begin(
                self.engine.now,
                "protocol.discover",
                requester=requester,
                target=target,
            )
            if self.tracer.enabled
            else 0
        )
        entry = (
            requester
            if not self.net.is_mobile(requester)
            else self.net.stationary_layer.owner_of(requester)
        )
        stat_route = self.net.stationary_layer.route(entry, target)
        path: List[int] = ([requester] if entry != requester else []) + list(
            stat_route.hops
        )
        exchange.query_hops = len(path) - 1

        def reply_from(holder: int) -> None:
            addr = self.net.directory.resolve_at(
                holder, target, now=self.engine.now
            ) or self.net.directory.resolve(target, now=self.engine.now)

            def deliver_reply() -> None:
                exchange.resolved_at = self.engine.now
                exchange.address = addr
                self.metrics.histogram("discover.rtt").observe(exchange.rtt)
                self.tracer.emit(
                    self.engine.now,
                    "discovered",
                    requester=requester,
                    target=target,
                    found=addr is not None,
                )
                if span_id:
                    self.tracer.span_end(
                        self.engine.now,
                        span_id,
                        rtt=exchange.rtt,
                        hops=exchange.query_hops,
                        found=addr is not None,
                        path=[
                            [a, b, self.latency(a, b)]
                            for a, b in zip(path, path[1:])
                        ],
                    )
                if exchange.on_complete is not None:
                    exchange.on_complete(exchange)

            self.send(holder, requester, "discover-reply", deliver_reply)

        def hop(index: int) -> None:
            if index == len(path) - 1:
                reply_from(path[-1])
                return
            self.send(
                path[index],
                path[index + 1],
                "discover",
                deliver=lambda: hop(index + 1),
            )

        if len(path) == 1:
            # The requester is itself the holder.
            reply_from(path[0])
        else:
            hop(0)
        return exchange

"""DHT data storage over the mobile layer.

The paper's introduction motivates Bristle with exactly this workload:
under a Type A architecture node movement "incurs extra maintenance
overhead and unavailability of stored data", while Bristle keeps keys
stable so "the old state of a node can be retained".

:class:`DataStore` implements the standard HS-P2P storage contract on a
:class:`~repro.core.bristle.BristleNetwork`:

* ``put(key, value)`` stores the item at the owner of ``key`` plus
  ``replication − 1`` ring-adjacent replicas (§2.3.2's availability rule);
* ``get(source, key)`` routes a lookup from ``source`` (paying Fig-2
  address resolutions for mobile hops) and reads the item at the first
  live holder;
* membership churn triggers **handoff**: a joining node takes over the
  items it now owns, a leaving node pushes its items to the new owners.

Since a node's hash key survives movement, the placement never changes
when nodes move — which is the whole point, and what the availability
tests pin.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set

import numpy as np

from .bristle import BristleNetwork
from .routing import RouteTrace, route_with_resolution

__all__ = ["DataStore", "StoredItem", "GetResult"]


@dataclasses.dataclass
class StoredItem:
    """One stored (key, value) with provenance."""

    key: int
    value: Any
    stored_at: float
    version: int = 0


@dataclasses.dataclass
class GetResult:
    """Outcome of a :meth:`DataStore.get`."""

    key: int
    value: Optional[Any]
    holder: Optional[int]
    trace: RouteTrace

    @property
    def found(self) -> bool:
        return self.holder is not None

    @property
    def app_hops(self) -> int:
        return self.trace.app_hops

    @property
    def path_cost(self) -> float:
        return self.trace.path_cost


class DataStore:
    """Replicated key-value storage on the mobile layer.

    Parameters
    ----------
    net:
        The Bristle network providing membership, routing and ownership.
    replication:
        Holders per item (owner + ring-adjacent replicas); defaults to the
        network's configured replication factor.
    """

    def __init__(self, net: BristleNetwork, replication: Optional[int] = None) -> None:
        self.net = net
        self.replication = (
            replication if replication is not None else net.config.replication
        )
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        #: node key → {data key → item}
        self._shelves: Dict[int, Dict[int, StoredItem]] = {}
        #: nodes considered failed (their shelves are unreachable)
        self._failed: Set[int] = set()
        self.put_count = 0
        self.get_count = 0
        self.handoff_items = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def holders_for(self, key: int) -> List[int]:
        """Owner plus ring-adjacent replicas among *mobile-layer* members."""
        overlay = self.net.mobile_layer
        keys = overlay.keys
        n = int(keys.size)
        count = min(self.replication, n)
        owner = overlay.owner_of(key)
        idx = int(np.searchsorted(keys, owner))
        holders = [owner]
        step = 1
        while len(holders) < count:
            right = int(keys[(idx + step) % n])
            if right not in holders:
                holders.append(right)
            if len(holders) >= count:
                break
            left = int(keys[(idx - step) % n])
            if left not in holders:
                holders.append(left)
            step += 1
        return holders

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def put(self, key: int, value: Any) -> List[int]:
        """Store ``value`` under ``key``; returns the holder node keys."""
        self.net.space.validate(key)
        holders = self.holders_for(key)
        version = 0
        for h in holders:
            shelf = self._shelves.setdefault(h, {})
            prev = shelf.get(key)
            if prev is not None:
                version = max(version, prev.version + 1)
        item_version = version
        for h in holders:
            self._shelves.setdefault(h, {})[key] = StoredItem(
                key=key, value=value, stored_at=self.net.now, version=item_version
            )
        self.put_count += 1
        return holders

    def get(self, source: int, key: int) -> GetResult:
        """Route a lookup for ``key`` from node ``source`` and read it.

        The route pays the usual mobile-layer address resolutions; the
        read happens at the route's terminus (the owner) or, if that
        holder failed, at the first live replica (one extra ring hop per
        fallback is already included in the trace cost model for the
        common case; fallbacks reuse the terminus position).
        """
        self.get_count += 1
        trace = route_with_resolution(self.net, source, key)
        holders = self.holders_for(key)
        for h in holders:
            if h in self._failed:
                continue
            item = self._shelves.get(h, {}).get(key)
            if item is not None:
                return GetResult(key=key, value=item.value, holder=h, trace=trace)
        return GetResult(key=key, value=None, holder=None, trace=trace)

    def contains(self, key: int) -> bool:
        """True when at least one live holder stores ``key``."""
        return any(
            key in self._shelves.get(h, {})
            for h in self.holders_for(key)
            if h not in self._failed
        )

    # ------------------------------------------------------------------
    # Churn integration
    # ------------------------------------------------------------------
    def handoff_after_join(self, new_node: int) -> int:
        """Re-place items whose holder set now includes ``new_node``.

        Called after the node joined the mobile layer.  Returns the
        number of items copied.
        """
        moved = 0
        # Items stored anywhere whose holder set changed: checking the
        # ring neighbours of the newcomer suffices (placement is local).
        for shelf_owner in list(self._shelves):
            for key, item in list(self._shelves[shelf_owner].items()):
                holders = self.holders_for(key)
                if new_node in holders and key not in self._shelves.get(new_node, {}):
                    self._shelves.setdefault(new_node, {})[key] = item
                    moved += 1
                # Drop from nodes no longer responsible.
                if shelf_owner not in holders:
                    del self._shelves[shelf_owner][key]
        self.handoff_items += moved
        return moved

    def handoff_before_leave(self, leaving: int) -> int:
        """Push the leaving node's items to their new holders.

        Call *after* removing ``leaving`` from the mobile layer (so the
        new ownership is visible) but before discarding the node.
        """
        shelf = self._shelves.pop(leaving, {})
        moved = 0
        for key, item in shelf.items():
            for h in self.holders_for(key):
                if key not in self._shelves.get(h, {}):
                    self._shelves.setdefault(h, {})[key] = item
                    moved += 1
        self.handoff_items += moved
        return moved

    def drop_failed_node(self, node: int) -> None:
        """Mark a holder as failed (its shelf becomes unreachable) —
        replicas keep items available (§2.3.2)."""
        self._failed.add(node)

    def restore_node(self, node: int) -> None:
        """Bring a failed holder back (its shelf becomes readable)."""
        self._failed.discard(node)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def items_at(self, node: int) -> Dict[int, StoredItem]:
        """Shelf of one node (empty dict for unknown nodes)."""
        return dict(self._shelves.get(node, {}))

    def shelf_sizes(self) -> Dict[int, int]:
        """Item count per (non-empty) holder shelf."""
        return {n: len(s) for n, s in self._shelves.items() if s}

    def total_copies(self) -> int:
        """Total stored copies across all shelves."""
        return sum(len(s) for s in self._shelves.values())

    def availability(self, keys: List[int]) -> float:
        """Fraction of ``keys`` with at least one live replica."""
        if not keys:
            return 1.0
        return sum(1 for k in keys if self.contains(k)) / len(keys)

"""High-level live-simulation facade.

Bundles the pieces a running Bristle deployment needs — network, event
engine, timed protocol driver, mobility process and a binding policy —
behind one object, so examples and downstream users write::

    sim = LiveSimulation.create(num_stationary=100, num_mobile=50, seed=7)
    sim.run(until=120.0)
    print(sim.summary())

instead of wiring five subsystems by hand.  All components stay
accessible (``sim.net``, ``sim.engine``, ...) for anything the facade
does not cover.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..sim.engine import Engine
from ..sim.trace import Tracer
from .bristle import BristleNetwork
from .config import BristleConfig
from .mobility import MobilityProcess
from .protocol import BristleProtocol
from .statebinding import BindingPolicy, EarlyBinding, LateBinding

__all__ = ["LiveSimulation"]


@dataclasses.dataclass
class LiveSimulation:
    """A Bristle network animated on the event engine.

    Build with :meth:`create`; drive with :meth:`run`; inspect with
    :meth:`summary`.
    """

    net: BristleNetwork
    engine: Engine
    protocol: BristleProtocol
    mobility: Optional[MobilityProcess]
    binding: Optional[BindingPolicy]
    tracer: Tracer

    @classmethod
    def create(
        cls,
        num_stationary: int,
        num_mobile: int,
        *,
        config: Optional[BristleConfig] = None,
        seed: int = 1,
        router_count: Optional[int] = None,
        registry_size: Optional[int] = None,
        move_rate: float = 0.0,
        binding: str = "early",
        latency_scale: float = 1e-3,
        trace: bool = False,
    ) -> "LiveSimulation":
        """Build a fully-wired simulation.

        Parameters
        ----------
        move_rate:
            Per-node moves per unit time; 0 disables mobility.
        binding:
            ``"early"``, ``"late"`` or ``"none"``.
        latency_scale:
            Multiplier from path weight to message latency (the default
            keeps protocol waves much faster than typical move gaps).
        trace:
            Enable the structured tracer (costs memory; default off).
        """
        cfg = config if config is not None else BristleConfig(seed=seed, naming="scrambled")
        net = BristleNetwork(
            cfg, num_stationary, num_mobile, router_count=router_count
        )
        net.setup_random_registrations(registry_size=registry_size)
        engine = Engine()
        tracer = Tracer(enabled=trace)
        protocol = BristleProtocol(
            net, engine, latency_scale=latency_scale, tracer=tracer
        )

        binding_policy: Optional[BindingPolicy] = None
        if binding == "early":
            binding_policy = EarlyBinding(net, engine)
        elif binding == "late":
            binding_policy = LateBinding(net, engine)
        elif binding != "none":
            raise ValueError(f"binding must be early/late/none, got {binding!r}")
        if binding_policy is not None:
            binding_policy.start()

        mobility: Optional[MobilityProcess] = None
        if move_rate > 0:
            mobility = MobilityProcess(
                net=net,
                engine=engine,
                rate=move_rate,
                advertise=False,
                on_move=lambda rep: protocol.advertise(rep.key),
            )
            mobility.start()
        return cls(
            net=net,
            engine=engine,
            protocol=protocol,
            mobility=mobility,
            binding=binding_policy,
            tracer=tracer,
        )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, until: float) -> float:
        """Advance virtual time to ``until``; returns the final time."""
        result = self.engine.run(until=until)
        self.net.now = self.engine.now
        return result

    def stop(self) -> None:
        """Silence mobility and binding refreshes (pending events drain)."""
        if self.mobility is not None:
            self.mobility.stop()
        if self.binding is not None:
            self.binding.stop()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def cache_warmness(self) -> float:
        """Fraction of (registrant, mobile) caches holding the current
        address right now."""
        warm = total = 0
        for mk in self.net.mobile_keys:
            node = self.net.nodes[mk]
            for entry in node.registry_entries():
                total += 1
                cached = self.net.nodes[entry.key].state.get(mk)
                if cached is not None and cached.addr == node.address:
                    warm += 1
        return warm / total if total else 1.0

    def summary(self) -> Dict[str, float]:
        """One-glance state of the simulation."""
        out: Dict[str, float] = {
            "virtual_time": self.engine.now,
            "events_dispatched": float(self.engine.dispatched),
            "nodes": float(self.net.num_nodes),
            "mobile_nodes": float(self.net.num_mobile),
            "moves": float(self.mobility.moves_performed) if self.mobility else 0.0,
            "cache_warmness": self.cache_warmness(),
        }
        for name, counter in self.protocol.metrics.counters.items():
            out[name] = float(counter.value)
        if self.binding is not None:
            out["binding_messages"] = float(self.binding.stats.total_messages)
        return out

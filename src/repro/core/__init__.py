"""Bristle core — the paper's primary contribution.

The two-layer mobile HS-P2P architecture: configuration, naming schemes,
nodes, the network facade, Figure-2 routing with address resolution,
location management (register/update/join/leave), location dissemination
trees, lease-based state binding, mobility workloads and the paper's
analytic models.
"""

from .analysis import (
    advertisement_hops,
    clustered_route_is_stationary,
    expected_route_hops,
    ldt_size_member_only,
    ldt_size_non_member_only,
    nabla,
    registrations_per_node,
    responsibility_curves,
    responsibility_member_only,
    responsibility_non_member_only,
    total_registrations,
)
from .bristle import BristleNetwork, DiscoveryResult, MoveReport
from .config import BristleConfig
from .failure import FailureDetector, Suspicion
from .join import JoinReport, figure5_join
from .ldt import LDTMember, LDTNode, LDTree, build_ldt, ldt_depth_bound
from .ldt_forest import (
    ForestSpec,
    LDTForest,
    build_forest_columns,
    build_ldt_forest,
    forest_depths,
)
from .ldt_nonmember import NonMemberTree, build_non_member_tree
from .location import LocationDirectory, LocationRecord, RegistrationManager
from .mobility import MobilityProcess, shuffle_all_mobile
from .naming import ClusteredNaming, NameAssignment, ScrambledNaming, make_naming
from .node import BristleNode, RegistryEntry
from .protocol import AdvertisementWave, BristleProtocol, DiscoveryExchange
from .routing import HopRecord, RouteTrace, route_preferring_resolved, route_with_resolution
from .storage import DataStore, GetResult, StoredItem
from .simulation import LiveSimulation
from .statebinding import BindingPolicy, BindingStats, EarlyBinding, LateBinding

__all__ = [
    "advertisement_hops",
    "clustered_route_is_stationary",
    "expected_route_hops",
    "ldt_size_member_only",
    "ldt_size_non_member_only",
    "nabla",
    "registrations_per_node",
    "responsibility_curves",
    "responsibility_member_only",
    "responsibility_non_member_only",
    "total_registrations",
    "BristleNetwork",
    "DiscoveryResult",
    "MoveReport",
    "BristleConfig",
    "FailureDetector",
    "Suspicion",
    "JoinReport",
    "figure5_join",
    "LDTMember",
    "LDTNode",
    "LDTree",
    "build_ldt",
    "ldt_depth_bound",
    "ForestSpec",
    "LDTForest",
    "build_forest_columns",
    "build_ldt_forest",
    "forest_depths",
    "NonMemberTree",
    "build_non_member_tree",
    "LocationDirectory",
    "LocationRecord",
    "RegistrationManager",
    "MobilityProcess",
    "shuffle_all_mobile",
    "ClusteredNaming",
    "NameAssignment",
    "ScrambledNaming",
    "make_naming",
    "BristleNode",
    "RegistryEntry",
    "AdvertisementWave",
    "BristleProtocol",
    "DiscoveryExchange",
    "HopRecord",
    "RouteTrace",
    "LiveSimulation",
    "DataStore",
    "GetResult",
    "StoredItem",
    "route_preferring_resolved",
    "route_with_resolution",
    "BindingPolicy",
    "BindingStats",
    "EarlyBinding",
    "LateBinding",
]

"""Columnar LDT forest — batch construction of Fig-4 trees as flat arrays.

:func:`repro.core.ldt.build_ldt` runs the Fig-4 advertisement recursion
one registry at a time: a Python ``sorted`` per recursion step, list
slicing per partition, one ``LDTNode`` allocation per member.  At the
scales of the columnar state engine (§ "Columnar state & million-node
scale" in docs/performance.md) the network advertises thousands of trees
per round, so this module rebuilds the same recursion as a
struct-of-arrays **forest**: every registry in the batch is one slice of
flat numpy columns and the whole batch advances level by level with
array kernels.

Why a level-synchronous kernel can reproduce the recursion exactly
------------------------------------------------------------------
Fig 4 sorts the registry once by ``(-capacity, secondary)`` and then
only ever re-sorts *subsets in original order* — Python's sort is
stable, so every recursive ``sorted`` call is the identity.  After the
single sort, the pending set handed to any sender is an arithmetic
progression of positions in the sorted order: round-robin partition
``j`` of a progression ``(start a, stride s, count c)`` split ``k`` ways
is itself the progression ``(a + j·s, k·s, ⌊(c−j−1)/k⌋ + 1)``, and the
overloaded delegation step is exactly the ``k = 1`` case.  A "task" is
therefore three integers plus the sender's availability, and one level
of the whole forest is a handful of ``repeat``/``cumsum`` operations
over the task arrays — no per-member Python.

Column layout
-------------
``tree_offsets`` (``T+1`` CSR offsets) slices every member column by
tree; member columns are stored in **capacity-sort order** (the single
``np.lexsort`` over the whole batch):

========== ======= ====================================================
column     dtype   meaning
========== ======= ====================================================
tree_id    int64   owning tree index (non-decreasing)
key        int64   member key
capacity   float64 member ``C``
used       float64 member ``Used`` (``Avail = C − Used``)
parent     int64   parent *key* (the tree root for first-tier members)
parent_row int64   global row of the parent member, ``-1`` for the root
level      int64   tree level (members start at 1; the root is level 0)
assigned   int64   partition size handed to this member (≥ 1)
========== ======= ====================================================

Canonical edge order
--------------------
:meth:`LDTForest.edge_arrays` emits edges **level-major**: grouped by
tree, then by child level, then by the child's capacity-sort position.
This is the natural order the level-synchronous kernel produces them
in.  :meth:`LDTForest.tree` instead replays the sequential recursion's
DFS pre-order, so the materialised :class:`~repro.core.ldt.LDTree` is
bit-identical to ``build_ldt`` — same ``nodes`` insertion order, same
``edges`` list, same ``children`` order (the parity guarantee the test
suite enforces).
"""

from __future__ import annotations

import dataclasses
from itertools import chain
from operator import attrgetter
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .ldt import LDTMember, LDTNode, LDTree

__all__ = [
    "ForestSpec",
    "LDTForest",
    "build_ldt_forest",
    "build_forest_columns",
    "forest_depths",
    "forest_from_columns",
]

_I64 = np.int64
_F64 = np.float64


@dataclasses.dataclass(frozen=True)
class ForestSpec:
    """One tree's worth of input: the Fig-4 arguments of ``build_ldt``."""

    root: LDTMember
    registry: Sequence[LDTMember]
    unit_cost: float = 1.0
    tie_break: Optional[Callable[[LDTMember], float]] = None


def build_forest_columns(
    tree_offsets: np.ndarray,
    avail: np.ndarray,
    root_avail: np.ndarray,
    unit_cost: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The level-synchronous Fig-4 kernel over pre-sorted member columns.

    ``avail`` holds member availabilities in capacity-sort order (the
    caller owns the lexsort); ``root_avail``/``unit_cost`` are per-tree.
    Returns ``(level, assigned, parent_row)`` — ``parent_row`` is the
    global row of the parent member, ``-1`` when the parent is the root.

    This entry point is what the scale engine uses directly: it never
    touches member objects, so a 10⁶-member forest costs a few array
    passes per tree level.
    """
    tree_offsets = np.asarray(tree_offsets, dtype=_I64)
    avail = np.asarray(avail, dtype=_F64)
    root_avail = np.asarray(root_avail, dtype=_F64)
    unit_cost = np.asarray(unit_cost, dtype=_F64)
    if np.any(unit_cost <= 0):
        raise ValueError("unit_cost must be positive")

    n_members = int(avail.size)
    sizes = np.diff(tree_offsets)
    level = np.zeros(n_members, dtype=_I64)
    assigned = np.zeros(n_members, dtype=_I64)
    parent_row = np.full(n_members, -1, dtype=_I64)

    live = sizes > 0
    # One task per non-empty tree: the root advertises the whole registry,
    # which after the sort is the progression (start=offset, stride=1).
    t_start = tree_offsets[:-1][live]
    t_stride = np.ones(int(live.sum()), dtype=_I64)
    t_count = sizes[live]
    t_avail = root_avail[live]
    t_cost = unit_cost[live]
    t_sender = np.full(t_start.size, -1, dtype=_I64)

    lvl = 0
    while t_start.size:
        lvl += 1
        # Fan-out per task: the overloaded branch (Avail − v ≤ 0) delegates
        # to a single head — structurally the k = 1 partition case.
        k = np.floor(t_avail / t_cost).astype(_I64)
        np.clip(k, 1, t_count, out=k)
        k = np.where(t_avail - t_cost <= 0.0, np.ones_like(k), k)

        total = int(k.sum())
        task_of = np.repeat(np.arange(k.size, dtype=_I64), k)
        j = np.arange(total, dtype=_I64) - np.repeat(np.cumsum(k) - k, k)

        stride = t_stride[task_of]
        child = t_start[task_of] + j * stride
        # Partition j of an arithmetic progression split k ways has
        # ⌊(c − j − 1)/k⌋ + 1 elements (head included).
        child_assigned = (t_count[task_of] - j - 1) // k[task_of] + 1

        level[child] = lvl
        assigned[child] = child_assigned
        parent_row[child] = t_sender[task_of]

        # Each head recurses on its partition minus itself: the progression
        # (child + k·s, k·s, assigned − 1).
        rest = child_assigned - 1
        keep = rest > 0
        new_stride = k[task_of] * stride
        t_start = child[keep] + new_stride[keep]
        t_stride = new_stride[keep]
        t_count = rest[keep]
        t_avail = avail[child[keep]]
        t_cost = t_cost[task_of][keep]
        t_sender = child[keep]
    return level, assigned, parent_row


def forest_depths(tree_offsets: np.ndarray, level: np.ndarray) -> np.ndarray:
    """Per-tree depth (max member level; 0 for empty trees)."""
    tree_offsets = np.asarray(tree_offsets, dtype=_I64)
    level = np.asarray(level, dtype=_I64)
    sizes = np.diff(tree_offsets)
    depths = np.zeros(sizes.size, dtype=_I64)
    live = sizes > 0
    if level.size and bool(live.any()):
        depths[live] = np.maximum.reduceat(level, tree_offsets[:-1][live])
    return depths


def forest_from_columns(
    tree_offsets: np.ndarray,
    avail: np.ndarray,
    root_avail: np.ndarray,
    unit_cost: np.ndarray,
    level: Optional[np.ndarray] = None,
    assigned: Optional[np.ndarray] = None,
    parent_row: Optional[np.ndarray] = None,
    *,
    key: Optional[np.ndarray] = None,
    root_key: Optional[np.ndarray] = None,
) -> "LDTForest":
    """Assemble an :class:`LDTForest` from pure availability columns.

    The scale engine builds trees without member objects or even member
    keys; this helper synthesises keys (global row index; roots get
    ``-(tree+1)`` so they never collide) unless the caller provides real
    ones, and runs :func:`build_forest_columns` when the level columns
    are not already built.  ``capacity`` is set to ``avail`` with
    ``used = 0`` — equivalent for every Fig-4 decision.
    """
    tree_offsets = np.asarray(tree_offsets, dtype=_I64)
    avail = np.asarray(avail, dtype=_F64)
    root_avail = np.asarray(root_avail, dtype=_F64)
    unit_cost = np.asarray(unit_cost, dtype=_F64)
    if level is None or assigned is None or parent_row is None:
        level, assigned, parent_row = build_forest_columns(
            tree_offsets, avail, root_avail, unit_cost
        )
    n_trees = int(tree_offsets.size - 1)
    n_members = int(avail.size)
    if key is None:
        key = np.arange(n_members, dtype=_I64)
    else:
        key = np.asarray(key).astype(_I64)
    if root_key is None:
        root_key = -(np.arange(n_trees, dtype=_I64) + 1)
    else:
        root_key = np.asarray(root_key).astype(_I64)
    tree_id = np.repeat(np.arange(n_trees, dtype=_I64), np.diff(tree_offsets))
    parent = np.where(
        parent_row >= 0, key[np.maximum(parent_row, 0)], root_key[tree_id]
    ).astype(_I64)
    return LDTForest(
        tree_offsets=tree_offsets,
        tree_id=tree_id,
        key=key,
        capacity=avail,
        used=np.zeros(n_members, dtype=_F64),
        parent=parent,
        parent_row=np.asarray(parent_row, dtype=_I64),
        level=np.asarray(level, dtype=_I64),
        assigned=np.asarray(assigned, dtype=_I64),
        root_key=root_key,
        root_capacity=root_avail,
        root_used=np.zeros(n_trees, dtype=_F64),
        unit_cost=unit_cost,
    )


@dataclasses.dataclass
class LDTForest:
    """A batch of materialised advertisement trees in flat columns.

    See the module docstring for the column layout and the canonical
    edge-order contract.  Forests are immutable after construction.
    """

    tree_offsets: np.ndarray
    tree_id: np.ndarray
    key: np.ndarray
    capacity: np.ndarray
    used: np.ndarray
    parent: np.ndarray
    parent_row: np.ndarray
    level: np.ndarray
    assigned: np.ndarray
    root_key: np.ndarray
    root_capacity: np.ndarray
    root_used: np.ndarray
    unit_cost: np.ndarray

    @property
    def num_trees(self) -> int:
        return int(self.tree_offsets.size - 1)

    @property
    def num_members(self) -> int:
        return int(self.key.size)

    def sizes(self) -> np.ndarray:
        """Members per tree."""
        return np.diff(self.tree_offsets)

    def message_counts(self) -> np.ndarray:
        """Advertisement messages per tree — one per member (§2.3)."""
        return self.sizes()

    def depths(self) -> np.ndarray:
        """Per-tree depth (max member level)."""
        return forest_depths(self.tree_offsets, self.level)

    def level_histogram(self) -> np.ndarray:
        """Member count per level across the whole forest (index = level;
        entry 0 is always 0 — roots are not member rows)."""
        if self.level.size == 0:
            return np.zeros(1, dtype=_I64)
        return np.bincount(self.level)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All edges as ``(parent_keys, child_keys)`` in canonical order.

        Canonical columnar order is **level-major**: by tree, then child
        level, then the child's capacity-sort position — the order the
        level-synchronous kernel discovers them.  (``tree(i).edges``
        instead replays the sequential DFS pre-order.)
        """
        order = np.lexsort(
            (np.arange(self.level.size, dtype=_I64), self.level, self.tree_id)
        )
        return self.parent[order], self.key[order]

    def tree(self, index: int) -> LDTree:
        """Materialise tree ``index`` bit-identically to ``build_ldt``.

        Replays the recursion's DFS pre-order (children in ascending
        capacity-sort position) so the resulting ``nodes`` insertion
        order, ``edges`` list and ``children`` lists match the
        sequential builder exactly.
        """
        lo = int(self.tree_offsets[index])
        hi = int(self.tree_offsets[index + 1])
        root = LDTMember(
            key=int(self.root_key[index]),
            capacity=float(self.root_capacity[index]),
            used=float(self.root_used[index]),
        )
        nodes = {root.key: LDTNode(member=root, level=0, parent=None)}
        edges: List[Tuple[int, int]] = []
        if hi > lo:
            parents = self.parent_row[lo:hi]
            # Group children by parent row: stable argsort keeps siblings
            # in ascending row order == ascending partition index.
            order = np.argsort(parents, kind="stable")
            grouped = parents[order]

            def child_rows(sender_row: int) -> np.ndarray:
                """Local indices of ``sender_row``'s children (global row)."""
                i0 = int(np.searchsorted(grouped, sender_row, side="left"))
                i1 = int(np.searchsorted(grouped, sender_row, side="right"))
                return order[i0:i1]

            stack = list(child_rows(-1)[::-1])
            while stack:
                local = int(stack.pop())
                row = lo + local
                key = int(self.key[row])
                parent_key = int(self.parent[row])
                nodes[key] = LDTNode(
                    member=LDTMember(
                        key=key,
                        capacity=float(self.capacity[row]),
                        used=float(self.used[row]),
                    ),
                    level=int(self.level[row]),
                    parent=parent_key,
                    assigned=int(self.assigned[row]),
                )
                nodes[parent_key].children.append(key)
                edges.append((parent_key, key))
                stack.extend(child_rows(row)[::-1])
        return LDTree(root_key=root.key, nodes=nodes, edges=edges)

    def trees(self) -> Iterator[LDTree]:
        """Materialise every tree in batch order."""
        return (self.tree(t) for t in range(self.num_trees))

    def validate(self) -> None:
        """Vectorised structural invariants over the whole forest.

        The forest-column counterpart of :meth:`LDTree.validate` plus the
        Fig-4 capacity bound — used by ``repro.sanitize.check_ldt_forest``.
        """
        n = self.num_members
        offsets = self.tree_offsets
        assert offsets[0] == 0 and offsets[-1] == n, "tree_offsets must cover columns"
        assert bool((np.diff(offsets) >= 0).all()), "tree_offsets must be monotonic"
        expected_tree = np.repeat(np.arange(self.num_trees, dtype=_I64), self.sizes())
        assert bool((self.tree_id == expected_tree).all()), "tree_id disagrees with offsets"
        if n == 0:
            return
        assert bool((self.level >= 1).all()), "members start at level 1"
        assert bool((self.assigned >= 1).all()), "every member heads a partition"

        has_parent = self.parent_row >= 0
        roots = ~has_parent
        assert bool((self.level[roots] == 1).all()), "root children must be level 1"
        root_of_tree = self.root_key[self.tree_id]
        assert bool(
            (self.parent[roots] == root_of_tree[roots]).all()
        ), "first-tier parents must be the tree root"
        prow = self.parent_row[has_parent]
        assert bool(
            (self.tree_id[prow] == self.tree_id[has_parent]).all()
        ), "parents must live in the same tree"
        assert bool(
            (self.level[has_parent] == self.level[prow] + 1).all()
        ), "edges must not skip levels"
        assert bool(
            (self.parent[has_parent] == self.key[prow]).all()
        ), "parent key column disagrees with parent_row"

        # Fig-4 fan-out bound per sender.
        per_cost = self.unit_cost[self.tree_id]
        child_count = np.bincount(prow, minlength=n)
        avail = self.capacity - self.used
        allowed = np.where(
            avail - per_cost <= 0.0,
            1,
            np.maximum(np.floor(avail / per_cost).astype(_I64), 1),
        )
        assert bool((child_count <= allowed).all()), "member fan-out exceeds Avail/v"
        root_children = np.bincount(
            self.tree_id[roots], minlength=self.num_trees
        )
        root_avail = self.root_capacity - self.root_used
        root_allowed = np.where(
            root_avail - self.unit_cost <= 0.0,
            1,
            np.maximum(np.floor(root_avail / self.unit_cost).astype(_I64), 1),
        )
        np.minimum(root_allowed, np.maximum(self.sizes(), 1), out=root_allowed)
        assert bool((root_children <= root_allowed).all()), "root fan-out exceeds Avail/v"

        # Conservation: a head's partition is itself plus its children's
        # partitions; the root's partitions cover the registry exactly.
        child_sum = np.bincount(prow, weights=self.assigned[has_parent], minlength=n)
        assert bool(
            (child_sum.astype(_I64) == self.assigned - 1).all()
        ), "partition sizes must telescope"
        root_sum = np.bincount(
            self.tree_id[roots], weights=self.assigned[roots], minlength=self.num_trees
        )
        assert bool(
            (root_sum.astype(_I64) == self.sizes()).all()
        ), "root partitions must cover the registry"


def build_ldt_forest(specs: Sequence[ForestSpec]) -> LDTForest:
    """Build the Fig-4 trees for every spec in one vectorised pass.

    Bit-identical to running ``build_ldt(spec.root, spec.registry,
    spec.unit_cost, tie_break=spec.tie_break)`` per spec and is the
    batched construction path used by ``BristleNetwork``; materialise
    individual trees with :meth:`LDTForest.tree`.
    """
    n_trees = len(specs)
    sizes = np.fromiter((len(s.registry) for s in specs), dtype=_I64, count=n_trees)
    tree_offsets = np.zeros(n_trees + 1, dtype=_I64)
    np.cumsum(sizes, out=tree_offsets[1:])
    n_members = int(tree_offsets[-1])

    root_key = np.fromiter((s.root.key for s in specs), dtype=_I64, count=n_trees)
    root_capacity = np.fromiter(
        (s.root.capacity for s in specs), dtype=_F64, count=n_trees
    )
    root_used = np.fromiter((s.root.used for s in specs), dtype=_F64, count=n_trees)
    unit_cost = np.fromiter((s.unit_cost for s in specs), dtype=_F64, count=n_trees)
    if np.any(unit_cost <= 0):
        raise ValueError("unit_cost must be positive")

    # Object-model ingestion bridge: three chained attribute passes turn
    # the LDTMember rows into columns; everything after is array kernels.
    def _column(attr: str, dtype) -> np.ndarray:
        rows = chain.from_iterable(s.registry for s in specs)
        return np.fromiter(map(attrgetter(attr), rows), dtype=dtype, count=n_members)

    key = _column("key", _I64)
    capacity = _column("capacity", _F64)
    used = _column("used", _F64)
    # The default secondary sort key is float(member.key) — vectorised;
    # only specs with a custom tie_break pay a per-member Python call.
    secondary = key.astype(_F64)
    for t, spec in enumerate(specs):
        if spec.tie_break is None:
            continue
        lo = int(tree_offsets[t])
        hi = int(tree_offsets[t + 1])
        tb = spec.tie_break
        secondary[lo:hi] = np.fromiter(
            (tb(m) for m in spec.registry), dtype=_F64, count=hi - lo
        )

    tree_id = np.repeat(np.arange(n_trees, dtype=_I64), sizes)

    # build_ldt's input validation, vectorised across the batch.  Fast
    # path: node keys are normally globally unique, so a plain key sort
    # proves per-tree uniqueness without the heavier (tree, key) lexsort.
    if n_members:
        sorted_keys = np.sort(key)
        if bool((sorted_keys[1:] == sorted_keys[:-1]).any()):
            dup_order = np.lexsort((key, tree_id))
            sk = key[dup_order]
            st = tree_id[dup_order]
            if bool(((sk[1:] == sk[:-1]) & (st[1:] == st[:-1])).any()):
                raise ValueError("registry contains duplicate keys")
        if bool((key == root_key[tree_id]).any()):
            raise ValueError("the root must not appear in its own registry")

    # The one capacity sort for the whole batch.  np.lexsort is stable, so
    # full ties keep registry order — exactly Python's sorted() semantics,
    # and every recursive re-sort inside Fig 4 is then the identity.
    order = np.lexsort((secondary, -capacity, tree_id))
    key = key[order]
    capacity = capacity[order]
    used = used[order]

    level, assigned, parent_row = build_forest_columns(
        tree_offsets, capacity - used, root_capacity - root_used, unit_cost
    )
    parent = np.where(
        parent_row >= 0,
        key[np.maximum(parent_row, 0)],
        root_key[tree_id] if n_members else np.empty(0, dtype=_I64),
    )
    return LDTForest(
        tree_offsets=tree_offsets,
        tree_id=tree_id,
        key=key,
        capacity=capacity,
        used=used,
        parent=parent.astype(_I64),
        parent_row=parent_row,
        level=level,
        assigned=assigned,
        root_key=root_key,
        root_capacity=root_capacity,
        root_used=root_used,
        unit_cost=unit_cost,
    )

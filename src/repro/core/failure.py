"""Failure detection: periodic neighbour monitoring (§2.3.2).

"For reliability, each node periodically monitors its connectivity to
the other O(log N) nodes in the system" — every member heartbeats its
overlay neighbours each period; a peer that misses ``miss_threshold``
consecutive heartbeats is *suspected* and reported, letting higher
layers (the location directory, the data store, the registries) shed the
failed node's state.

The detector works against ground truth held by the caller: failing a
node makes it stop answering.  Detection latency is therefore bounded by
``miss_threshold × period`` — asserted by the tests — and the message
budget per period is exactly the sum of neighbour-list sizes
(``O(N log N)`` for the log-state overlays, ``O(N·d)`` for CAN).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..sim.engine import Engine
from ..sim.metrics import MetricsRegistry
from .bristle import BristleNetwork

__all__ = ["FailureDetector", "Suspicion"]


@dataclasses.dataclass(frozen=True)
class Suspicion:
    """One detection event: who suspected whom, and when."""

    monitor: int
    suspect: int
    at: float
    failed_at: float

    @property
    def detection_delay(self) -> float:
        return self.at - self.failed_at


class FailureDetector:
    """Heartbeat-based neighbour monitoring over the mobile layer.

    Parameters
    ----------
    net:
        The network whose mobile-layer neighbour relation defines who
        monitors whom.
    engine:
        Event engine driving the heartbeat period.
    period:
        Time between heartbeat rounds.
    miss_threshold:
        Consecutive missed heartbeats before suspicion (≥ 1).
    on_suspect:
        Optional callback invoked with each :class:`Suspicion` (fired
        once per (monitor, suspect) pair).
    evict_from_overlay:
        When true, the first detection of a failed node also removes it
        from the mobile layer through the overlay's incremental
        ``remove_node`` path, so the surviving members' routing state is
        repaired in place (counted by ``evictions``) instead of pointing
        at a dead peer until the next full rebuild.
    """

    def __init__(
        self,
        net: BristleNetwork,
        engine: Engine,
        *,
        period: float = 10.0,
        miss_threshold: int = 2,
        on_suspect: Optional[Callable[[Suspicion], None]] = None,
        evict_from_overlay: bool = False,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.net = net
        self.engine = engine
        self.period = period
        self.miss_threshold = miss_threshold
        self.on_suspect = on_suspect
        self.evict_from_overlay = evict_from_overlay
        self.metrics = MetricsRegistry()
        self._failed: Dict[int, float] = {}  # node → failure time
        self._misses: Dict[Tuple[int, int], int] = {}
        self._suspected: Set[Tuple[int, int]] = set()
        self._evicted: Set[int] = set()
        self.suspicions: List[Suspicion] = []
        self._cancel: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def fail(self, node: int) -> None:
        """Node stops answering heartbeats from now on."""
        if node not in self.net.nodes:
            raise KeyError(f"{node} is not a member")
        self._failed.setdefault(node, self.engine.now)

    def recover(self, node: int) -> None:
        """Node answers again; standing suspicions against it clear."""
        self._failed.pop(node, None)
        self._evicted.discard(node)
        for pair in [p for p in self._suspected if p[1] == node]:
            self._suspected.discard(pair)
            self._misses.pop(pair, None)

    def is_failed(self, node: int) -> bool:
        """Ground truth: is ``node`` currently failed?"""
        return node in self._failed

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic heartbeat rounds."""
        if self._cancel is not None:
            raise RuntimeError("detector already started")
        self._cancel = self.engine.schedule_every(
            self.period, self._round, label="failure-detector"
        )

    def stop(self) -> None:
        """Halt heartbeat rounds."""
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _round(self) -> None:
        overlay = self.net.mobile_layer
        now = self.engine.now
        newly_detected: List[int] = []
        for key in overlay.keys:
            monitor = int(key)
            if monitor in self._failed:
                continue  # failed nodes send no heartbeats
            for peer in overlay.neighbors_of(monitor):
                self.metrics.counter("heartbeats").inc()
                pair = (monitor, peer)
                if peer in self._failed:
                    misses = self._misses.get(pair, 0) + 1
                    self._misses[pair] = misses
                    if misses >= self.miss_threshold and pair not in self._suspected:
                        self._suspected.add(pair)
                        suspicion = Suspicion(
                            monitor=monitor,
                            suspect=peer,
                            at=now,
                            failed_at=self._failed[peer],
                        )
                        self.suspicions.append(suspicion)
                        self.metrics.histogram("detection_delay").observe(
                            suspicion.detection_delay
                        )
                        if self.on_suspect is not None:
                            self.on_suspect(suspicion)
                        newly_detected.append(peer)
                else:
                    self._misses.pop(pair, None)
        if self.evict_from_overlay and newly_detected:
            # Applied after the heartbeat sweep so eviction never mutates
            # the membership array mid-iteration.  Each failed node is
            # evicted once, through the incremental repair path.
            for peer in newly_detected:
                if peer in self._evicted or not overlay.is_member(peer):
                    continue
                overlay.remove_node(peer)
                self._evicted.add(peer)
                self.metrics.counter("evictions").inc()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def suspects_of(self, monitor: int) -> List[int]:
        """Peers ``monitor`` currently suspects."""
        return sorted(s for m, s in self._suspected if m == monitor)

    def detected_by_anyone(self, node: int) -> bool:
        """True once at least one monitor suspects ``node``."""
        return any(s == node for _, s in self._suspected)

    def detection_coverage(self, node: int) -> float:
        """Fraction of ``node``'s monitors that suspect it."""
        overlay = self.net.mobile_layer
        monitors = [
            int(k)
            for k in overlay.keys
            if node in overlay.neighbors_of(int(k)) and int(k) not in self._failed
        ]
        if not monitors:
            return 0.0
        return sum(1 for m in monitors if (m, node) in self._suspected) / len(monitors)

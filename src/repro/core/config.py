"""Configuration for a Bristle deployment.

One frozen dataclass gathers every tunable the paper exposes (key-space
width, naming scheme, overlay choices, lease durations, the unit
advertisement cost ``v`` of Fig 4, LDT registry sizing) so experiments and
examples configure a network in one place.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

__all__ = ["BristleConfig"]


@dataclasses.dataclass(frozen=True)
class BristleConfig:
    """Parameters of a Bristle network.

    Attributes
    ----------
    key_bits / digit_bits:
        Identifier-ring geometry (ρ = 2**key_bits).
    naming:
        ``"clustered"`` (the §3 scheme: stationary keys inside [L, U]) or
        ``"scrambled"`` (uniform keys regardless of mobility).
    mobile_layer_overlay:
        Overlay geometry of the mobile layer.  ``"chord"`` (default)
        matches the §3 analysis: power-of-two fingers make the first hop of
        a wrapping route clear the mobile key region whenever ∇ ≥ 1/2.
    stationary_layer_overlay:
        Overlay used by the location-management (stationary) layer for
        ``_discovery`` routing; any of chord/pastry/tornado.
    state_ttl:
        Lease duration of mobile state-pairs (§2.3.2).
    refresh_period:
        Early-binding refresh interval (must be < state_ttl for caches to
        stay warm).
    unit_advertise_cost:
        The ``v`` of Fig 4 — capacity units one update message costs.
    registry_size:
        Members of each mobile node's LDT; ``None`` → ⌈log₂ N⌉ at build
        time (§2.3: "The number of members in a LDT is O(log N)").
    replication:
        Location records are stored at this many stationary nodes
        clustered around the owner key (§2.3.2 availability, "replicated
        to k nodes").
    p_stale:
        Probability that a cached mobile address encountered mid-route
        needs resolution.  The Figure-7 experiments use 1.0 (the paper
        assumes "a mobile node only advertises its updated location to the
        stationary layer", so caches are always cold).
    prefer_resolved_next_hop:
        Optional routing policy that dodges unresolved (mobile) fingers
        when a resolved one also makes progress; off by default to match
        the paper's naming-oblivious greedy routing.
    columnar_directory:
        Back the location directory with the struct-of-arrays
        :class:`repro.sim.columnar.ColumnarDirectory` instead of the
        per-object :class:`repro.core.location.LocationDirectory`.  Both
        backends evolve bit-identical state (the object model is the
        parity oracle); the columnar one trades per-record objects for
        NumPy columns and vectorised kernels.
    seed:
        Master seed for all randomness.
    """

    key_bits: int = 32
    digit_bits: int = 4
    naming: str = "clustered"
    mobile_layer_overlay: str = "chord"
    stationary_layer_overlay: str = "chord"
    state_ttl: float = 60.0
    refresh_period: float = 20.0
    unit_advertise_cost: float = 1.0
    registry_size: Optional[int] = None
    replication: int = 3
    p_stale: float = 1.0
    prefer_resolved_next_hop: bool = False
    columnar_directory: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.naming not in ("clustered", "scrambled"):
            raise ValueError(f"naming must be 'clustered' or 'scrambled', got {self.naming!r}")
        if self.state_ttl <= 0 or self.refresh_period <= 0:
            raise ValueError("state_ttl and refresh_period must be positive")
        if self.refresh_period >= self.state_ttl:
            raise ValueError(
                f"refresh_period ({self.refresh_period}) must be shorter than "
                f"state_ttl ({self.state_ttl}) or leases lapse between refreshes"
            )
        if self.unit_advertise_cost <= 0:
            raise ValueError("unit_advertise_cost must be positive")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if not 0.0 <= self.p_stale <= 1.0:
            raise ValueError("p_stale must be in [0, 1]")
        if self.registry_size is not None and self.registry_size < 1:
            raise ValueError("registry_size must be >= 1 when given")

    def effective_registry_size(self, num_nodes: int) -> int:
        """Registry size for a network of ``num_nodes``: explicit value or
        the paper's ⌈log₂ N⌉."""
        if self.registry_size is not None:
            return self.registry_size
        return max(1, math.ceil(math.log2(max(num_nodes, 2))))

"""Analytic models from the paper (§2.3, §3) — the formulas behind
Figure 3 and the complexity claims the benches validate empirically.

All logarithms are base 2 (the paper's hop analyses count binary-halving
steps; the Figure-3 scale matches `log2`).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

__all__ = [
    "responsibility_member_only",
    "responsibility_non_member_only",
    "responsibility_curves",
    "registrations_per_node",
    "total_registrations",
    "ldt_size_member_only",
    "ldt_size_non_member_only",
    "advertisement_hops",
    "expected_route_hops",
    "clustered_route_is_stationary",
    "nabla",
]


def _check_population(num_nodes: int, num_mobile: int) -> None:
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if not 0 <= num_mobile < num_nodes:
        raise ValueError(
            f"mobile count must satisfy 0 <= M < N, got M={num_mobile}, N={num_nodes}"
        )


def nabla(num_nodes: int, num_mobile: int) -> float:
    """∇ = (U − L)/ρ ≈ (N − M)/N — the stationary fraction of the key
    space under clustered naming (§3)."""
    _check_population(num_nodes, num_mobile)
    return (num_nodes - num_mobile) / num_nodes


def ldt_size_member_only(num_nodes: int) -> float:
    """Members of one member-only LDT: O(log N) (§2.3)."""
    return math.log2(num_nodes)


def ldt_size_non_member_only(num_nodes: int) -> float:
    """Worst-case participants of one non-member-only LDT:
    S(τ) = O(log N) × O(log N) — leaf count times root-to-leaf route
    length (§2.3)."""
    return math.log2(num_nodes) ** 2


def responsibility_member_only(num_nodes: int, num_mobile: int) -> float:
    """Average location-handling load per stationary node, member-only
    LDTs: O((M / (N − M)) · log N) (§2.3)."""
    _check_population(num_nodes, num_mobile)
    return num_mobile / (num_nodes - num_mobile) * math.log2(num_nodes)


def responsibility_non_member_only(num_nodes: int, num_mobile: int) -> float:
    """Average load per stationary node, non-member-only LDTs:
    O((M / (N − M)) · (log N)²) (§2.3)."""
    _check_population(num_nodes, num_mobile)
    return num_mobile / (num_nodes - num_mobile) * math.log2(num_nodes) ** 2


def responsibility_curves(
    num_nodes: int, mobile_fractions: Sequence[float]
) -> Dict[str, np.ndarray]:
    """The two Figure-3 curves over a sweep of M/N values.

    Returns arrays keyed ``"member_only"`` / ``"non_member_only"`` aligned
    with ``mobile_fractions``; the paper plots N = 1,048,576.
    """
    fracs = np.asarray(list(mobile_fractions), dtype=np.float64)
    if np.any((fracs < 0) | (fracs >= 1)):
        raise ValueError("mobile fractions must satisfy 0 <= M/N < 1")
    ratio = fracs / (1.0 - fracs)
    log_n = math.log2(num_nodes)
    return {
        "member_only": ratio * log_n,
        "non_member_only": ratio * log_n**2,
    }


def registrations_per_node(num_nodes: int, num_mobile: int) -> float:
    """Registrations one active node issues when only mobile peers need
    them: O((M/N) · log N) (§2.3.1)."""
    _check_population(num_nodes, num_mobile)
    return num_mobile / num_nodes * math.log2(num_nodes)


def total_registrations(num_nodes: int, num_mobile: int) -> float:
    """System-wide registrations: O(N · (M/N) · log N) = O(M log N)
    (§2.3.1)."""
    _check_population(num_nodes, num_mobile)
    return num_mobile * math.log2(num_nodes)


def advertisement_hops(num_nodes: int, branching: int) -> float:
    """Hops to broadcast a state to the registry nodes via a k-way LDT:
    O(log_k log N) (§2.3.2)."""
    if branching < 2:
        raise ValueError("branching must be >= 2 for the logarithmic bound")
    registry = max(math.log2(num_nodes), 1.0)
    return math.log(registry, branching)


def expected_route_hops(num_nodes: int, num_mobile: int, *, clustered: bool) -> float:
    """First-order model of Figure 7(a): mean application-level hops of a
    stationary→stationary route.

    Base cost is the ``(1/2)·log2 N`` hops of greedy binary-halving
    routing over all N nodes.  Under **scrambled** naming each
    intermediate hop is mobile with probability M/N and then costs an
    extra discovery — ``(1/2)·log2(N − M) + 1`` hops in the stationary
    layer.  Under **clustered** naming with ∇ ≥ 1/2, eq. (1) shows routes
    never leave the stationary band, so only the residual ``max(0,
    1 − 2∇)`` exposure applies (the fraction of the wrap arc not cleared
    by the first halving hop once the mobile region exceeds half the
    ring).
    """
    _check_population(num_nodes, num_mobile)
    base = 0.5 * math.log2(num_nodes)
    discovery = 0.5 * math.log2(num_nodes - num_mobile) + 1.0
    intermediates = max(base - 1.0, 0.0)
    if not clustered:
        p_mobile = num_mobile / num_nodes
    else:
        nd = nabla(num_nodes, num_mobile)
        p_mobile = max(0.0, 1.0 - 2.0 * nd)
    return base + intermediates * p_mobile * discovery


def clustered_route_is_stationary(
    x1: int, x2: int, low: int, high: int, ring_size: int
) -> bool:
    """Equation (1) of §3, applied to one route.

    A clockwise route from stationary ``x1`` to stationary ``x2`` (keys in
    ``[low, high]``) stays within the stationary layer when either it does
    not wrap (``x1 ≤ x2``) or the first halving hop lands back inside the
    band.  The paper writes the landing test as
    ``(x1 + (ρ − (x1 − x2))/2) mod ρ ≥ L``; taken literally that accepts
    landings in the *upper* mobile region ``(U, ρ)`` too, so we use the
    intended in-band form ``L ≤ midpoint ≤ U``.  Note the paper's closing
    claim (∇ ≥ 1/2 ⟹ all routes stationary) follows from substituting the
    *best*-case pair ``x1 = x2 = U`` — ∇ ≥ 1/2 is necessary for any
    wrapping pair to pass, not sufficient for all of them; the measured
    bench (``run_eq1_check``) quantifies the gap.
    """
    for x in (x1, x2):
        if not low <= x <= high:
            raise ValueError(f"key {x} outside the stationary band [{low}, {high}]")
    if x1 <= x2:
        return True
    midpoint = (x1 + (ring_size - (x1 - x2)) / 2.0) % ring_size
    return low <= midpoint <= high

#!/usr/bin/env python
"""Quickstart: build a Bristle network, move a node, and watch routing
survive the move.

Demonstrates the paper's headline property — a mobile node keeps its hash
key across movements, so correspondents reach it by the same identifier
before and after it changes attachment points (end-to-end semantics,
Table 1).

Run:  python examples/quickstart.py
"""

from repro import BristleConfig, BristleNetwork, route_with_resolution

def main() -> None:
    # 200 stationary + 100 mobile nodes under the §3 clustered naming
    # scheme, placed on a generated transit-stub underlay.
    config = BristleConfig(seed=42, naming="clustered")
    net = BristleNetwork(config, num_stationary=200, num_mobile=100)
    print(f"built a Bristle network: {net.num_nodes} nodes "
          f"({net.num_stationary} stationary / {net.num_mobile} mobile), "
          f"{net.topology.num_routers} underlay routers")

    alice = net.stationary_keys[0]   # a stationary correspondent
    bob = net.mobile_keys[0]         # a mobile node

    # Register interest so Bob's moves are advertised through his LDT.
    net.setup_random_registrations(registry_size=8)

    trace = route_with_resolution(net, alice, bob)
    print(f"\nbefore any move: alice -> bob in {trace.app_hops} hops, "
          f"path cost {trace.path_cost:.1f}, {trace.resolutions} resolution(s)")

    # Bob moves to a new attachment point.  He publishes the new address
    # to the stationary layer and multicasts it down his LDT (Fig 4).
    report = net.move(bob)
    print(f"\nbob moved to router {report.new_address.router} "
          f"(epoch {report.new_address.epoch}); "
          f"{report.total_messages} update messages "
          f"(LDT depth {report.ldt_depth})")

    # Alice still reaches Bob under the SAME key — the stationary layer
    # resolves his fresh address en route (Fig 2's _discovery).
    trace = route_with_resolution(net, alice, bob)
    assert trace.success and trace.node_path[-1] == bob
    print(f"\nafter the move: alice -> bob in {trace.app_hops} hops, "
          f"path cost {trace.path_cost:.1f}, {trace.resolutions} resolution(s)")

    # Reactive discovery on its own (late binding, §2.3.2):
    d = net.discover(alice, bob)
    print(f"\ndiscovery: resolved bob's address {d.address} via holder "
          f"{d.holder:#010x} in {d.hop_count} stationary hops")

if __name__ == "__main__":
    main()

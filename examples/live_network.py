#!/usr/bin/env python
"""A live Bristle network under continuous mobility — the one-object API.

``LiveSimulation`` bundles the network, event engine, timed protocol,
mobility process and binding policy.  This example runs a roaming swarm
for 300 virtual time units, sampling cache warmness and message budgets
along the way, then issues discoveries against the moving population.

Run:  python examples/live_network.py
"""

from repro.core import LiveSimulation


def main() -> None:
    sim = LiveSimulation.create(
        num_stationary=80,
        num_mobile=60,
        seed=11,
        registry_size=8,
        move_rate=0.02,     # each mobile node moves ~once per 50 units
        binding="early",
    )
    print(f"live network: {sim.net.num_nodes} nodes on "
          f"{sim.net.topology.num_routers} routers, "
          f"{len(sim.net.mobile_keys)} roaming\n")

    print(f"{'time':>6} | {'moves':>5} | {'cache warm':>10} | "
          f"{'adverts':>8} | {'refresh msgs':>12}")
    print("-" * 55)
    for t in (50, 100, 150, 200, 250, 300):
        sim.run(until=float(t))
        s = sim.summary()
        print(f"{t:>6} | {int(s['moves']):>5} | {s['cache_warmness']:>9.0%} | "
              f"{int(s.get('messages.advertise', 0)):>8} | "
              f"{int(s['binding_messages']):>12}")

    # Reactive discoveries against the moving population.
    sim.stop()
    hits = 0
    rtts = []
    done = []
    for mk in sim.net.mobile_keys[:20]:
        sim.protocol.discover(
            sim.net.stationary_keys[0], mk, on_complete=done.append
        )
    sim.engine.run()
    for ex in done:
        if ex.address == sim.net.nodes[ex.target].address:
            hits += 1
        rtts.append(ex.rtt)
    print(f"\ndiscoveries: {hits}/{len(done)} resolved to the current "
          f"address, mean RTT {sum(rtts) / len(rtts):.3f} virtual units")
    print("every node kept its hash key through "
          f"{int(sim.summary()['moves'])} moves — end-to-end identity held.")


if __name__ == "__main__":
    main()

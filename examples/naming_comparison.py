#!/usr/bin/env python
"""Clustered vs scrambled naming — a miniature of the paper's Figure 7.

Sweeps the mobile fraction M/N and reports, for both naming schemes, the
mean application-level hops, the mean path cost and the relative delay
penalty (RDP).  The clustered scheme (§3) should win everywhere mobility
exists, with the gap widening as M/N grows.

Run:  python examples/naming_comparison.py          # quick sweep
      python examples/naming_comparison.py --full   # closer to the paper
"""

import sys

from repro.experiments import Fig7Params, run_fig7


def main() -> None:
    full = "--full" in sys.argv
    params = (
        Fig7Params(num_stationary=1000, routes=4000, router_count=1200)
        if full
        else Fig7Params(
            num_stationary=300,
            routes=600,
            router_count=300,
            fractions=(0.0, 0.2, 0.4, 0.5, 0.6, 0.8),
        )
    )
    table = run_fig7(params)
    print(table.render(2))

    print("\nreading the table:")
    last = table.rows[-1]
    first = table.rows[0]
    print(f"  * with no mobility both schemes cost the same "
          f"(RDP {first['RDP hops']:.2f})")
    print(f"  * at M/N = {last['M/N (%)']:.0f}% the scrambled scheme pays "
          f"{last['hops scrambled']:.1f} hops/route vs "
          f"{last['hops clustered']:.1f} clustered — "
          f"RDP {last['RDP hops']:.2f}")
    print("  * the clustered advantage comes from address resolutions "
          "avoided: compare the 'res' columns")


if __name__ == "__main__":
    main()

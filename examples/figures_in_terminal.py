#!/usr/bin/env python
"""Render the paper's figures as ASCII charts in the terminal.

Runs scaled-down versions of Figures 3, 7 and 9 and draws their curves
with `repro.experiments.ascii_chart` — the whole evaluation, no plotting
stack required.

Run:  python examples/figures_in_terminal.py
"""

from repro.experiments import (
    Fig7Params,
    Fig9Params,
    ascii_bars,
    ascii_chart,
    run_fig3,
    run_fig7,
    run_fig9,
)


def main() -> None:
    # --- Figure 3: the analytic responsibility curves -------------------
    fig3 = run_fig3(fractions=tuple(round(0.1 * i, 1) for i in range(1, 10)))
    print(ascii_chart(
        fig3,
        x="M/N (%)",
        series=["member-only", "non-member-only"],
        height=12,
        title="Figure 3 — responsibility per stationary node (N = 2^20)",
    ))
    print()

    # --- Figure 7(a): naming schemes --------------------------------------
    fig7 = run_fig7(Fig7Params(
        num_stationary=250, routes=500, router_count=300,
        fractions=(0.0, 0.2, 0.4, 0.5, 0.6, 0.8),
    ))
    print(ascii_chart(
        fig7,
        x="M/N (%)",
        series=["hops scrambled", "hops clustered"],
        height=12,
        title="Figure 7(a) — application-level hops per route",
    ))
    print()
    print(ascii_bars(
        fig7, label="M/N (%)", value="RDP hops", width=40,
        title="Figure 7(b) — relative delay penalty (hops)",
    ))
    print()

    # --- Figure 9: LDT locality -------------------------------------------
    fig9 = run_fig9(Fig9Params(
        num_stationary=80, router_count=300,
        fractions=(0.2, 0.4, 0.6, 0.8, 0.9), trees_sampled=80,
    ))
    print(ascii_chart(
        fig9,
        x="M/N (%)",
        series=["with locality", "without locality"],
        height=12,
        title="Figure 9 — average per-tree per-edge cost",
    ))


if __name__ == "__main__":
    main()

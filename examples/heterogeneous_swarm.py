#!/usr/bin/env python
"""A live heterogeneous swarm: LDT adaptation + leases on the event engine.

Runs a Bristle network on the discrete-event engine with a Poisson
mobility process and early-binding refreshes, over a population whose
capacities range from modem-class (1 connection) to server-class (15).
Shows the Fig-4 advertisement trees adapting: strong nodes fan updates
out (shallow trees), weak swarms degenerate toward chains, and the
periodic refresh keeps every registrant's cached address warm despite
constant movement.

Run:  python examples/heterogeneous_swarm.py
"""

import numpy as np

from repro.core import (
    BristleConfig,
    BristleNetwork,
    EarlyBinding,
    MobilityProcess,
)
from repro.sim import Engine


def build(max_capacity: int, seed: int) -> BristleNetwork:
    cfg = BristleConfig(
        seed=seed, naming="scrambled", state_ttl=30.0, refresh_period=10.0
    )
    net = BristleNetwork(
        cfg, num_stationary=60, num_mobile=60, router_count=150,
        max_capacity=max_capacity,
    )
    net.setup_random_registrations(registry_size=12)
    return net


def run_swarm(max_capacity: int, seed: int = 7) -> dict:
    net = build(max_capacity, seed)
    engine = Engine()
    binding = EarlyBinding(net, engine)
    binding.start()

    depths = []
    mobility = MobilityProcess(
        net=net,
        engine=engine,
        rate=0.03,
        advertise=True,
        on_move=lambda rep: depths.append(rep.ldt_depth),
    )
    mobility.start()
    engine.run(until=60.0)
    net.now = engine.now

    warm = total = 0
    for mk in net.mobile_keys:
        for entry in net.nodes[mk].registry_entries():
            total += 1
            warm += binding.lookup(entry.key, mk)
    return {
        "moves": mobility.moves_performed,
        "mean_ldt_depth": float(np.mean(depths)) if depths else 0.0,
        "max_ldt_depth": max(depths) if depths else 0,
        "warm_fraction": warm / total if total else 1.0,
        "refresh_messages": binding.stats.total_messages,
    }


def main() -> None:
    print(f"{'MAX capacity':>12} | {'moves':>6} | {'mean LDT depth':>14} | "
          f"{'max':>4} | {'caches warm':>11} | {'refresh msgs':>12}")
    print("-" * 76)
    for max_cap in (1, 2, 4, 8, 15):
        r = run_swarm(max_cap)
        print(f"{max_cap:>12} | {r['moves']:>6} | {r['mean_ldt_depth']:>14.2f} | "
              f"{r['max_ldt_depth']:>4} | {r['warm_fraction']:>10.0%} | "
              f"{r['refresh_messages']:>12}")
    print("\nweak swarms (MAX=1) advertise through chains — every update "
          "crawls node-to-node;\nheterogeneous swarms recruit their "
          "super-nodes as fan-out points and flatten the trees (Fig 8).")


if __name__ == "__main__":
    main()

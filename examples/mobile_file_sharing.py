#!/usr/bin/env python
"""Mobile file sharing — the P2P workload the paper's introduction
motivates, with laptops that roam between networks.

A swarm publishes files into the DHT (each file key is owned by the
closest node).  Mobile peers move repeatedly while downloads continue.
The example contrasts what the paper calls a Type A system (the mover
rejoins under a new key, orphaning its files) with Bristle (keys are
stable; the stationary layer re-resolves addresses), and prints the
availability each approach sustains.

Run:  python examples/mobile_file_sharing.py
"""

from repro import BristleConfig, BristleNetwork, route_with_resolution
from repro.workloads import build_comparison_scenario, sample_key_lookups


N_STATIONARY = 120
N_MOBILE = 120
N_FILES = 300
N_DOWNLOADS = 400


def main() -> None:
    scenario = build_comparison_scenario(N_STATIONARY, N_MOBILE, seed=2026)
    net = scenario.bristle
    print(f"swarm: {net.num_nodes} peers, {net.topology.num_routers} routers")

    # --- publish files -------------------------------------------------
    # Each file hashes to a key; the owner (closest node) stores it.
    file_keys = [
        int(k) for k in net.space.random_keys(net.rng, "files", N_FILES, unique=False)
    ]
    catalogue = {fk: net.mobile_layer.owner_of(fk) for fk in file_keys}
    mobile_hosted = sum(1 for owner in catalogue.values() if net.is_mobile(owner))
    print(f"published {N_FILES} files; {mobile_hosted} live on mobile peers")

    # --- everyone roams -------------------------------------------------
    for mk in net.mobile_keys:
        net.move(mk, advertise=False)
    for host in sorted(scenario.mobile_hosts):
        scenario.type_a.move(host)
    print("every mobile peer moved to a new attachment point\n")

    # --- downloads continue ----------------------------------------------
    members = net.stationary_keys + net.mobile_keys
    lookups = sample_key_lookups(members, net.space.size, N_DOWNLOADS, net.rng)

    bristle_ok = 0
    bristle_cost = 0.0
    for src, _ in lookups:
        # Download a random published file from a random peer.
        fk = file_keys[(src * 7919) % N_FILES]
        trace = route_with_resolution(net, src, fk)
        if trace.success and trace.node_path[-1] == catalogue[fk]:
            bristle_ok += 1
            bristle_cost += trace.path_cost

    # Type A: files hosted on moved peers are orphaned (the peer rejoined
    # under a fresh key, so the file key now maps elsewhere).
    ta = scenario.type_a
    type_a_ok = 0
    stationary_hosts = sorted(set(ta.key_of) - scenario.mobile_hosts)
    for i, (src, _) in enumerate(lookups):
        fk = file_keys[(src * 7919) % N_FILES]
        original_host = catalogue[fk]
        result = ta.lookup(stationary_hosts[i % len(stationary_hosts)], original_host)
        if result.reached_intended:
            type_a_ok += 1

    print(f"Bristle   : {bristle_ok}/{N_DOWNLOADS} downloads reach the "
          f"original host (mean path cost "
          f"{bristle_cost / max(bristle_ok, 1):.1f})")
    print(f"Type A    : {type_a_ok}/{N_DOWNLOADS} — every file on a moved "
          f"peer is orphaned until it is republished")

    # --- why: the retained-key property -----------------------------------
    survivors = sum(
        1 for fk, owner in catalogue.items()
        if net.mobile_layer.owner_of(fk) == owner
    )
    print(f"\nownership stability: {survivors}/{N_FILES} file keys still map "
          "to their original hosts under Bristle (movement never reshuffles "
          "the key space)")


if __name__ == "__main__":
    main()

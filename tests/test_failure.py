"""Tests for repro.core.failure — heartbeat monitoring (§2.3.2)."""


import pytest

from repro.core import BristleConfig, BristleNetwork
from repro.core.failure import FailureDetector
from repro.core.storage import DataStore


@pytest.fixture
def net():
    cfg = BristleConfig(seed=61, naming="scrambled")
    return BristleNetwork(cfg, num_stationary=30, num_mobile=20, router_count=100)


@pytest.fixture
def detector(net, engine):
    return FailureDetector(net, engine, period=5.0, miss_threshold=2)


class TestConfig:
    def test_invalid_period(self, net, engine):
        with pytest.raises(ValueError):
            FailureDetector(net, engine, period=0.0)

    def test_invalid_threshold(self, net, engine):
        with pytest.raises(ValueError):
            FailureDetector(net, engine, miss_threshold=0)

    def test_double_start_rejected(self, detector, engine):
        detector.start()
        with pytest.raises(RuntimeError):
            detector.start()

    def test_fail_unknown_node(self, detector):
        with pytest.raises(KeyError):
            detector.fail(31337 if 31337 not in detector.net.nodes else 31338)


class TestDetection:
    def test_no_false_positives(self, net, engine, detector):
        detector.start()
        engine.run(until=50.0)
        assert detector.suspicions == []

    def test_failure_detected_within_bound(self, net, engine, detector):
        victim = net.mobile_keys[0]
        detector.start()
        engine.run(until=7.0)  # one round passed
        detector.fail(victim)
        failed_at = engine.now
        engine.run(until=failed_at + 3 * detector.period)
        assert detector.detected_by_anyone(victim)
        first = min(s.at for s in detector.suspicions if s.suspect == victim)
        assert first - failed_at <= detector.miss_threshold * detector.period + detector.period

    def test_detection_delay_recorded(self, net, engine, detector):
        victim = net.mobile_keys[1]
        detector.fail(victim)
        detector.start()
        engine.run(until=30.0)
        hist = detector.metrics.histogram("detection_delay")
        assert len(hist) > 0
        assert hist.min() >= 0.0

    def test_all_monitors_eventually_suspect(self, net, engine, detector):
        victim = net.mobile_keys[2]
        detector.fail(victim)
        detector.start()
        engine.run(until=40.0)
        assert detector.detection_coverage(victim) == 1.0

    def test_threshold_delays_suspicion(self, net, engine):
        victim = net.mobile_keys[0]
        strict = FailureDetector(net, engine, period=5.0, miss_threshold=4)
        strict.fail(victim)
        strict.start()
        engine.run(until=16.0)  # 3 rounds < threshold 4
        assert not strict.detected_by_anyone(victim)
        engine.run(until=21.0)  # 4th round
        assert strict.detected_by_anyone(victim)

    def test_recovery_clears_suspicion(self, net, engine, detector):
        victim = net.mobile_keys[0]
        detector.fail(victim)
        detector.start()
        engine.run(until=15.0)
        assert detector.detected_by_anyone(victim)
        detector.recover(victim)
        assert not detector.detected_by_anyone(victim)
        engine.run(until=40.0)
        assert not detector.detected_by_anyone(victim)

    def test_failed_monitor_sends_no_heartbeats(self, net, engine, detector):
        a, b = net.mobile_keys[0], net.mobile_keys[1]
        detector.fail(a)
        detector.fail(b)
        detector.start()
        engine.run(until=30.0)
        # a never *reports* suspicions (it is failed itself).
        assert all(s.monitor != a for s in detector.suspicions)

    def test_stop_halts_rounds(self, net, engine, detector):
        detector.start()
        engine.run(until=6.0)
        count = detector.metrics.counter("heartbeats").value
        detector.stop()
        engine.run(until=60.0)
        assert detector.metrics.counter("heartbeats").value == count

    def test_heartbeat_budget_matches_state_sizes(self, net, engine, detector):
        detector.start()
        engine.run(until=5.5)  # exactly one round
        expected = sum(
            len(net.mobile_layer.neighbors_of(int(k)))
            for k in net.mobile_layer.keys
        )
        assert detector.metrics.counter("heartbeats").value == expected

    def test_on_suspect_callback(self, net, engine):
        seen = []
        det = FailureDetector(
            net, engine, period=5.0, miss_threshold=1, on_suspect=seen.append
        )
        victim = net.mobile_keys[3]
        det.fail(victim)
        det.start()
        engine.run(until=6.0)
        assert seen
        assert all(s.suspect == victim for s in seen)


class TestStorageIntegration:
    def test_detector_driven_failover(self, net, engine):
        """End-to-end §2.3.2 story: a holder fails, the detector notices,
        the store sheds it, replicas keep the item available."""
        store = DataStore(net, replication=3)
        store.put(4242, "survives")
        primary = store.holders_for(4242)[0]

        det = FailureDetector(
            net,
            engine,
            period=5.0,
            miss_threshold=2,
            on_suspect=lambda s: store.drop_failed_node(s.suspect),
        )
        det.fail(primary)
        det.start()
        engine.run(until=20.0)
        result = store.get(net.stationary_keys[0], 4242)
        assert result.found
        assert result.holder != primary

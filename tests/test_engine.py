"""Tests for repro.sim.engine — the discrete-event scheduler."""

import pytest

from repro.sim import Engine, EventKind, SimulationError


class TestScheduling:
    def test_fires_in_time_order(self, engine):
        out = []
        engine.schedule(3.0, lambda: out.append(3))
        engine.schedule(1.0, lambda: out.append(1))
        engine.schedule(2.0, lambda: out.append(2))
        engine.run()
        assert out == [1, 2, 3]

    def test_fifo_within_same_time(self, engine):
        out = []
        for i in range(10):
            engine.schedule(5.0, lambda i=i: out.append(i))
        engine.run()
        assert out == list(range(10))

    def test_priority_within_same_time(self, engine):
        out = []
        engine.schedule(1.0, lambda: out.append("msg"), kind=EventKind.MESSAGE)
        engine.schedule(1.0, lambda: out.append("ctl"), kind=EventKind.CONTROL)
        engine.schedule(1.0, lambda: out.append("tmr"), kind=EventKind.TIMER)
        engine.run()
        assert out == ["ctl", "tmr", "msg"]

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]
        assert engine.now == 2.5

    def test_schedule_in_past_raises(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda: None)

    def test_schedule_at_now_allowed(self, engine):
        out = []
        engine.schedule(1.0, lambda: engine.schedule(engine.now, lambda: out.append("nested")))
        engine.run()
        assert out == ["nested"]

    def test_negative_delay_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_in(-0.1, lambda: None)

    def test_cancel_skips_event(self, engine):
        out = []
        ev = engine.schedule(1.0, lambda: out.append("a"))
        engine.schedule(2.0, lambda: out.append("b"))
        ev.cancel()
        engine.run()
        assert out == ["b"]

    def test_dispatched_counts_only_fired(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        ev.cancel()
        engine.run()
        assert engine.dispatched == 1


class TestRun:
    def test_run_until_leaves_future_events(self, engine):
        out = []
        engine.schedule(1.0, lambda: out.append(1))
        engine.schedule(5.0, lambda: out.append(5))
        engine.run(until=3.0)
        assert out == [1]
        assert engine.now == 3.0
        assert engine.pending == 1
        engine.run()
        assert out == [1, 5]

    def test_bounded_runs_compose(self, engine):
        out = []
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule(t, lambda t=t: out.append(t))
        engine.run(until=2.0)
        engine.run(until=4.0)
        assert out == [1.0, 2.0, 3.0, 4.0]

    def test_stop_halts_run(self, engine):
        out = []
        engine.schedule(1.0, lambda: (out.append(1), engine.stop()))
        engine.schedule(2.0, lambda: out.append(2))
        engine.run()
        assert out == [1]
        assert engine.pending == 1

    def test_max_events_guard(self):
        engine = Engine(max_events=50)

        def reschedule():
            engine.schedule_in(1.0, reschedule)

        engine.schedule_in(1.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run()

    def test_step_single_event(self, engine):
        out = []
        engine.schedule(1.0, lambda: out.append(1))
        engine.schedule(2.0, lambda: out.append(2))
        assert engine.step() is True
        assert out == [1]
        assert engine.step() is True
        assert engine.step() is False

    def test_clear_drops_pending(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.clear()
        assert engine.pending == 0
        assert engine.run() == 0.0

    def test_reentrant_run_rejected(self, engine):
        def inner():
            engine.run()

        engine.schedule(1.0, inner)
        with pytest.raises(SimulationError, match="re-entrant"):
            engine.run()


class TestPeriodic:
    def test_schedule_every_fires_repeatedly(self, engine):
        ticks = []
        engine.schedule_every(1.0, lambda: ticks.append(engine.now))
        engine.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_first_in_override(self, engine):
        ticks = []
        engine.schedule_every(2.0, lambda: ticks.append(engine.now), first_in=0.5)
        engine.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_cancel_stops_future_firings(self, engine):
        ticks = []
        cancel = engine.schedule_every(1.0, lambda: ticks.append(engine.now))
        engine.schedule(2.5, cancel)
        engine.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_cancel_from_inside_callback(self, engine):
        ticks = []
        state = {}

        def tick():
            ticks.append(engine.now)
            if len(ticks) == 3:
                state["cancel"]()

        state["cancel"] = engine.schedule_every(1.0, tick)
        engine.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_non_positive_period_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_every(0.0, lambda: None)

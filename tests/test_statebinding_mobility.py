"""Tests for repro.core.statebinding and repro.core.mobility."""

import pytest

from repro.core import (
    BristleConfig,
    BristleNetwork,
    EarlyBinding,
    LateBinding,
    MobilityProcess,
    shuffle_all_mobile,
)


@pytest.fixture
def net():
    cfg = BristleConfig(seed=9, naming="scrambled", state_ttl=30.0, refresh_period=10.0)
    n = BristleNetwork(cfg, num_stationary=30, num_mobile=20, router_count=100)
    n.setup_random_registrations(registry_size=4)
    return n


class TestEarlyBinding:
    def test_refresh_keeps_caches_warm(self, net, engine):
        policy = EarlyBinding(net, engine)
        policy.start()
        engine.run(until=25.0)
        mk = net.mobile_keys[0]
        registrant = net.nodes[mk].registry_entries()[0].key
        assert policy.lookup(registrant, mk)
        assert policy.stats.advertisements > 0
        assert policy.stats.registrations > 0
        assert policy.stats.discoveries == 0

    def test_no_refresh_before_first_period(self, net, engine):
        policy = EarlyBinding(net, engine)
        policy.start()
        engine.run(until=5.0)  # refresh period is 10
        mk = net.mobile_keys[0]
        registrant = net.nodes[mk].registry_entries()[0].key
        assert not policy.lookup(registrant, mk)

    def test_stop_halts_refreshes(self, net, engine):
        policy = EarlyBinding(net, engine)
        policy.start()
        engine.run(until=10.5)
        count = policy.stats.advertisements
        policy.stop()
        engine.run(until=50.0)
        assert policy.stats.advertisements == count

    def test_advertisements_follow_ldt_size(self, net, engine):
        policy = EarlyBinding(net, engine)
        policy.start()
        engine.run(until=10.5)  # exactly one refresh round
        expected = sum(
            len(net.nodes[mk].registry) for mk in net.mobile_keys
        )
        assert policy.stats.advertisements == expected


class TestLateBinding:
    def test_miss_triggers_discovery_and_caches(self, net, engine):
        policy = LateBinding(net, engine)
        policy.start()
        mk = net.mobile_keys[0]
        registrant = net.nodes[mk].registry_entries()[0].key
        # First lookup: cold cache → discovery.
        assert policy.lookup(registrant, mk) is False
        assert policy.stats.discoveries == 1
        # Second lookup within the TTL: warm.
        assert policy.lookup(registrant, mk) is True
        assert policy.stats.discoveries == 1

    def test_cache_expires_and_rediscovers(self, net, engine):
        policy = LateBinding(net, engine)
        mk = net.mobile_keys[0]
        registrant = net.nodes[mk].registry_entries()[0].key
        policy.lookup(registrant, mk)
        # Advance past the TTL; the mobile node republished at move time
        # so the directory stays fresh but the local cache lapses.
        net.move(mk)
        engine.schedule(net.config.state_ttl + 1, lambda: None)
        engine.run()  # advances the virtual clock past the TTL
        net.now = engine.now
        net.directory.publish(mk, net.nodes[mk].address, now=net.now, ttl=net.config.state_ttl)
        assert policy.lookup(registrant, mk) is False
        assert policy.stats.discoveries == 2

    def test_no_periodic_work(self, net, engine):
        policy = LateBinding(net, engine)
        policy.start()
        assert engine.pending == 0


class TestMobilityProcess:
    def test_moves_happen_at_rate(self, net, engine):
        proc = MobilityProcess(net=net, engine=engine, rate=0.5, advertise=False)
        proc.start()
        engine.run(until=20.0)
        # 20 mobile nodes × rate 0.5 × 20 time units ≈ 200 expected moves;
        # just assert a healthy number happened and addresses changed.
        assert proc.moves_performed > 50
        assert net.placement.move_count == proc.moves_performed

    def test_observer_called(self, net, engine):
        seen = []
        proc = MobilityProcess(
            net=net, engine=engine, rate=1.0, on_move=seen.append, advertise=False
        )
        proc.start()
        engine.run(until=3.0)
        assert len(seen) == proc.moves_performed
        assert all(r.new_address is not None for r in seen)

    def test_stop(self, net, engine):
        proc = MobilityProcess(net=net, engine=engine, rate=1.0, advertise=False)
        proc.start()
        engine.run(until=2.0)
        count = proc.moves_performed
        proc.stop()
        engine.run(until=10.0)
        assert proc.moves_performed == count

    def test_invalid_rate(self, net, engine):
        proc = MobilityProcess(net=net, engine=engine, rate=0.0)
        with pytest.raises(ValueError):
            proc.start()

    def test_directory_stays_fresh_under_mobility(self, net, engine):
        proc = MobilityProcess(net=net, engine=engine, rate=0.3, advertise=False)
        proc.start()
        engine.run(until=10.0)
        net.now = engine.now
        for mk in net.mobile_keys:
            assert net.directory.resolve(mk, now=net.now) == net.nodes[mk].address


class TestShuffle:
    def test_every_mobile_moves_once(self, net):
        reports = shuffle_all_mobile(net)
        assert len(reports) == len(net.mobile_keys)
        assert all(net.nodes[mk].moves == 1 for mk in net.mobile_keys)

    def test_publish_flag(self, net):
        shuffle_all_mobile(net, publish=False)
        stale = [
            mk
            for mk in net.mobile_keys
            if net.directory.resolve(mk, now=0.0) != net.nodes[mk].address
        ]
        assert len(stale) > 0

"""Property-based tests (hypothesis) on the core data structures.

Invariants covered:

* key-space metrics (symmetry, triangle inequality, digit round-trips);
* LDT construction (partition exhaustiveness, tree validity, depth
  bounds) for arbitrary capacity vectors;
* state tables (merge freshness);
* graph shortest paths against a brute-force reference;
* overlay routing correctness for random member sets.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LDTMember, build_ldt
from repro.net import Graph, PathOracle
from repro.overlay import ChordOverlay, KeySpace, PastryOverlay, StatePair, StateTable

SPACE = KeySpace(bits=16, digit_bits=4)
KEYS = st.integers(min_value=0, max_value=SPACE.size - 1)


class TestKeySpaceProperties:
    @given(a=KEYS, b=KEYS)
    def test_ring_distance_symmetric(self, a, b):
        assert SPACE.ring_distance(a, b) == SPACE.ring_distance(b, a)

    @given(a=KEYS, b=KEYS)
    def test_ring_distance_bounds(self, a, b):
        d = SPACE.ring_distance(a, b)
        assert 0 <= d <= SPACE.size // 2
        assert (d == 0) == (a == b)

    @given(a=KEYS, b=KEYS, c=KEYS)
    def test_ring_triangle_inequality(self, a, b, c):
        assert SPACE.ring_distance(a, c) <= SPACE.ring_distance(a, b) + SPACE.ring_distance(b, c)

    @given(a=KEYS, b=KEYS)
    def test_clockwise_antisymmetry(self, a, b):
        if a != b:
            assert SPACE.clockwise_distance(a, b) + SPACE.clockwise_distance(b, a) == SPACE.size

    @given(key=KEYS)
    def test_digits_reconstruct_key(self, key):
        digits = SPACE.digits(key)
        value = 0
        for d in digits:
            value = (value << SPACE.digit_bits) | d
        assert value == key

    @given(a=KEYS, b=KEYS)
    def test_shared_prefix_consistent_with_digits(self, a, b):
        n = SPACE.shared_prefix_length(a, b)
        da, db = SPACE.digits(a), SPACE.digits(b)
        assert da[:n] == db[:n]
        if n < SPACE.num_digits:
            assert da[n] != db[n]

    @given(keys=st.lists(KEYS, min_size=1, max_size=40, unique=True), target=KEYS)
    def test_nearest_key_is_argmin(self, keys, target):
        arr = np.asarray(sorted(keys), dtype=np.uint64)
        best = SPACE.nearest_key(arr, target)
        best_d = SPACE.ring_distance(best, target)
        for k in keys:
            assert best_d <= SPACE.ring_distance(k, target)

    @given(keys=st.lists(KEYS, min_size=1, max_size=40, unique=True), target=KEYS)
    def test_successor_key_is_min_clockwise(self, keys, target):
        arr = np.asarray(sorted(keys), dtype=np.uint64)
        succ = SPACE.successor_key(arr, target)
        d = SPACE.clockwise_distance(target, succ)
        for k in keys:
            assert d <= SPACE.clockwise_distance(target, k)


CAPACITIES = st.lists(
    st.integers(min_value=1, max_value=15), min_size=0, max_size=25
)


class TestLDTProperties:
    @given(caps=CAPACITIES, root_cap=st.integers(min_value=1, max_value=15))
    def test_tree_valid_and_exhaustive(self, caps, root_cap):
        root = LDTMember(key=0, capacity=float(root_cap))
        members = [LDTMember(key=i + 1, capacity=float(c)) for i, c in enumerate(caps)]
        tree = build_ldt(root, members)
        tree.validate()
        assert tree.num_members == len(caps)
        assert tree.message_count == len(caps)

    @given(caps=CAPACITIES)
    def test_depth_bounded_by_members(self, caps):
        tree = build_ldt(LDTMember(key=0, capacity=1.0), [
            LDTMember(key=i + 1, capacity=float(c)) for i, c in enumerate(caps)
        ])
        assert tree.depth <= len(caps)

    @given(
        caps=st.lists(st.integers(min_value=2, max_value=15), min_size=1, max_size=25),
        k=st.integers(min_value=2, max_value=8),
    )
    def test_uniform_capacity_k_depth_bound(self, caps, k):
        """With every capacity ≥ k, depth ≤ ceil(log_k n) + 1."""
        members = [LDTMember(key=i + 1, capacity=float(k)) for i in range(len(caps))]
        tree = build_ldt(LDTMember(key=0, capacity=float(k)), members)
        bound = math.ceil(math.log(len(members), k)) + 1 if len(members) > 1 else 1
        assert tree.depth <= bound + 1

    @given(caps=CAPACITIES, used=st.floats(min_value=0.0, max_value=0.9))
    def test_workload_never_loses_members(self, caps, used):
        members = [
            LDTMember(key=i + 1, capacity=float(c), used=float(c) * used)
            for i, c in enumerate(caps)
        ]
        tree = build_ldt(LDTMember(key=0, capacity=5.0), members)
        assert set(tree.nodes) == {0} | {m.key for m in members}


class TestStateTableProperties:
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),  # key
                st.floats(min_value=0, max_value=100),  # refreshed_at
            ),
            max_size=40,
        )
    )
    def test_merge_keeps_freshest(self, updates):
        table = StateTable(SPACE, owner_key=0)
        freshest = {}
        for key, at in updates:
            table.insert(StatePair(key=key, refreshed_at=at, ttl=1000.0))
            freshest[key] = max(freshest.get(key, -1.0), at)
        for key, at in freshest.items():
            assert table.get(key).refreshed_at == at
        assert len(table) == len(freshest)


def _random_graph(draw_edges, n):
    g = Graph()
    g.add_vertices(n)
    for (u, v), w in draw_edges:
        if u != v and not g.has_edge(u % n, v % n) and u % n != v % n:
            g.add_edge(u % n, v % n, w)
    return g


class TestShortestPathProperties:
    @given(
        n=st.integers(min_value=2, max_value=12),
        edges=st.lists(
            st.tuples(
                st.tuples(st.integers(0, 11), st.integers(0, 11)),
                st.floats(min_value=0.1, max_value=10.0),
            ),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_dijkstra_matches_bellman_ford(self, n, edges):
        g = _random_graph(edges, n)
        g.freeze()
        oracle = PathOracle(g, use_scipy=False)
        dist = oracle.distances_from(0)
        # Brute-force Bellman-Ford reference.
        ref = [math.inf] * n
        ref[0] = 0.0
        edge_list = list(g.edges())
        for _ in range(n):
            for u, v, w in edge_list:
                if ref[u] + w < ref[v]:
                    ref[v] = ref[u] + w
                if ref[v] + w < ref[u]:
                    ref[u] = ref[v] + w
        for v in range(n):
            if math.isinf(ref[v]):
                assert math.isinf(dist[v])
            else:
                assert dist[v] == pytest.approx(ref[v])


class TestOverlayProperties:
    @given(
        keys=st.lists(KEYS, min_size=2, max_size=48, unique=True),
        target=KEYS,
    )
    @settings(max_examples=60, deadline=None)
    def test_chord_routes_from_every_member(self, keys, target):
        ov = ChordOverlay(SPACE)
        ov.build(keys)
        owner = ov.owner_of(target)
        for src in keys[:6]:
            r = ov.route(src, target)
            assert r.success
            assert r.terminus == owner

    @given(
        keys=st.lists(KEYS, min_size=2, max_size=48, unique=True),
        target=KEYS,
    )
    @settings(max_examples=60, deadline=None)
    def test_pastry_routes_from_every_member(self, keys, target):
        ov = PastryOverlay(SPACE)
        ov.build(keys)
        owner = ov.owner_of(target)
        for src in keys[:6]:
            r = ov.route(src, target)
            assert r.success
            assert r.terminus == owner
